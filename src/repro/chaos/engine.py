"""Episode and campaign execution: the imperative half of the chaos engine.

:func:`run_episode` turns one declarative :class:`~repro.chaos.plan.EpisodePlan`
into a wired simulated cluster — seeded network with the plan's link profile,
durable or volatile stores, Byzantine replica substitutions, an optional
Byzantine client attack with its post-run epilogue (stop / colluder /
reader, exactly the §3.2 orchestration the attack tests use) — runs the
multi-client workload under the plan's fault schedule, and judges the
outcome with the full oracle battery.  Any exception escaping the run is
itself an oracle verdict, never a crash of the campaign.

:func:`run_campaign` drives N independently derivable episodes from one
integer seed, delta-debugs every violating episode down to a minimal plan
(:mod:`repro.chaos.minimize`) and, when given an artifact directory, writes
each minimal repro as a replayable JSON artifact.  The campaign summary is
a pure function of the seed — it contains virtual times and counters, never
wall-clock readings or filesystem paths — so two runs of the same seed
produce byte-identical summaries.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.chaos.oracles import ORACLES, OracleVerdict, run_oracle_battery
from repro.chaos.plan import (
    CampaignConfig,
    EpisodePlan,
    build_schedule,
    generate_plan,
)
from repro.errors import OperationFailedError, SimulationError
from repro.obs.instrumentation import Instrumentation
from repro.sim.faults import FaultAction, FaultSchedule, NodeFaultAction
from repro.sim.runner import Cluster, ClusterOptions, build_cluster
from repro.sim.workload import make_scripts, read_script
from repro.storage import FileLogStore

__all__ = [
    "SUMMARY_FORMAT",
    "EpisodeResult",
    "CampaignResult",
    "run_episode",
    "run_campaign",
]

#: Format tag of the campaign summary dict.
SUMMARY_FORMAT = "repro-chaos-campaign/1"

#: A factory the engine uses for every *correct* replica instead of the
#: variant's default class — the guarded hook the bug-injection acceptance
#: test uses.  Called as ``factory(node_id, config, store)``.
ReplicaFactory = Callable[..., Any]


@dataclass
class EpisodeResult:
    """One episode's outcome: verdicts plus deterministic run counters."""

    plan: EpisodePlan
    verdicts: dict[str, OracleVerdict]
    end_time: float = 0.0
    operations: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    messages_reordered: int = 0
    dropped_by_reason: dict[str, int] = field(default_factory=dict)
    replica_crashes: int = 0
    #: Writes that abandoned the fast path for the signed protocol
    #: (always 0 outside the ``fastpath`` variant).
    fallbacks: int = 0
    #: Self-stabilization counters, summed over the correct replicas.
    quarantines: int = 0
    repairs: int = 0
    corrupt_records: int = 0
    corrupt_snapshots: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts.values())

    @property
    def violations(self) -> tuple[str, ...]:
        """Names of the violated oracles, in battery order."""
        return tuple(
            name for name in ORACLES
            if name in self.verdicts and not self.verdicts[name].ok
        )

    def to_summary(self) -> dict[str, Any]:
        """The episode's deterministic row in the campaign summary."""
        plan = self.plan
        return {
            "episode": plan.episode,
            "variant": str(plan.variant),
            "store": plan.store,
            "attack": plan.attack,
            "byzantine": [
                f"{index}:{kind}"
                for index, kind in sorted(plan.byzantine_replicas.items())
            ],
            "faults": len(plan.faults),
            "clients": plan.clients,
            "ok": self.ok,
            "violated": list(self.violations),
            "end_time": round(self.end_time, 6),
            "operations": self.operations,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "messages_reordered": self.messages_reordered,
            "dropped_by_reason": dict(sorted(self.dropped_by_reason.items())),
            "replica_crashes": self.replica_crashes,
            "fallbacks": self.fallbacks,
            "quarantines": self.quarantines,
            "repairs": self.repairs,
            "corrupt_records": self.corrupt_records,
            "corrupt_snapshots": self.corrupt_snapshots,
        }


# -- Byzantine catalogue --------------------------------------------------------


def _behaviour_factory(kind: str) -> Callable[..., Any]:
    from repro.byzantine.replicas import (
        CorruptingReplica,
        CrashedReplica,
        DelayingReplica,
        ForgingReplica,
        PromiscuousReplica,
        SilentOptimizedReplica,
        StaleReplica,
        TwoFacedReplica,
    )

    catalogue = {
        "crashed": CrashedReplica,
        "stale": StaleReplica,
        "promiscuous": PromiscuousReplica,
        "corrupting": CorruptingReplica,
        "forging": ForgingReplica,
        "delaying": DelayingReplica,
        "two-faced": TwoFacedReplica,
        "silent-optimized": SilentOptimizedReplica,
    }
    try:
        return catalogue[kind]
    except KeyError:
        raise SimulationError(f"unknown Byzantine behaviour {kind!r}") from None


class _AttackContext:
    """A started Byzantine client attack plus its post-workload epilogue."""

    def __init__(self, bad_clients: frozenset[str],
                 epilogue: Optional[Callable[[], None]] = None) -> None:
        self.bad_clients = bad_clients
        self._epilogue = epilogue

    def finish(self) -> None:
        if self._epilogue is not None:
            self._epilogue()


def _start_attack(cluster: Cluster, plan: EpisodePlan) -> _AttackContext:
    """Instantiate and start the plan's attack (§3.2 orchestration)."""
    from repro.byzantine.clients import (
        Colluder,
        CollusionChainAttack,
        EquivocationAttack,
        FastLurkingWriteAttack,
        LurkingWriteAttack,
        OptimizedLurkingWriteAttack,
        PartialWriteAttack,
        TimestampExhaustionAttack,
    )

    name = plan.attack
    if name is None:
        return _AttackContext(frozenset())

    def hoard_epilogue(attack: Any, stop: Callable[[], None],
                      bad: frozenset[str]) -> Callable[[], None]:
        # The lurking-style second act: revoke the attacker, let a
        # colluder finish the hoarded writes, and have a fresh reader
        # observe them — the exact scenario Theorems 1/2 bound.
        def run() -> None:
            stop()
            if attack.hoard:
                Colluder(cluster, "colluder", attack.hoard).start()
            reader = cluster.add_client("reader")
            reader.run_script(read_script(2), start_delay=0.5, think_time=0.1)
            cluster.run(max_time=60)
        return run

    if name == "equivocation":
        EquivocationAttack(cluster, "evil").start()
        return _AttackContext(frozenset({"client:evil"}))
    if name == "ts-exhaustion":
        TimestampExhaustionAttack(cluster, "evil").start()
        return _AttackContext(frozenset({"client:evil"}))
    if name == "partial-write":
        PartialWriteAttack(cluster, "evil").start()
        return _AttackContext(frozenset({"client:evil"}))
    if name == "lurking":
        attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=2)
        attack.start()
        bad = frozenset({"client:evil"})
        return _AttackContext(bad, hoard_epilogue(attack, attack.stop, bad))
    if name == "lurking-optimized":
        attack = OptimizedLurkingWriteAttack(cluster, "evil")
        attack.start()
        bad = frozenset({"client:evil"})
        return _AttackContext(bad, hoard_epilogue(attack, attack.stop, bad))
    if name == "lurking-fast":
        attack = FastLurkingWriteAttack(cluster, "evil")
        attack.start()
        bad = frozenset({"client:evil"})
        return _AttackContext(bad, hoard_epilogue(attack, attack.stop, bad))
    if name == "chain":
        members = ["m1", "m2"]
        attack = CollusionChainAttack(cluster, "leader", members)
        attack.start()
        bad = frozenset(f"client:{m}" for m in members)
        return _AttackContext(bad, hoard_epilogue(attack, attack.stop_all, bad))
    raise SimulationError(f"unknown attack {name!r}")


def _instrument_schedule(
    schedule: FaultSchedule, instr: Instrumentation
) -> FaultSchedule:
    """Wrap each fault so firing it also drops a ``chaos.*`` span event."""
    if not instr.enabled:
        return schedule

    def wrap_net(action: FaultAction) -> FaultAction:
        def apply(net: Any) -> None:
            instr.event(f"chaos.{action.description}")
            action.apply(net)
        return FaultAction(action.time, action.description, apply)

    def wrap_node(action: NodeFaultAction) -> NodeFaultAction:
        def apply(node: Any) -> None:
            instr.event(f"chaos.{action.description}", node=action.node_id)
            action.apply(node)
        return NodeFaultAction(
            action.time, action.description, action.node_id, apply
        )

    wrapped = FaultSchedule()
    wrapped.actions = [wrap_net(a) for a in schedule.actions]
    wrapped.node_actions = [wrap_node(a) for a in schedule.node_actions]
    return wrapped


def _arm_audit_loop(cluster: Cluster, plan: EpisodePlan) -> None:
    """Arm the periodic self-audit tick on every *correct* replica node.

    Each tick runs :meth:`~repro.sim.nodes.ReplicaNode.audit_and_repair`
    (detect by replaying the durable log into a twin; quarantined replicas
    push repair pulls instead) and reschedules itself, so the loop spans
    the whole episode including the settle window.  Byzantine replicas are
    skipped — the model cannot mandate that a faulty node audits itself,
    and quarantining a catalogue behaviour mid-attack would silently turn
    it into a crashed one.
    """
    if plan.audit_interval <= 0:
        return
    byzantine = {f"replica:{index}" for index in plan.byzantine_replicas}

    def tick() -> None:
        for node_id, node in cluster.replica_nodes.items():
            if node_id not in byzantine:
                node.audit_and_repair()
        cluster.scheduler.call_at(
            cluster.scheduler.now + plan.audit_interval, tick
        )

    cluster.scheduler.call_at(plan.audit_interval, tick)


# -- episode execution ----------------------------------------------------------


def run_episode(
    plan: EpisodePlan,
    *,
    replica_factory: Optional[ReplicaFactory] = None,
    instrumentation: Optional[Instrumentation] = None,
    data_dir: Optional[str] = None,
) -> EpisodeResult:
    """Execute one plan and judge it with the full oracle battery.

    ``replica_factory`` substitutes every *correct* replica (the
    bug-injection hook; Byzantine indices keep their catalogue behaviour).
    ``data_dir`` pins the durable stores' directory; by default a fresh
    temporary directory is used and removed afterwards.
    """
    tmp: Optional[tempfile.TemporaryDirectory] = None
    store_factory = None
    if plan.store == "filelog":
        if data_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            data_dir = tmp.name
        base = Path(data_dir)
        store_factory = lambda node_id: FileLogStore(  # noqa: E731
            base / node_id.replace(":", "_"), fsync="always"
        )

    overrides: dict[int, Any] = {
        int(index): _behaviour_factory(kind)
        for index, kind in plan.byzantine_replicas.items()
    }
    if replica_factory is not None:
        n = 3 * plan.f + 1
        for index in range(n):
            if index in overrides:
                continue
            def correct(node_id: str, config: Any,
                        _factory: ReplicaFactory = replica_factory) -> Any:
                store = store_factory(node_id) if store_factory else None
                return _factory(node_id, config, store)
            overrides[index] = correct

    cluster = build_cluster(
        ClusterOptions(
            f=plan.f,
            variant=plan.variant,
            seed=plan.seed,
            profile=plan.link_profile(),
            store_factory=store_factory,
            replica_overrides=overrides,
            instrumentation=instrumentation,
        )
    )

    error = ""
    error_kind: Optional[str] = None
    bad_clients: frozenset[str] = frozenset()
    try:
        schedule = _instrument_schedule(
            build_schedule(plan.faults), cluster.instrumentation
        )
        cluster.install_faults(schedule)
        _arm_audit_loop(cluster, plan)
        attack = _start_attack(cluster, plan)
        bad_clients = attack.bad_clients
        writers = [f"client:w{i}" for i in range(plan.clients)]
        scripts = make_scripts(
            writers,
            plan.ops_per_client,
            write_fraction=plan.write_fraction,
            seed=plan.seed,
        )
        cluster.run_scripts(
            {name.split(":", 1)[1]: steps for name, steps in scripts.items()},
            think_time=plan.think_time,
            stagger=plan.stagger,
            max_time=plan.max_time,
        )
        attack.finish()
        cluster.settle(2.0)
    except OperationFailedError as exc:
        error, error_kind = str(exc), "liveness"
    except Exception as exc:  # noqa: BLE001 — the no-exception oracle's feed
        error, error_kind = f"{type(exc).__name__}: {exc}", "exception"

    try:
        verdicts = run_oracle_battery(
            cluster,
            plan,
            bad_clients=bad_clients,
            error_kind=error_kind,
            error=error,
        )
        stats = cluster.network.stats
        return EpisodeResult(
            plan=plan,
            verdicts=verdicts,
            end_time=cluster.scheduler.now,
            operations=cluster.metrics.operations,
            messages_sent=stats.messages_sent,
            messages_dropped=stats.messages_dropped,
            messages_reordered=stats.messages_reordered,
            dropped_by_reason=dict(stats.dropped_by_reason),
            replica_crashes=sum(
                node.crashes for node in cluster.replica_nodes.values()
            ),
            fallbacks=sum(
                1
                for s in cluster.metrics.by_kind("write")
                if getattr(s, "fell_back", False)
            ),
            quarantines=sum(
                r.stats.quarantines for r in cluster.replicas.values()
            ),
            repairs=sum(r.stats.repairs for r in cluster.replicas.values()),
            corrupt_records=sum(
                r.store.stats.corrupt_records
                for r in cluster.replicas.values()
            ),
            corrupt_snapshots=sum(
                r.store.stats.corrupt_snapshots
                for r in cluster.replicas.values()
            ),
            error=error,
        )
    finally:
        for replica in cluster.replicas.values():
            replica.store.close()
        if tmp is not None:
            tmp.cleanup()


# -- campaign execution ---------------------------------------------------------


@dataclass
class CampaignResult:
    """Every episode's outcome plus the minimized repros of the failures."""

    config: CampaignConfig
    results: list[EpisodeResult]
    #: ``(minimized_plan, expected_verdicts, artifact_path_or_None)`` per
    #: violating episode; verdicts map oracle name -> ok.
    minimized: list[tuple[EpisodePlan, dict[str, bool], Optional[str]]] = field(
        default_factory=list
    )

    @property
    def violations(self) -> list[EpisodeResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> dict[str, Any]:
        """A deterministic (seed-pure) summary: no wall clock, no paths."""
        by_oracle: dict[str, int] = {}
        for result in self.results:
            for name in result.violations:
                by_oracle[name] = by_oracle.get(name, 0) + 1
        totals = {
            "operations": sum(r.operations for r in self.results),
            "messages_sent": sum(r.messages_sent for r in self.results),
            "messages_dropped": sum(r.messages_dropped for r in self.results),
            "messages_reordered": sum(
                r.messages_reordered for r in self.results
            ),
            "replica_crashes": sum(r.replica_crashes for r in self.results),
        }
        return {
            "format": SUMMARY_FORMAT,
            "seed": self.config.seed,
            "episodes": len(self.results),
            "variants": list(self.config.variants),
            "violations": len(self.violations),
            "violations_by_oracle": dict(sorted(by_oracle.items())),
            "minimized": [
                {
                    "episode": plan.episode,
                    "faults": len(plan.faults),
                    "verdicts": dict(sorted(verdicts.items())),
                }
                for plan, verdicts, _path in self.minimized
            ],
            "totals": totals,
            "episodes_detail": [r.to_summary() for r in self.results],
        }


def run_campaign(
    config: CampaignConfig,
    *,
    replica_factory: Optional[ReplicaFactory] = None,
    minimize: bool = True,
    artifact_dir: Optional[str] = None,
    minimize_budget: int = 120,
    progress: Optional[Callable[[EpisodeResult], None]] = None,
) -> CampaignResult:
    """Run ``config.episodes`` seed-derived episodes; minimize any failure.

    When ``artifact_dir`` is given, each violating episode's minimized plan
    is written there as ``chaos-seed{S}-ep{E}.json`` (a replayable
    artifact).  ``progress`` is called with each finished episode.
    """
    from repro.chaos.artifact import save_artifact
    from repro.chaos.minimize import minimize_episode

    campaign = CampaignResult(config=config, results=[])
    for episode in range(config.episodes):
        plan = generate_plan(config, episode)
        result = run_episode(plan, replica_factory=replica_factory)
        campaign.results.append(result)
        if progress is not None:
            progress(result)
        if result.ok or not minimize:
            continue
        minimized = minimize_episode(
            plan, replica_factory=replica_factory, budget=minimize_budget
        )
        verdicts = {
            name: verdict.ok
            for name, verdict in minimized.final.verdicts.items()
        }
        path: Optional[str] = None
        if artifact_dir is not None:
            target = Path(artifact_dir)
            target.mkdir(parents=True, exist_ok=True)
            path = str(
                target / f"chaos-seed{config.seed}-ep{plan.episode}.json"
            )
            save_artifact(
                path,
                minimized.plan,
                verdicts,
                note=(
                    f"minimized from episode {plan.episode} of campaign "
                    f"seed {config.seed} ({len(plan.faults)} -> "
                    f"{len(minimized.plan.faults)} faults)"
                ),
            )
        campaign.minimized.append((minimized.plan, verdicts, path))
    return campaign
