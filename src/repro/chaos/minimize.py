"""Delta-debugging a violating episode down to a minimal repro.

Classic ddmin (Zeller & Hildebrandt) over the plan's fault-spec list: try
removing complements of ever-finer chunk partitions, keeping any reduction
under which the episode still violates at least one of the *originally*
violated oracles (the target set — a reduction that merely trades the
violation for a different one is rejected).  Because an
:class:`~repro.chaos.plan.EpisodePlan` is fully declarative and episodes
are deterministic, "still fails" is a pure re-execution of the candidate
plan; every probe costs one simulated run, so the search is capped by a
run budget.

After the fault list is 1-minimal the shrinker greedily simplifies the
rest of the plan — drop the attack, drop Byzantine replicas one by one,
halve the workload, remove clients — each step again only kept if the
target oracle still fails.  The result is the plan that goes into a
replayable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.chaos.plan import EpisodePlan
from repro.errors import SimulationError

__all__ = ["MinimizationResult", "minimize_episode"]


@dataclass
class MinimizationResult:
    """The outcome of one minimization: the minimal plan and its verdicts."""

    plan: EpisodePlan
    original: EpisodePlan
    #: The originally violated oracle names the search preserved.
    target: tuple[str, ...]
    #: Episode executions spent (including the initial confirmation run).
    runs: int
    #: The result of executing the minimal plan.
    final: Any


def minimize_episode(
    plan: EpisodePlan,
    *,
    budget: int = 120,
    runner: Optional[Callable[[EpisodePlan], Any]] = None,
    **runner_kwargs: Any,
) -> MinimizationResult:
    """Shrink ``plan`` while it keeps violating its original oracles.

    ``runner`` defaults to :func:`repro.chaos.engine.run_episode` (with
    ``runner_kwargs`` forwarded — e.g. the bug-injection
    ``replica_factory``); tests substitute cheap fake runners.

    Raises:
        SimulationError: if ``plan`` does not violate any oracle (there is
            nothing to minimize).
    """
    if runner is None:
        from repro.chaos.engine import run_episode

        runner = lambda p: run_episode(p, **runner_kwargs)  # noqa: E731

    first = runner(plan)
    target = set(first.violations)
    if not target:
        raise SimulationError("episode violates no oracle; nothing to minimize")
    runs = 1
    best_result = first

    def still_fails(candidate: EpisodePlan) -> bool:
        nonlocal runs, best_result
        if runs >= budget:
            return False  # budget exhausted: keep the current plan
        runs += 1
        result = runner(candidate)
        if set(result.violations) & target:
            best_result = result
            return True
        return False

    # -- ddmin over the fault list ---------------------------------------
    faults = list(plan.faults)
    granularity = 2
    while len(faults) >= 2:
        reduced = False
        for chunk in range(granularity):
            lo = chunk * len(faults) // granularity
            hi = (chunk + 1) * len(faults) // granularity
            candidate = faults[:lo] + faults[hi:]
            if len(candidate) == len(faults):
                continue
            if still_fails(plan.replace(faults=candidate)):
                faults = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(faults):
                break
            granularity = min(len(faults), 2 * granularity)
    if len(faults) == 1 and still_fails(plan.replace(faults=[])):
        faults = []
    minimal = plan.replace(faults=faults)

    # -- greedy shrinking of the rest of the plan ------------------------
    if minimal.attack is not None and still_fails(minimal.replace(attack=None)):
        minimal = minimal.replace(attack=None)
    for index in sorted(minimal.byzantine_replicas):
        slimmer = dict(minimal.byzantine_replicas)
        del slimmer[index]
        if still_fails(minimal.replace(byzantine_replicas=slimmer)):
            minimal = minimal.replace(byzantine_replicas=slimmer)
    while minimal.clients > 1 and still_fails(
        minimal.replace(clients=minimal.clients - 1)
    ):
        minimal = minimal.replace(clients=minimal.clients - 1)
    while minimal.ops_per_client > 1:
        fewer = max(1, minimal.ops_per_client // 2)
        if fewer == minimal.ops_per_client or not still_fails(
            minimal.replace(ops_per_client=fewer)
        ):
            break
        minimal = minimal.replace(ops_per_client=fewer)

    return MinimizationResult(
        plan=minimal,
        original=plan,
        target=tuple(sorted(target)),
        runs=runs,
        final=best_result,
    )
