"""Exception hierarchy for the BFT-BC reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish protocol violations from infrastructure problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """A value could not be canonically encoded or decoded."""


class IncompleteFrameError(EncodingError):
    """A frame ends before its declared length (more bytes may be coming).

    Distinguished from the other :class:`EncodingError` cases because the
    write-ahead log uses it to tell a *torn tail* (an append cut short by a
    crash — truncate and move on) from mid-file corruption (quarantine and
    repair)."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class UnknownSignerError(CryptoError):
    """A signature names a signer that is not in the key registry."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification."""


class KeyRevokedError(CryptoError):
    """An operation was attempted with a revoked key."""


class CertificateError(ReproError):
    """A certificate is malformed or fails validation."""


class QuorumConfigError(ReproError):
    """A quorum-system configuration is invalid (e.g. n != 3f + 1)."""


class ProtocolError(ReproError):
    """A protocol message violates the protocol's rules."""


class TimestampError(ProtocolError):
    """A timestamp is malformed or violates the succession rule."""


class OperationFailedError(ReproError):
    """A client operation could not complete (e.g. retries exhausted)."""


class NetworkError(ReproError):
    """A transport-level failure."""


class StorageError(ReproError):
    """A replica store was misused or its backing medium failed."""


class IntegrityError(StorageError):
    """A durable record or snapshot failed its integrity tag check."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class HistoryError(ReproError):
    """A recorded history is malformed (e.g. not well-formed per §4.1)."""
