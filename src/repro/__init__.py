"""BFT-BC: Byzantine quorum replication that tolerates Byzantine clients.

A full reproduction of Liskov & Rodrigues, "Tolerating Byzantine Faulty
Clients in a Quorum System" (ICDCS 2006): the base three-phase protocol, the
two-phase optimized protocol (§6), the strong BFT-linearizable+ variant
(§7), the BQS and Phalanx baselines it compares against, the §4 correctness
conditions as executable checkers, a deterministic simulation harness, an
asyncio TCP deployment, a seed-deterministic chaos campaign engine with
invariant oracles and auto-minimized repro artifacts, a sharding layer
(consistent-hash placement over many replica groups with online Byzantine
reconfiguration — epoch changes installed by quorum-signed directory
entries, never consensus), and an open-loop production load harness
(Poisson arrivals and zipfian popularity over 10^5–10^6 lazily-keyed client
identities, judged against SLO targets and the analytical capacity model).

This module is the supported public API: everything an example, benchmark,
or downstream user needs is importable from ``repro`` directly.  Deeper
module paths are implementation detail (``tools/check_public_api.py``
enforces the boundary for the repo's own examples and tests).

Quickstart::

    from repro import Instrumentation, build_cluster, write_script

    instr = Instrumentation()
    cluster = build_cluster(f=1, variant="optimized", instrumentation=instr)
    alice = cluster.add_client("alice")
    alice.run_script(write_script("client:alice", 3) + [("read", None)])
    cluster.run()
    print(alice.client.last_result)
    print(sorted(instr.histograms))      # per-phase latency series
"""

from repro.analysis import format_phase_breakdown, format_table
from repro.baselines import build_bqs_cluster, build_phalanx_cluster
from repro.byzantine import (
    BqsEquivocationAttack,
    BqsTimestampExhaustionAttack,
    Colluder,
    EquivocationAttack,
    LurkingWriteAttack,
    PartialWriteAttack,
    TimestampExhaustionAttack,
)
from repro.chaos import (
    CampaignConfig,
    EpisodePlan,
    ShardEpisodePlan,
    generate_plan,
    minimize_episode,
    replay_artifact,
    replay_shard_artifact,
    run_campaign,
    run_episode,
    run_shard_episode,
)
from repro.core import (
    BftBcClient,
    BftBcReplica,
    FastBftBcClient,
    FastBftBcReplica,
    MultiObjectClient,
    MultiObjectReplica,
    OptimizedBftBcClient,
    OptimizedBftBcReplica,
    PrepareCertificate,
    QuorumSystem,
    StrongBftBcClient,
    SystemConfig,
    Timestamp,
    Variant,
    WriteCertificate,
    ZERO_TS,
    make_system,
)
from repro.core.config import (
    AccessPolicy,
    ExplicitWriters,
    NamespaceWriters,
    PredicateWriters,
)
from repro.core.persistence import ClientStateBudget, ClientStateTable
from repro.cluster import (
    Deployment,
    DeploymentSpec,
    ProcessCluster,
    ProcessDeployment,
    SimDeployment,
    TcpDeployment,
    WorkerHandle,
    deploy,
)
from repro.crypto.commitments import ProofOfWriting
from repro.load import (
    BurstPhase,
    DEFAULT_SLOS,
    LoadProfile,
    LoadReport,
    OpenLoopGenerator,
    SimLoadOptions,
    SloTarget,
    run_open_loop,
    run_tcp_load,
)
from repro.net.asyncio_transport import AsyncClient, ReplicaServer
from repro.net.mux import MuxEndpoint, OpRecord, PipelinedClient
from repro.net.shard_transport import AsyncShardRouter, ShardReplicaServer
from repro.net.simnet import LinkProfile, SimNetwork
from repro.obs import (
    Instrumentation,
    LatencyHistogram,
    Span,
    render_prometheus,
    spans_to_jsonl,
)
from repro.shard import (
    HashRing,
    Reconfigurator,
    ShardConfig,
    ShardDirectory,
    ShardReplica,
    ShardRouter,
)
from repro.sim import (
    Cluster,
    ClusterOptions,
    FaultSchedule,
    MessageTrace,
    MetricsCollector,
    MultiObjectClientNode,
    Scheduler,
    ShardCluster,
    ShardClusterOptions,
    build_cluster,
    build_shard_cluster,
    read_script,
    value_for,
    write_script,
)
from repro.spec import (
    History,
    check_bft_linearizable,
    check_bft_linearizable_plus,
    check_lemma1,
    check_register_linearizable,
    count_lurking_writes,
)
from repro.storage import FileLogStore, MemoryStore

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "make_system",
    "SystemConfig",
    "Variant",
    "QuorumSystem",
    "Timestamp",
    "ZERO_TS",
    "PrepareCertificate",
    "WriteCertificate",
    "BftBcClient",
    "OptimizedBftBcClient",
    "StrongBftBcClient",
    "BftBcReplica",
    "OptimizedBftBcReplica",
    "FastBftBcClient",
    "FastBftBcReplica",
    "ProofOfWriting",
    "MultiObjectClient",
    "MultiObjectReplica",
    # identity-layer scale: access policies and per-client state budgets
    "AccessPolicy",
    "ExplicitWriters",
    "NamespaceWriters",
    "PredicateWriters",
    "ClientStateBudget",
    "ClientStateTable",
    # open-loop production load harness (E21)
    "LoadProfile",
    "BurstPhase",
    "LoadReport",
    "SloTarget",
    "DEFAULT_SLOS",
    "OpenLoopGenerator",
    "SimLoadOptions",
    "run_open_loop",
    "run_tcp_load",
    # sharding and online reconfiguration
    "HashRing",
    "ShardConfig",
    "ShardDirectory",
    "ShardReplica",
    "ShardRouter",
    "Reconfigurator",
    "ShardCluster",
    "ShardClusterOptions",
    "build_shard_cluster",
    "AsyncShardRouter",
    "ShardReplicaServer",
    # observability
    "Instrumentation",
    "LatencyHistogram",
    "Span",
    "spans_to_jsonl",
    "render_prometheus",
    "format_phase_breakdown",
    "format_table",
    # networking / simulation
    "LinkProfile",
    "SimNetwork",
    "Scheduler",
    "Cluster",
    "ClusterOptions",
    "build_cluster",
    "FaultSchedule",
    "MetricsCollector",
    "MessageTrace",
    "MultiObjectClientNode",
    "write_script",
    "read_script",
    "value_for",
    # real-network transport and durability
    "AsyncClient",
    "ReplicaServer",
    "FileLogStore",
    "MemoryStore",
    "MuxEndpoint",
    "PipelinedClient",
    "OpRecord",
    # deployment API: one spec, three transports (sim / tcp / process)
    "DeploymentSpec",
    "deploy",
    "Deployment",
    "SimDeployment",
    "TcpDeployment",
    "ProcessDeployment",
    "ProcessCluster",
    "WorkerHandle",
    # baselines
    "build_bqs_cluster",
    "build_phalanx_cluster",
    # byzantine attack catalogue (the §3.2 issues, executable)
    "EquivocationAttack",
    "TimestampExhaustionAttack",
    "LurkingWriteAttack",
    "PartialWriteAttack",
    "Colluder",
    "BqsEquivocationAttack",
    "BqsTimestampExhaustionAttack",
    # chaos campaigns
    "CampaignConfig",
    "EpisodePlan",
    "ShardEpisodePlan",
    "generate_plan",
    "run_campaign",
    "run_episode",
    "run_shard_episode",
    "minimize_episode",
    "replay_artifact",
    "replay_shard_artifact",
    # correctness
    "History",
    "check_register_linearizable",
    "check_bft_linearizable",
    "check_bft_linearizable_plus",
    "check_lemma1",
    "count_lurking_writes",
]
