"""BFT-BC: Byzantine quorum replication that tolerates Byzantine clients.

A full reproduction of Liskov & Rodrigues, "Tolerating Byzantine Faulty
Clients in a Quorum System" (ICDCS 2006): the base three-phase protocol, the
two-phase optimized protocol (§6), the strong BFT-linearizable+ variant
(§7), the BQS and Phalanx baselines it compares against, the §4 correctness
conditions as executable checkers, a deterministic simulation harness, and
an asyncio TCP deployment.

Quickstart::

    from repro import build_cluster, write_script

    cluster = build_cluster(f=1, variant="optimized")
    alice = cluster.add_client("alice")
    alice.run_script(write_script("client:alice", 3) + [("read", None)])
    cluster.run()
    print(alice.client.last_result)
"""

from repro.core import (
    BftBcClient,
    BftBcReplica,
    OptimizedBftBcClient,
    OptimizedBftBcReplica,
    PrepareCertificate,
    QuorumSystem,
    StrongBftBcClient,
    SystemConfig,
    Timestamp,
    WriteCertificate,
    ZERO_TS,
    make_system,
)
from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim import (
    Cluster,
    ClusterOptions,
    FaultSchedule,
    MetricsCollector,
    Scheduler,
    build_cluster,
    read_script,
    value_for,
    write_script,
)
from repro.spec import (
    History,
    check_bft_linearizable,
    check_bft_linearizable_plus,
    check_register_linearizable,
    count_lurking_writes,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "make_system",
    "SystemConfig",
    "QuorumSystem",
    "Timestamp",
    "ZERO_TS",
    "PrepareCertificate",
    "WriteCertificate",
    "BftBcClient",
    "OptimizedBftBcClient",
    "StrongBftBcClient",
    "BftBcReplica",
    "OptimizedBftBcReplica",
    # networking / simulation
    "LinkProfile",
    "SimNetwork",
    "Scheduler",
    "Cluster",
    "ClusterOptions",
    "build_cluster",
    "FaultSchedule",
    "MetricsCollector",
    "write_script",
    "read_script",
    "value_for",
    # correctness
    "History",
    "check_register_linearizable",
    "check_bft_linearizable",
    "check_bft_linearizable_plus",
    "count_lurking_writes",
]
