"""Deterministic open-loop arrival generation.

The generator turns a :class:`~repro.load.profile.LoadProfile` into a lazy
stream of :class:`Arrival` records.  Everything is drawn from one seeded
``random.Random``, so identical profiles yield identical schedules — the
property the Hypothesis tests pin and the budgeted/unbounded differential
comparison relies on.

Arrival times follow a non-homogeneous Poisson process: each gap is drawn
``expovariate(rate_at(t))``, which re-samples the instantaneous rate at every
step and therefore tracks :class:`BurstPhase` overlays closely enough for
the capacity experiments (the exact thinning construction would buy nothing
at these burst shapes).  Object choice is zipfian via an inverse-CDF table +
``bisect``; identity choice is either a round-robin walk of the universe
(``sequential`` — maximises distinct identities, the E21 default) or a
uniform draw (``uniform`` — produces a realistic mix of hot and cold
clients).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.load.profile import LoadProfile

__all__ = ["Arrival", "OpenLoopGenerator", "zipf_weights"]


@dataclass(frozen=True)
class Arrival:
    """One scheduled operation: who, what, where, when."""

    index: int
    at: float
    client: str
    obj: str
    kind: str  # "write" | "read"


def zipf_weights(n: int, skew: float) -> list[float]:
    """Unnormalised zipf weights ``1 / rank**skew`` for ranks ``1..n``."""
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


class OpenLoopGenerator:
    """Lazy, seeded arrival stream for one profile."""

    def __init__(self, profile: LoadProfile) -> None:
        self.profile = profile
        self._rng = random.Random(f"open-loop-{profile.seed}")
        weights = zipf_weights(profile.objects, profile.zipf_skew)
        total = sum(weights)
        cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        cdf[-1] = 1.0  # guard against float round-off at the tail
        self._object_cdf = cdf

    def identity_at(self, index: int) -> str:
        """The identity the ``sequential`` policy assigns to arrival ``index``."""
        profile = self.profile
        slot = (profile.identity_offset + index) % profile.identities
        return f"{profile.namespace}{slot}"

    def _pick_identity(self, index: int) -> str:
        profile = self.profile
        if profile.identity_policy == "sequential":
            return self.identity_at(index)
        slot = (
            profile.identity_offset + self._rng.randrange(profile.identities)
        ) % profile.identities
        return f"{profile.namespace}{slot}"

    def _pick_object(self) -> str:
        rank = bisect_left(self._object_cdf, self._rng.random())
        return f"obj-{rank}"

    def _pick_kind(self) -> str:
        if self.profile.write_fraction >= 1.0:
            return "write"
        if self.profile.write_fraction <= 0.0:
            return "read"
        return (
            "write"
            if self._rng.random() < self.profile.write_fraction
            else "read"
        )

    def arrivals(self) -> Iterator[Arrival]:
        """Generate the full schedule lazily, in arrival order."""
        profile = self.profile
        t = 0.0
        index = 0
        cap: Optional[int] = profile.max_arrivals
        while True:
            t += self._rng.expovariate(profile.rate_at(t))
            if t >= profile.duration:
                return
            if cap is not None and index >= cap:
                return
            yield Arrival(
                index=index,
                at=t,
                client=self._pick_identity(index),
                obj=self._pick_object(),
                kind=self._pick_kind(),
            )
            index += 1
