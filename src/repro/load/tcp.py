"""Open-loop load over real asyncio TCP (wall clock).

The deterministic simulator answers the capacity and differential questions;
this module answers "does the same open-loop schedule survive contact with a
real event loop, real sockets, and wall-clock time".  It hosts one 3f+1
group of :class:`~repro.net.asyncio_transport.ReplicaServer` listeners and
fires the profile's arrival schedule at it, one transient
:class:`~repro.net.asyncio_transport.AsyncClient` per operation.

Open-loop discipline is kept: the dispatcher sleeps until each scheduled
arrival and spawns the operation *without awaiting it*.  A semaphore bounds
concurrent sockets (the OS fd budget, not the workload, demands it) and the
wait for a slot counts toward measured latency, exactly like client-side
queueing in the sim harness.

The TCP transport hosts a single object per listener, so ``arrival.obj`` is
ignored here — every operation targets the one shared register.  Identity
scale still applies: each arrival uses its own client identity, admitted
wholesale through the registry namespace.  Use modest identity counts
(10³–10⁴); the 10⁵–10⁶ regimes belong to the virtual-time harness.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Optional

from repro.core.config import NamespaceWriters, SystemConfig, make_system
from repro.core.persistence import ClientStateBudget
from repro.load.generator import Arrival, OpenLoopGenerator
from repro.load.profile import DEFAULT_SLOS, LoadProfile, LoadReport, SloTarget
from repro.load.harness import _client_class, _replica_class, judge_slos
from repro.net.asyncio_transport import AsyncClient, ReplicaServer
from repro.obs.histograms import LatencyHistogram
from repro.core.config import Variant

__all__ = ["run_tcp_load"]


async def _run_tcp_load(
    profile: LoadProfile,
    *,
    f: int,
    variant: Variant,
    scheme: str,
    budget: Optional[ClientStateBudget],
    slos: tuple[SloTarget, ...],
    max_concurrency: int,
    op_timeout: float,
    addrs: Optional[dict[str, tuple[str, int]]] = None,
    config: Optional[SystemConfig] = None,
) -> LoadReport:
    external = addrs is not None
    if config is None:
        # An external cluster (``repro.cluster``) derives its keys from the
        # ``cluster-seed-<seed>`` convention; the in-process servers keep
        # the historical load seed so existing digests stay stable.
        seed = (
            b"cluster-seed-%d" % profile.seed
            if external
            else b"load-seed-%d" % profile.seed
        )
        config = make_system(
            f,
            scheme=scheme,
            seed=seed,
            strong=(variant == "strong"),
            client_state_budget=budget,
            authorized_writers=NamespaceWriters(profile.namespace),
        )
    config.registry.open_namespace(profile.namespace)
    replica_cls = _replica_class(variant)
    client_cls = _client_class(variant)
    servers = (
        []
        if external
        else [
            ReplicaServer(replica_cls(node_id, config))
            for node_id in config.quorums.replica_ids
        ]
    )
    if not external:
        addrs = {
            server.replica.node_id: await server.start() for server in servers
        }
    assert addrs is not None

    loop = asyncio.get_running_loop()
    started = loop.time()
    semaphore = asyncio.Semaphore(max_concurrency)
    write_hist = LatencyHistogram()
    read_hist = LatencyHistogram()
    digest = hashlib.sha256()
    seen = bytearray((profile.identities + 7) // 8)
    counters = {"arrivals": 0, "completed": 0, "failed": 0}

    async def run_op(arrival: Arrival) -> None:
        scheduled = started + arrival.at
        async with semaphore:
            endpoint = AsyncClient(
                client_cls(arrival.client, config),
                addrs,
                op_timeout=op_timeout,
            )
            try:
                await endpoint.connect()
                if arrival.kind == "write":
                    result = await endpoint.write(f"v{arrival.index}")
                else:
                    result = await endpoint.read()
            except Exception:
                counters["failed"] += 1
                return
            finally:
                await endpoint.close()
        latency = loop.time() - scheduled
        (write_hist if arrival.kind == "write" else read_hist).record(latency)
        counters["completed"] += 1
        digest.update(
            f"{arrival.index}|{arrival.client}|{arrival.kind}|"
            f"{result!r}\n".encode()
        )

    tasks: list[asyncio.Task] = []
    for arrival in OpenLoopGenerator(profile).arrivals():
        delay = started + arrival.at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        counters["arrivals"] += 1
        slot = int(arrival.client[len(profile.namespace):])
        seen[slot >> 3] |= 1 << (slot & 7)
        tasks.append(asyncio.create_task(run_op(arrival)))
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    for server in servers:
        await server.stop()

    elapsed = loop.time() - started
    arrivals = counters["arrivals"]
    completed = counters["completed"]
    completion = completed / arrivals if arrivals else 1.0
    verdicts = judge_slos(
        slos,
        write_hist=write_hist,
        read_hist=read_hist,
        completion_fraction=completion,
    )

    def q(hist: LatencyHistogram, quantile: float) -> float:
        return hist.quantile(quantile) if hist.count else 0.0

    return LoadReport(
        offered_rate=arrivals / profile.duration if profile.duration else 0.0,
        duration=profile.duration,
        arrivals=arrivals,
        completed=completed,
        failed=arrivals - completed,
        distinct_identities=bin(int.from_bytes(bytes(seen), "big")).count("1"),
        elapsed=elapsed,
        achieved_throughput=completed / elapsed if elapsed > 0 else 0.0,
        write_p50=q(write_hist, 0.50),
        write_p95=q(write_hist, 0.95),
        write_p99=q(write_hist, 0.99),
        read_p50=q(read_hist, 0.50),
        read_p95=q(read_hist, 0.95),
        read_p99=q(read_hist, 0.99),
        ops_digest=digest.hexdigest(),
        predicted_capacity=float("inf"),
        utilization=0.0,
        identity={
            "registry_resident": config.registry.resident_secrets,
            "registry_derivations": config.registry.stats.derivations,
            "registry_evictions": config.registry.stats.evictions,
        },
        slos=verdicts,
    )


def run_tcp_load(
    profile: LoadProfile,
    *,
    f: int = 1,
    variant: "Variant | str" = Variant.BASE,
    scheme: str = "hmac",
    budget: Optional[ClientStateBudget] = None,
    slos: tuple[SloTarget, ...] = DEFAULT_SLOS,
    max_concurrency: int = 64,
    op_timeout: float = 10.0,
    addrs: Optional[dict[str, tuple[str, int]]] = None,
    config: Optional[SystemConfig] = None,
) -> LoadReport:
    """Run one open-loop profile over loopback TCP and return the report.

    By default the harness hosts an in-process 3f+1 server group.  Pass
    ``addrs`` (e.g. :attr:`repro.cluster.ProcessCluster.addrs`) to fire the
    same schedule at an externally managed cluster instead — the workers
    must share the profile's seed (the ``cluster-seed-<seed>`` convention)
    and admit the profile's identity namespace (``--open-namespace``), or
    supply a matching ``config`` explicitly.
    """
    return asyncio.run(
        _run_tcp_load(
            profile,
            f=f,
            variant=Variant.coerce(variant),
            scheme=scheme,
            budget=budget,
            slos=slos,
            max_concurrency=max_concurrency,
            op_timeout=op_timeout,
            addrs=addrs,
            config=config,
        )
    )
