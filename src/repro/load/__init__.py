"""Open-loop production load harness (layer 5, experiment E21).

Declares production-shaped workloads (:mod:`repro.load.profile`), generates
deterministic Poisson/zipf arrival schedules (:mod:`repro.load.generator`),
and drives them against a replica group either in virtual time on the
simulator (:mod:`repro.load.harness`) or over real asyncio TCP
(:mod:`repro.load.tcp`), judging the outcome against SLO targets and the
:mod:`repro.analysis.costs` capacity closed forms.
"""

from repro.load.generator import Arrival, OpenLoopGenerator, zipf_weights
from repro.load.harness import (
    SimLoadHarness,
    SimLoadOptions,
    judge_slos,
    run_open_loop,
)
from repro.load.profile import (
    DEFAULT_SLOS,
    BurstPhase,
    LoadProfile,
    LoadReport,
    SloTarget,
    SloVerdict,
)
from repro.load.tcp import run_tcp_load

__all__ = [
    "Arrival",
    "OpenLoopGenerator",
    "zipf_weights",
    "SimLoadHarness",
    "SimLoadOptions",
    "judge_slos",
    "run_open_loop",
    "BurstPhase",
    "LoadProfile",
    "LoadReport",
    "SloTarget",
    "SloVerdict",
    "DEFAULT_SLOS",
    "run_tcp_load",
]
