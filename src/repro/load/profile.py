"""Open-loop load profiles and service-level objectives (E21).

A :class:`LoadProfile` declares a production-shaped workload: arrivals are an
open-loop Poisson process (requests keep coming whether or not earlier ones
finished — the regime where saturation shows up, unlike the closed-loop
scripts everywhere else in the repo), object popularity is zipfian, and the
client population is large and mostly cold.  :class:`BurstPhase` makes the
rate piecewise so sustained and burst profiles share one vocabulary.

:class:`SloTarget` declares the latency/completion objectives a run is
judged against, and :class:`LoadReport` carries the judged result plus the
identity-layer memory accounting the E21 experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError

__all__ = [
    "BurstPhase",
    "LoadProfile",
    "SloTarget",
    "SloVerdict",
    "LoadReport",
    "DEFAULT_SLOS",
]


@dataclass(frozen=True)
class BurstPhase:
    """A rate multiplier active during ``[start, start + duration)``."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0 or self.multiplier <= 0:
            raise SimulationError(f"invalid burst phase {self!r}")


@dataclass(frozen=True)
class LoadProfile:
    """One open-loop workload declaration.

    Attributes:
        rate: base arrival rate (operations per second).
        duration: length of the arrival window, seconds.
        identities: size of the client-identity universe.
        objects: number of distinct objects (zipf-ranked by popularity).
        write_fraction: probability an arrival is a write.
        zipf_skew: zipf exponent for object popularity (0 = uniform).
        seed: generator seed; identical seeds yield identical schedules.
        namespace: id prefix for generated identities (admitted wholesale
            via ``KeyRegistry.open_namespace`` / ``NamespaceWriters``).
        identity_policy: ``"sequential"`` walks the universe round-robin
            (maximises distinct identities); ``"uniform"`` draws uniformly.
        identity_offset: first identity index (lets successive runs cover
            disjoint identity ranges).
        bursts: rate multipliers overlaying the base rate.
        max_arrivals: optional hard cap on generated arrivals.
    """

    rate: float = 200.0
    duration: float = 10.0
    identities: int = 10_000
    objects: int = 64
    write_fraction: float = 0.7
    zipf_skew: float = 1.1
    seed: int = 0
    namespace: str = "load:"
    identity_policy: str = "sequential"
    identity_offset: int = 0
    bursts: tuple[BurstPhase, ...] = ()
    max_arrivals: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SimulationError(f"rate must be positive, got {self.rate}")
        if self.duration <= 0:
            raise SimulationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.identities < 1 or self.objects < 1:
            raise SimulationError(
                f"need at least one identity and one object "
                f"({self.identities}, {self.objects})"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise SimulationError(
                f"write_fraction {self.write_fraction} out of range"
            )
        if self.zipf_skew < 0:
            raise SimulationError(f"zipf_skew must be >= 0, got {self.zipf_skew}")
        if self.identity_policy not in ("sequential", "uniform"):
            raise SimulationError(
                f"unknown identity_policy {self.identity_policy!r}"
            )
        if self.identity_offset < 0:
            raise SimulationError("identity_offset must be >= 0")

    def rate_at(self, t: float) -> float:
        """The arrival rate in effect at offset ``t`` (base × bursts)."""
        rate = self.rate
        for burst in self.bursts:
            if burst.start <= t < burst.start + burst.duration:
                rate *= burst.multiplier
        return rate

    def expected_arrivals(self) -> float:
        """Mean arrivals over the window (the Poisson intensity integral)."""
        total = self.rate * self.duration
        for burst in self.bursts:
            span = min(burst.duration, max(0.0, self.duration - burst.start))
            total += self.rate * (burst.multiplier - 1.0) * span
        return total

    @classmethod
    def sustained(cls, rate: float, duration: float, **kwargs: Any) -> "LoadProfile":
        """Flat rate for the whole window."""
        return cls(rate=rate, duration=duration, **kwargs)

    @classmethod
    def bursty(
        cls,
        rate: float,
        duration: float,
        *,
        burst_multiplier: float = 4.0,
        burst_fraction: float = 0.2,
        **kwargs: Any,
    ) -> "LoadProfile":
        """A sustained base with one centred burst spike."""
        burst_len = duration * burst_fraction
        start = (duration - burst_len) / 2.0
        return cls(
            rate=rate,
            duration=duration,
            bursts=(BurstPhase(start, burst_len, burst_multiplier),),
            **kwargs,
        )


@dataclass(frozen=True)
class SloTarget:
    """One objective: ``metric`` must stay at or below ``limit``.

    Metrics: ``write.p50`` / ``write.p95`` / ``write.p99`` / ``write.mean``
    (same for ``read``) in seconds, or ``completion`` — the fraction of
    arrivals that completed, judged against ``limit`` as a *floor*.
    """

    metric: str
    limit: float


#: Default SLO battery: generous enough for an unsaturated reliable-network
#: run, tight enough that an overdriven run fails visibly.
DEFAULT_SLOS = (
    SloTarget("write.p95", 0.5),
    SloTarget("read.p95", 0.5),
    SloTarget("completion", 0.99),
)


@dataclass(frozen=True)
class SloVerdict:
    """One judged objective."""

    metric: str
    limit: float
    observed: float
    ok: bool

    def to_wire(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "limit": self.limit,
            "observed": self.observed,
            "ok": self.ok,
        }


@dataclass
class LoadReport:
    """Everything one open-loop run produced.

    ``identity`` holds the E21 memory accounting: resident entries and
    eviction counters for every identity-layer cache (registry secrets,
    verifier memos, MAC session keys, per-client replica state).
    ``ops_digest`` is a running hash over (client, object, kind, result)
    in completion order — two runs that behaved identically have equal
    digests, which is how the budgeted/unbounded differential test checks
    "identical op results" without storing every result.
    """

    offered_rate: float
    duration: float
    arrivals: int
    completed: int
    failed: int
    distinct_identities: int
    elapsed: float
    achieved_throughput: float
    write_p50: float
    write_p95: float
    write_p99: float
    read_p50: float
    read_p95: float
    read_p99: float
    ops_digest: str
    predicted_capacity: float
    utilization: float
    identity: dict[str, int] = field(default_factory=dict)
    slos: tuple[SloVerdict, ...] = ()

    @property
    def completion_fraction(self) -> float:
        return self.completed / self.arrivals if self.arrivals else 1.0

    @property
    def slo_ok(self) -> bool:
        return all(v.ok for v in self.slos)

    def to_wire(self) -> dict[str, Any]:
        return {
            "offered_rate": self.offered_rate,
            "duration": self.duration,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "failed": self.failed,
            "distinct_identities": self.distinct_identities,
            "elapsed": self.elapsed,
            "achieved_throughput": self.achieved_throughput,
            "write_p50": self.write_p50,
            "write_p95": self.write_p95,
            "write_p99": self.write_p99,
            "read_p50": self.read_p50,
            "read_p95": self.read_p95,
            "read_p99": self.read_p99,
            "ops_digest": self.ops_digest,
            "predicted_capacity": self.predicted_capacity,
            "utilization": self.utilization,
            "identity": dict(self.identity),
            "slos": [v.to_wire() for v in self.slos],
            "slo_ok": self.slo_ok,
            "completion_fraction": self.completion_fraction,
        }
