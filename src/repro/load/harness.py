"""Open-loop load harness on the deterministic simulator (E21).

Drives a :class:`~repro.load.profile.LoadProfile` against a single 3f+1
replica group in virtual time.  Three properties matter here and shape the
design:

* **Open loop** — arrivals fire on the Poisson schedule whether or not
  earlier operations finished.  Latency is measured from the *scheduled
  arrival time*, so client-side queueing during overload shows up in the
  histograms exactly as it would in production.
* **Huge cold identity universe** — a run touches 10⁵–10⁶ distinct client
  identities, which is precisely what the lazy
  :class:`~repro.crypto.keys.KeyRegistry`, the budgeted verifier/session
  caches, and the spill-capable
  :class:`~repro.core.persistence.ClientStateTable` exist for.  Client
  endpoints are *transient*: a driver registers with the network when its
  identity has work and unregisters when it drains, so neither the handler
  table nor the driver map grows with every identity ever seen.  Distinct
  identities are counted exactly in a bitmap (one bit per universe slot).
* **Bounded event backlog** — arrivals are scheduled *chained* (each
  injection schedules only the next one), so the scheduler holds O(active
  operations) timers, not O(total arrivals).

Replicas are single-server queues: with ``service_delay > 0`` each inbound
frame occupies the replica for that much virtual time, so measured capacity
can be cross-checked against
:meth:`~repro.analysis.costs.CostModel.open_loop_capacity`.

The report's ``ops_digest`` hashes (index, client, object, kind, result) in
completion order.  Virtual time makes completion order a pure function of
the profile and seeds, so a budgeted and an unbounded run of the same
profile must produce *equal* digests and equal replica fingerprints — the
differential acceptance check for the identity-layer budgets.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.costs import CostModel
from repro.core.client import (
    BftBcClient,
    FastBftBcClient,
    OptimizedBftBcClient,
    StrongBftBcClient,
)
from repro.core.config import NamespaceWriters, SystemConfig, Variant, make_system
from repro.core.fast_replica import FastBftBcReplica
from repro.core.messages import Message
from repro.core.multiobject import MultiObjectClient, MultiObjectReplica
from repro.core.persistence import ClientStateBudget
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.errors import SimulationError
from repro.load.generator import Arrival, OpenLoopGenerator
from repro.load.profile import (
    DEFAULT_SLOS,
    LoadProfile,
    LoadReport,
    SloTarget,
    SloVerdict,
)
from repro.net.simnet import LinkProfile, SimNetwork
from repro.obs.histograms import LatencyHistogram
from repro.obs.instrumentation import Instrumentation
from repro.sim.scheduler import Scheduler

__all__ = ["SimLoadOptions", "SimLoadHarness", "run_open_loop", "judge_slos"]


def _replica_class(variant: Variant) -> type[BftBcReplica]:
    if variant == "optimized":
        return OptimizedBftBcReplica
    if variant == "fastpath":
        return FastBftBcReplica
    return BftBcReplica


def _client_class(variant: Variant) -> type[BftBcClient]:
    if variant == "optimized":
        return OptimizedBftBcClient
    if variant == "fastpath":
        return FastBftBcClient
    if variant == "strong":
        return StrongBftBcClient
    return BftBcClient


def judge_slos(
    targets: tuple[SloTarget, ...],
    *,
    write_hist: LatencyHistogram,
    read_hist: LatencyHistogram,
    completion_fraction: float,
) -> tuple[SloVerdict, ...]:
    """Judge each target against the run's observations.

    Latency metrics (``write.p95`` …) are ceilings; ``completion`` is a
    floor.  A latency target over an *empty* histogram passes trivially
    (a read-only profile has nothing to hold against a write SLO).
    """
    verdicts = []
    for target in targets:
        if target.metric == "completion":
            observed = completion_fraction
            ok = observed >= target.limit
        else:
            series, _, point = target.metric.partition(".")
            hist = {"write": write_hist, "read": read_hist}.get(series)
            if hist is None or point not in ("p50", "p95", "p99", "mean"):
                raise SimulationError(f"unknown SLO metric {target.metric!r}")
            if hist.count == 0:
                observed, ok = 0.0, True
            else:
                observed = (
                    hist.mean()
                    if point == "mean"
                    else hist.quantile(int(point[1:]) / 100.0)
                )
                ok = observed <= target.limit
        verdicts.append(
            SloVerdict(
                metric=target.metric,
                limit=target.limit,
                observed=observed,
                ok=ok,
            )
        )
    return tuple(verdicts)


@dataclass
class SimLoadOptions:
    """Deployment knobs for one simulated load run."""

    f: int = 1
    variant: Variant = Variant.BASE
    scheme: str = "hmac"
    #: Virtual-time cost of serving one inbound frame at a replica
    #: (single-server queue); 0 = infinitely fast replicas.
    service_delay: float = 0.0
    link: LinkProfile = field(default_factory=LinkProfile.reliable)
    #: Per-replica cap on resident per-client protocol state; ``None``
    #: keeps the classic all-resident behaviour.
    budget: Optional[ClientStateBudget] = None
    #: Registry derived-secret LRU capacity; ``None`` = registry default.
    secret_cache: Optional[int] = None
    slos: tuple[SloTarget, ...] = DEFAULT_SLOS
    retransmit_interval: float = 0.25
    #: Virtual time allowed after the arrival window for in-flight
    #: operations to drain before they count as failed.
    drain: float = 30.0
    instrumentation: Optional[Instrumentation] = None

    def __post_init__(self) -> None:
        self.variant = Variant.coerce(self.variant)


class _LoadReplicaNode:
    """One replica endpoint: a single-server queue over a multi-object host."""

    def __init__(self, harness: "SimLoadHarness", node_id: str) -> None:
        self.harness = harness
        self.replica = MultiObjectReplica(
            node_id, harness.config, _replica_class(harness.options.variant)
        )
        self.node_id = node_id
        self._busy_until = 0.0
        harness.network.register(node_id, self._on_message)

    def _on_message(self, src: str, message: Message) -> None:
        if self.harness.options.service_delay <= 0:
            self._process(src, message)
            return
        # Single-server queue: each frame occupies the replica for
        # ``service_delay`` of virtual time, starting when the CPU frees up.
        start = max(self.harness.scheduler.now, self._busy_until)
        self._busy_until = start + self.harness.options.service_delay
        self.harness.scheduler.call_at(
            self._busy_until, lambda: self._process(src, message)
        )

    def _process(self, src: str, message: Message) -> None:
        reply = self.replica.handle(src, message)
        if reply is not None:
            self.harness.network.send(self.node_id, src, reply)


class _ClientDriver:
    """A transient endpoint for one identity while it has work.

    Created on an identity's first pending arrival, registered with the
    network for exactly that long, and parked (unregistered, dropped from
    the active map) once its queue drains.  Operations run sequentially
    per identity; queueing delay counts toward the measured latency.
    """

    def __init__(self, harness: "SimLoadHarness", identity: str) -> None:
        self.harness = harness
        self.identity = identity
        self.client = MultiObjectClient(
            identity, harness.config, _client_class(harness.options.variant)
        )
        self.pending: deque[Arrival] = deque()
        self.current: Optional[Arrival] = None
        # Restore the identity's write certificates from its last
        # incarnation.  A real client retains its certs across idle
        # periods; without them nothing ever piggybacks a write cert back
        # to the replicas, write_ts never advances, prepare lists are
        # never pruned, and a returning writer wedges on plist-conflict.
        for obj, cert in harness._cert_wallet.get(identity, {}).items():
            self.client.object_client(obj).write_cert = cert
        harness.network.register(identity, self._on_message)

    def submit(self, arrival: Arrival) -> None:
        self.pending.append(arrival)
        if self.current is None:
            self._next()

    def _next(self) -> None:
        arrival = self.pending.popleft()
        self.current = arrival
        if arrival.kind == "write":
            sends = self.client.begin_write(arrival.obj, f"v{arrival.index}")
        else:
            sends = self.client.begin_read(arrival.obj)
        self._send_all(sends)
        self.harness.scheduler.call_later(
            self.harness.options.retransmit_interval, self._retransmit_tick
        )

    def _retransmit_tick(self) -> None:
        if self.current is None:
            return
        self._send_all(self.client.retransmit())
        self.harness.scheduler.call_later(
            self.harness.options.retransmit_interval, self._retransmit_tick
        )

    def _on_message(self, src: str, message: Message) -> None:
        self._send_all(self.client.deliver(src, message))
        arrival = self.current
        if arrival is not None and not self.client.busy(arrival.obj):
            self.current = None
            self.harness._complete(arrival, self.client.result(arrival.obj))
            if self.pending:
                self._next()
            else:
                self.harness._park(self)

    def _send_all(self, sends) -> None:
        for send in sends:
            self.harness.network.send(self.identity, send.dest, send.message)


class SimLoadHarness:
    """One open-loop run: profile in, :class:`LoadReport` out."""

    def __init__(
        self, profile: LoadProfile, options: Optional[SimLoadOptions] = None
    ) -> None:
        self.profile = profile
        self.options = options or SimLoadOptions()
        self.config: SystemConfig = make_system(
            self.options.f,
            scheme=self.options.scheme,
            seed=b"load-seed-%d" % profile.seed,
            strong=(self.options.variant == "strong"),
            client_state_budget=self.options.budget,
            secret_cache=self.options.secret_cache,
            authorized_writers=NamespaceWriters(profile.namespace),
        )
        # One wholesale grant instead of 10^6 registrations: every identity
        # under the namespace is known to the registry, secrets derive
        # lazily into the bounded cache on first use.
        self.config.registry.open_namespace(profile.namespace)
        self.scheduler = Scheduler()
        self.network = SimNetwork(
            self.scheduler, profile=self.options.link, seed=profile.seed
        )
        self.instrumentation = self.options.instrumentation or Instrumentation(
            enabled=True
        )
        self.instrumentation.bind_clock(lambda: self.scheduler.now)
        self.replicas = [
            _LoadReplicaNode(self, node_id)
            for node_id in self.config.quorums.replica_ids
        ]
        self._drivers: dict[str, _ClientDriver] = {}
        # Client-side keepsakes: each identity's latest write certificate
        # per object, carried across driver incarnations (see
        # :class:`_ClientDriver`).  A few frozen signatures per writing
        # identity — not replica state, so not part of ``tracked_entries``.
        self._cert_wallet: dict[str, dict[str, object]] = {}
        self._arrivals_iter: Iterator[Arrival] = OpenLoopGenerator(
            profile
        ).arrivals()
        self._exhausted = False
        self._seen = bytearray((profile.identities + 7) // 8)
        self._digest = hashlib.sha256()
        self.arrivals = 0
        self.completed = 0
        self.driver_activations = 0
        self.write_hist = LatencyHistogram()
        self.read_hist = LatencyHistogram()

    # -- arrival injection -------------------------------------------------

    def _schedule_next_arrival(self) -> None:
        arrival = next(self._arrivals_iter, None)
        if arrival is None:
            self._exhausted = True
            return
        self.scheduler.call_at(arrival.at, lambda: self._inject(arrival))

    def _inject(self, arrival: Arrival) -> None:
        self.arrivals += 1
        slot = int(arrival.client[len(self.profile.namespace):])
        self._seen[slot >> 3] |= 1 << (slot & 7)
        driver = self._drivers.get(arrival.client)
        if driver is None:
            driver = _ClientDriver(self, arrival.client)
            self._drivers[arrival.client] = driver
            self.driver_activations += 1
        driver.submit(arrival)
        self._schedule_next_arrival()

    # -- completion / parking ----------------------------------------------

    def _complete(self, arrival: Arrival, result: object) -> None:
        self.completed += 1
        latency = self.scheduler.now - arrival.at
        if arrival.kind == "write":
            self.write_hist.record(latency)
            self.instrumentation.observe("load.write", latency)
        else:
            self.read_hist.record(latency)
            self.instrumentation.observe("load.read", latency)
        self._digest.update(
            f"{arrival.index}|{arrival.client}|{arrival.obj}|"
            f"{arrival.kind}|{result!r}\n".encode()
        )

    def _park(self, driver: _ClientDriver) -> None:
        certs = {
            obj: driver.client.object_client(obj).write_cert
            for obj in driver.client.objects
            if driver.client.object_client(obj).write_cert is not None
        }
        if certs:
            self._cert_wallet[driver.identity] = certs
        self.network.unregister(driver.identity)
        del self._drivers[driver.identity]

    # -- accounting --------------------------------------------------------

    @property
    def active_drivers(self) -> int:
        return len(self._drivers)

    def distinct_identities(self) -> int:
        return bin(int.from_bytes(bytes(self._seen), "big")).count("1")

    def client_state_totals(self) -> dict[str, int]:
        """Resident/spilled counts and spill/rehydrate totals, all replicas."""
        resident = spilled = spills = rehydrations = 0
        for node in self.replicas:
            host = node.replica
            for obj in host.objects:
                table = host.object_state(obj).client_state
                resident += table.resident_entries
                spilled += table.spilled_entries
                spills += table.stats.spills
                rehydrations += table.stats.rehydrations
        return {
            "resident": resident,
            "spilled": spilled,
            "spills": spills,
            "rehydrations": rehydrations,
        }

    def tracked_entries(self) -> int:
        """Total *resident* identity-layer entries, all caches, right now.

        The quantity the budgeted-vs-unbounded differential compares:
        registry secrets + verifier signature memos + MAC session keys +
        per-client protocol state held hot at replicas.
        """
        total = self.config.registry.resident_secrets
        assert self.config.verifier is not None
        total += self.config.verifier.resident_signature_entries
        if self.config.authenticator is not None:
            total += self.config.authenticator.resident_sessions
        total += self.client_state_totals()["resident"]
        return total

    def identity_accounting(self) -> dict[str, int]:
        registry = self.config.registry
        verifier = self.config.verifier
        assert verifier is not None
        state = self.client_state_totals()
        out = {
            "registry_resident": registry.resident_secrets,
            "registry_derivations": registry.stats.derivations,
            "registry_evictions": registry.stats.evictions,
            "verifier_resident": verifier.resident_signature_entries,
            "verifier_evictions": (
                verifier.stats.signature_evictions
                + verifier.stats.signer_evictions
            ),
            "client_state_resident": state["resident"],
            "client_state_spilled": state["spilled"],
            "client_state_spills": state["spills"],
            "client_state_rehydrations": state["rehydrations"],
            "driver_activations": self.driver_activations,
            "tracked_entries": self.tracked_entries(),
        }
        if self.config.authenticator is not None:
            out["session_resident"] = self.config.authenticator.resident_sessions
            out["session_evictions"] = (
                self.config.authenticator.stats.session_key_evictions
            )
        return out

    def object_fingerprints(self) -> dict[str, dict[str, str]]:
        """Per-replica, per-object state fingerprints (differential check)."""
        out: dict[str, dict[str, str]] = {}
        for node in self.replicas:
            host = node.replica
            out[node.node_id] = {
                obj: host.object_state(obj).state_fingerprint().hex()
                for obj in sorted(host.objects)
            }
        return out

    # -- execution ---------------------------------------------------------

    def run(self, *, max_events: int = 50_000_000) -> LoadReport:
        started = self.scheduler.now
        self._schedule_next_arrival()
        deadline = started + self.profile.duration + self.options.drain
        self.scheduler.run(
            until=deadline,
            max_events=max_events,
            stop_when=lambda: self._exhausted and not self._drivers,
        )
        elapsed = self.scheduler.now - started
        failed = self.arrivals - self.completed
        offered = (
            self.arrivals / self.profile.duration
            if self.profile.duration
            else 0.0
        )
        model = CostModel(self.config.quorums)
        variant_name = self.options.variant.value
        predicted = (
            model.open_loop_capacity(
                self.options.service_delay,
                variant_name,
                write_fraction=self.profile.write_fraction,
            )
            if self.options.service_delay > 0
            else float("inf")
        )
        utilization = (
            offered / predicted if predicted != float("inf") else 0.0
        )
        completion = (
            self.completed / self.arrivals if self.arrivals else 1.0
        )
        verdicts = judge_slos(
            self.options.slos,
            write_hist=self.write_hist,
            read_hist=self.read_hist,
            completion_fraction=completion,
        )

        def q(hist: LatencyHistogram, quantile: float) -> float:
            return hist.quantile(quantile) if hist.count else 0.0

        return LoadReport(
            offered_rate=offered,
            duration=self.profile.duration,
            arrivals=self.arrivals,
            completed=self.completed,
            failed=failed,
            distinct_identities=self.distinct_identities(),
            elapsed=elapsed,
            achieved_throughput=(
                self.completed / elapsed if elapsed > 0 else 0.0
            ),
            write_p50=q(self.write_hist, 0.50),
            write_p95=q(self.write_hist, 0.95),
            write_p99=q(self.write_hist, 0.99),
            read_p50=q(self.read_hist, 0.50),
            read_p95=q(self.read_hist, 0.95),
            read_p99=q(self.read_hist, 0.99),
            ops_digest=self._digest.hexdigest(),
            predicted_capacity=predicted,
            utilization=utilization,
            identity=self.identity_accounting(),
            slos=verdicts,
        )


def run_open_loop(
    profile: LoadProfile, options: Optional[SimLoadOptions] = None, **kwargs
) -> LoadReport:
    """Run one open-loop profile on the simulator and return the report.

    Keyword overrides build a :class:`SimLoadOptions` when none is given.
    """
    if options is None:
        options = SimLoadOptions(**kwargs)
    elif kwargs:
        raise SimulationError("pass either options or keyword overrides, not both")
    return SimLoadHarness(profile, options).run()
