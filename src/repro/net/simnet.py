"""Seeded simulation of an unreliable asynchronous network.

Implements the §2 network model: messages "may fail to deliver, delay them,
duplicate them, corrupt them, or deliver them out of order", with no bound on
delays.  The fair-loss liveness assumption ("if a client keeps retransmitting
a request to a correct server, the reply ... will eventually be received")
holds as long as ``drop_rate < 1``.

Every message is serialised through the canonical codec on send and parsed
again on delivery, so byte counts are the real wire sizes and corruption is
applied to actual bytes.  Reordering arises naturally from randomly drawn
per-message delays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.messages import Message, message_from_wire, message_wire_bytes
from repro.encoding import canonical_decode
from repro.errors import NetworkError, ProtocolError, EncodingError

if TYPE_CHECKING:  # imported lazily to avoid a package cycle with repro.sim
    from repro.sim.scheduler import Scheduler

__all__ = ["LinkProfile", "NetworkStats", "SimNetwork"]

Handler = Callable[[str, Message], None]


@dataclass(frozen=True)
class LinkProfile:
    """Stochastic behaviour of a link (or of the whole network).

    Attributes:
        min_delay / max_delay: one-way delay drawn uniformly per message.
        drop_rate: probability a message is silently lost.
        duplicate_rate: probability a message is delivered twice.
        corrupt_rate: probability one byte of the encoding is flipped.
        reorder_rate: probability a message is held back past several
            delay windows, so messages sent after it overtake it.  Mild
            reordering already arises from the uniform delay draw; this
            knob forces the aggressive out-of-order deliveries the §2
            model permits ("deliver them out of order").
    """

    min_delay: float = 0.001
    max_delay: float = 0.010
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.drop_rate <= 1:
            raise NetworkError(f"drop_rate {self.drop_rate} out of range")
        if not 0 <= self.duplicate_rate <= 1:
            raise NetworkError(f"duplicate_rate {self.duplicate_rate} out of range")
        if not 0 <= self.corrupt_rate <= 1:
            raise NetworkError(f"corrupt_rate {self.corrupt_rate} out of range")
        if not 0 <= self.reorder_rate <= 1:
            raise NetworkError(f"reorder_rate {self.reorder_rate} out of range")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise NetworkError(
                f"invalid delay range [{self.min_delay}, {self.max_delay}]"
            )

    @classmethod
    def reliable(cls) -> "LinkProfile":
        """Loss-free, low-jitter profile for baseline measurements."""
        return cls()

    @classmethod
    def lossy(cls, drop_rate: float = 0.05) -> "LinkProfile":
        return cls(drop_rate=drop_rate, max_delay=0.02)

    @classmethod
    def harsh(cls) -> "LinkProfile":
        """Aggressive loss, duplication, corruption and jitter."""
        return cls(
            min_delay=0.001,
            max_delay=0.050,
            drop_rate=0.10,
            duplicate_rate=0.05,
            corrupt_rate=0.02,
        )


#: The distinct causes a message can be lost to, as recorded in
#: :attr:`NetworkStats.dropped_by_reason`.
DROP_REASONS = (
    "link-loss",      # the stochastic drop_rate fired
    "partitioned",    # src/dst pair currently partitioned
    "crashed",        # src or dst crashed (at send or while in flight)
    "parse-failure",  # delivered bytes failed to decode (corruption)
    "unregistered",   # destination has no handler
)


@dataclass
class NetworkStats:
    """Aggregate traffic counters (experiments E2/E8 read these)."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_corrupted: int = 0
    messages_reordered: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    sent_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    dropped_by_kind: dict[str, int] = field(default_factory=dict)
    dropped_by_reason: dict[str, int] = field(default_factory=dict)

    def record_send(self, kind: str, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size

    def record_drop(self, kind: str, reason: str) -> None:
        self.messages_dropped += 1
        self.dropped_by_kind[kind] = self.dropped_by_kind.get(kind, 0) + 1
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_corrupted = 0
        self.messages_reordered = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.sent_by_kind.clear()
        self.bytes_by_kind.clear()
        self.dropped_by_kind.clear()
        self.dropped_by_reason.clear()


class SimNetwork:
    """The simulated network: point-to-point, unreliable, asynchronous."""

    def __init__(
        self,
        scheduler: "Scheduler",
        profile: LinkProfile | None = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.profile = profile if profile is not None else LinkProfile.reliable()
        self._rng = random.Random(seed)
        self._handlers: dict[str, Handler] = {}
        self._link_overrides: dict[tuple[str, str], LinkProfile] = {}
        self._partitioned: set[tuple[str, str]] = set()
        self._crashed: set[str] = set()
        self._blocked_kinds: dict[str, set[str]] = {}
        self.stats = NetworkStats()
        #: Optional observer called as ``tap(event, src, dst, message_kind)``
        #: with event in {"sent", "dropped", "corrupted", "delivered"}.
        #: Used by repro.sim.tracing.MessageTrace.
        self.tap: Callable[[str, str, str, str], None] | None = None

    # -- topology management -------------------------------------------------

    def register(self, node_id: str, handler: Handler) -> None:
        """Attach a node; ``handler(src, message)`` runs on each delivery."""
        if node_id in self._handlers:
            raise NetworkError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        """Detach a node; in-flight messages to it drop as ``unregistered``.

        Lets transient endpoints (the open-loop load harness parks finished
        client identities) come and go without the handler table growing
        with every identity ever seen.  Unknown ids are a no-op.
        """
        self._handlers.pop(node_id, None)
        self._crashed.discard(node_id)

    def set_link_profile(self, src: str, dst: str, profile: LinkProfile) -> None:
        """Override the stochastic profile of one directed link."""
        self._link_overrides[(src, dst)] = profile

    def partition(self, a: str, b: str) -> None:
        """Cut both directions between ``a`` and ``b`` until healed."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def block_kinds(self, dst: str, kinds: "Iterable[str]") -> None:
        """Drop inbound messages of the given KINDs at ``dst`` until
        unblocked.  Models a selective outage (e.g. a middlebox filtering
        the fast-path traffic) that forces clients onto the signed
        fallback without touching other message types."""
        self._blocked_kinds.setdefault(dst, set()).update(kinds)

    def unblock_kinds(self, dst: str, kinds: "Iterable[str] | None" = None) -> None:
        """Heal a selective block; ``kinds=None`` clears every block at
        ``dst``."""
        if kinds is None:
            self._blocked_kinds.pop(dst, None)
            return
        blocked = self._blocked_kinds.get(dst)
        if blocked is None:
            return
        blocked.difference_update(kinds)
        if not blocked:
            del self._blocked_kinds[dst]

    def crash(self, node_id: str) -> None:
        """Stop delivering anything to/from ``node_id`` (benign crash)."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        return node_id in self._crashed

    # -- sending ---------------------------------------------------------------

    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` through the lossy fabric.

        Serialisation goes through the encode-once wire cache: a message
        fanned out to 3f+1 replicas (or retransmitted) is canonically
        encoded exactly once, and every link reuses the same bytes.
        """
        encoded = message_wire_bytes(message)
        self.stats.record_send(message.KIND, len(encoded))
        if self.tap is not None:
            self.tap("sent", src, dst, message.KIND)
        if src in self._crashed or dst in self._crashed:
            self._drop(src, dst, message.KIND, "crashed")
            return
        if (src, dst) in self._partitioned:
            self._drop(src, dst, message.KIND, "partitioned")
            return
        if message.KIND in self._blocked_kinds.get(dst, ()):
            self._drop(src, dst, message.KIND, "blocked-kind")
            return
        profile = self._link_overrides.get((src, dst), self.profile)
        if self._rng.random() < profile.drop_rate:
            self._drop(src, dst, message.KIND, "link-loss")
            return
        if profile.corrupt_rate and self._rng.random() < profile.corrupt_rate:
            encoded = self._flip_byte(encoded)
            self.stats.messages_corrupted += 1
            if self.tap is not None:
                self.tap("corrupted", src, dst, message.KIND)
        copies = 1
        if profile.duplicate_rate and self._rng.random() < profile.duplicate_rate:
            copies = 2
            self.stats.messages_duplicated += 1
        for _ in range(copies):
            delay = self._rng.uniform(profile.min_delay, profile.max_delay)
            if profile.reorder_rate and self._rng.random() < profile.reorder_rate:
                # Hold the copy back past several delay windows so that
                # messages sent after it overtake it on delivery.
                window = max(profile.max_delay, 1e-3)
                delay += self._rng.uniform(window, 4.0 * window)
                self.stats.messages_reordered += 1
            self.scheduler.call_later(
                delay,
                lambda data=encoded, kind=message.KIND: self._deliver(
                    src, dst, data, kind
                ),
            )

    def _drop(self, src: str, dst: str, kind: str, reason: str) -> None:
        self.stats.record_drop(kind, reason)
        if self.tap is not None:
            self.tap("dropped", src, dst, kind)

    def _flip_byte(self, data: bytes) -> bytes:
        if not data:
            return data
        index = self._rng.randrange(len(data))
        mutated = bytearray(data)
        mutated[index] ^= 1 << self._rng.randrange(8)
        return bytes(mutated)

    def _deliver(self, src: str, dst: str, encoded: bytes, kind: str) -> None:
        if dst in self._crashed:
            self._drop(src, dst, kind, "crashed")
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self._drop(src, dst, kind, "unregistered")
            return
        try:
            message = message_from_wire(canonical_decode(encoded))
        except (EncodingError, ProtocolError):
            # A corrupted message fails to parse and is discarded, exactly
            # like a loss — the retransmission machinery recovers.
            self._drop(src, dst, kind, "parse-failure")
            return
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += len(encoded)
        if self.tap is not None:
            self.tap("delivered", src, dst, message.KIND)
        handler(src, message)

    # -- convenience -------------------------------------------------------------

    def broadcast(self, src: str, dests: tuple[str, ...], message: Message) -> None:
        for dst in dests:
            self.send(src, dst, message)

    @property
    def node_ids(self) -> frozenset[str]:
        return frozenset(self._handlers)
