"""Network substrates.

* :mod:`repro.net.simnet` — the seeded unreliable network used by the
  deterministic simulator (loss, delay, duplication, reordering,
  corruption), matching the §2 model.
* :mod:`repro.net.asyncio_transport` — a real length-prefixed TCP transport
  so the same protocol state machines can run as asyncio services.
* :mod:`repro.net.shard_transport` — the sharded roles (shard members,
  routers, reconfigurators, bootstrap) over the same TCP framing.
"""

from repro.net.simnet import LinkProfile, NetworkStats, SimNetwork

__all__ = ["SimNetwork", "LinkProfile", "NetworkStats"]
