"""Asyncio TCP transport for sharded deployments.

The shard-layer roles are sans-I/O like the core protocol objects, so the
real-network story is the same as :mod:`repro.net.asyncio_transport` with
three additions:

* :class:`ShardReplicaServer` hosts one :class:`~repro.shard.replica.ShardReplica`
  — object traffic, directory fetches (``DIR-REQ``), endorsement signing,
  epoch installs, and state-transfer serving all arrive as ordinary frames
  on the same listener.
* :class:`AsyncShardRouter` drives a :class:`~repro.shard.router.ShardRouter`
  over sockets: ``await write(obj, v)`` / ``await read(obj)`` route through
  the ring, and an ``EPOCH-STALE`` answer triggers the directory fetch and
  in-place client migration transparently inside the operation loop.
* :func:`bootstrap_over_tcp` and :class:`AsyncReconfigurator` run the two
  operational flows — a joining replica's state transfer from 2f+1 old
  members, and the sign/install epoch change — against live servers.

Connection handling is inherited wholesale: frames to broken connections
are dropped and retransmission recovers, per the §2 fair-loss model.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.core.messages import Message
from repro.core.operations import Send
from repro.encoding import FrameDecoder
from repro.errors import EncodingError, NetworkError, OperationFailedError, ProtocolError
from repro.net.asyncio_transport import (
    ReplicaServer,
    _decode_envelope,
    _encode_envelope,
)
from repro.shard.reconfig import Reconfigurator
from repro.shard.replica import ShardReplica
from repro.shard.router import ShardRouter

__all__ = [
    "ShardReplicaServer",
    "AsyncShardRouter",
    "AsyncReconfigurator",
    "bootstrap_over_tcp",
]


class ShardReplicaServer(ReplicaServer):
    """Hosts one shard member behind a TCP listener.

    The base server's frame loop already does the right thing — decode,
    ``replica.handle``, write back the reply — because
    :class:`~repro.shard.replica.ShardReplica` exposes the same
    ``handle``/``node_id``/``instrumentation`` surface as a core replica.
    The subclass exists to make the hosted type explicit and to surface
    shard-specific introspection.
    """

    def __init__(
        self, replica: ShardReplica, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__(replica, host=host, port=port)  # type: ignore[arg-type]

    @property
    def shard(self) -> str:
        return self.replica.shard  # type: ignore[attr-defined]

    @property
    def epoch(self) -> int:
        return self.replica.epoch  # type: ignore[attr-defined]


class _SocketPool:
    """Dial-on-demand connections with a shared inbox, used by every
    client-side shard role (router, reconfigurator, bootstrap driver)."""

    def __init__(self, node_id: str, addrs: dict[str, tuple[str, int]]) -> None:
        self.node_id = node_id
        self.addrs = dict(addrs)
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._reader_tasks: list[asyncio.Task] = []
        self.inbox: asyncio.Queue[tuple[str, Message]] = asyncio.Queue()

    async def _try_connect(self, node_id: str) -> bool:
        addr = self.addrs.get(node_id)
        if addr is None:
            return False
        try:
            reader, writer = await asyncio.open_connection(*addr)
        except OSError:
            return False
        self._writers[node_id] = writer
        task = asyncio.create_task(self._read_loop(node_id, reader, writer))
        self._reader_tasks.append(task)
        return True

    async def _read_loop(
        self,
        node_id: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for payload in decoder.feed(chunk):
                    try:
                        src, message = _decode_envelope(payload)
                    except (EncodingError, ProtocolError):
                        continue
                    await self.inbox.put((src, message))
        except (ConnectionError, EncodingError):
            pass
        finally:
            if self._writers.get(node_id) is writer:
                self._writers.pop(node_id, None)

    async def send_all(self, sends: list[Send]) -> None:
        for send in sends:
            writer = self._writers.get(send.dest)
            if writer is None or writer.is_closing():
                if not await self._try_connect(send.dest):
                    continue  # unreachable peer: message loss, not an error
                writer = self._writers[send.dest]
            try:
                writer.write(_encode_envelope(self.node_id, send.message))
                await writer.drain()
            except (OSError, RuntimeError):
                self._writers.pop(send.dest, None)

    async def close(self) -> None:
        for task in self._reader_tasks:
            task.cancel()
        for writer in list(self._writers.values()):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
        self._writers.clear()
        self._reader_tasks.clear()


class AsyncShardRouter:
    """Async facade over a :class:`~repro.shard.router.ShardRouter`.

    ``addrs`` must cover every replica the router could contact — all
    members of every shard, including ones that might appear through a
    directory refresh (address discovery is out of scope here, as it is
    for the single-group transport).
    """

    def __init__(
        self,
        router: ShardRouter,
        addrs: dict[str, tuple[str, int]],
        *,
        retransmit_interval: float = 0.2,
        op_timeout: float = 30.0,
    ) -> None:
        self.router = router
        self.retransmit_interval = retransmit_interval
        self.op_timeout = op_timeout
        self._pool = _SocketPool(router.node_id, addrs)

    async def write(self, obj: str, value: Any) -> Any:
        """Perform one write on ``obj``; returns the committed timestamp."""
        return await self._run_op(obj, self.router.begin_write(obj, value))

    async def read(self, obj: str) -> Any:
        """Perform one read on ``obj``; returns the value."""
        return await self._run_op(obj, self.router.begin_read(obj))

    async def close(self) -> None:
        await self._pool.close()

    async def _run_op(self, obj: str, initial_sends: list[Send]) -> Any:
        await self._pool.send_all(initial_sends)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.op_timeout
        while self.router.busy(obj):
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise OperationFailedError(
                    f"operation on {obj!r} timed out after {self.op_timeout}s"
                )
            timeout = min(self.retransmit_interval, remaining)
            try:
                src, message = await asyncio.wait_for(
                    self._pool.inbox.get(), timeout=timeout
                )
            except asyncio.TimeoutError:
                # Covers lost frames AND stalled refreshes: retransmit()
                # re-issues both protocol phases and directory fetches.
                await self._pool.send_all(self.router.retransmit())
                continue
            await self._pool.send_all(self.router.deliver(src, message))
        return self.router.result(obj)


class AsyncReconfigurator:
    """Runs one epoch change against live TCP servers."""

    def __init__(
        self,
        reconfigurator: Reconfigurator,
        addrs: dict[str, tuple[str, int]],
        *,
        retransmit_interval: float = 0.2,
    ) -> None:
        self.reconfigurator = reconfigurator
        self.retransmit_interval = retransmit_interval
        self._pool = _SocketPool(reconfigurator.node_id, addrs)

    async def replace(
        self, remove: str, add: str, *, timeout: float = 30.0
    ) -> None:
        """Drive the sign + install phases to completion (or time out)."""
        await self._pool.send_all(
            self.reconfigurator.begin_replace(remove, add)
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            while not self.reconfigurator.done:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise OperationFailedError(
                        f"reconfiguration stuck in phase "
                        f"{self.reconfigurator.phase!r} after {timeout}s"
                    )
                try:
                    src, message = await asyncio.wait_for(
                        self._pool.inbox.get(),
                        timeout=min(self.retransmit_interval, remaining),
                    )
                except asyncio.TimeoutError:
                    await self._pool.send_all(self.reconfigurator.retransmit())
                    continue
                await self._pool.send_all(
                    self.reconfigurator.deliver(src, message)
                )
        finally:
            await self._pool.close()


async def bootstrap_over_tcp(
    replica: ShardReplica,
    addrs: dict[str, tuple[str, int]],
    *,
    retransmit_interval: float = 0.2,
    timeout: float = 30.0,
) -> None:
    """Run a joining replica's state transfer against live servers.

    Sends ``XFER-REQ`` to the previous members, feeds the validated
    ``XFER-REPLY`` frames back into the replica, and returns once a quorum
    of transfers made it :attr:`~repro.shard.replica.ShardReplica.ready`.
    The replica can then be hosted by a :class:`ShardReplicaServer`.
    """
    if replica.ready:
        return
    pool = _SocketPool(replica.node_id, addrs)
    try:
        await pool.send_all(replica.begin_bootstrap())
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not replica.ready:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise NetworkError(
                    f"state transfer for {replica.node_id!r} incomplete "
                    f"after {timeout}s"
                )
            try:
                src, message = await asyncio.wait_for(
                    pool.inbox.get(),
                    timeout=min(retransmit_interval, remaining),
                )
            except asyncio.TimeoutError:
                await pool.send_all(replica.bootstrap_retransmit())
                continue
            reply = replica.handle(src, message)
            if reply is not None:
                await pool.send_all([Send(dest=src, message=reply)])
    finally:
        await pool.close()
