"""A byte-mangling TCP proxy: chaos injection for the real transport.

The simulator's :class:`~repro.net.simnet.LinkProfile` faults operate on
whole messages; a real deployment also faces *byte-level* adversity —
half-written frames, injected garbage, connections reset mid-stream.  A
:class:`ChaosProxy` sits between an :class:`~repro.net.asyncio_transport.AsyncClient`
and one :class:`~repro.net.asyncio_transport.ReplicaServer` and applies a
seeded :class:`ProxyProfile` of such faults to the forwarded stream, so the
chaos campaign (:mod:`repro.chaos.tcp`) can assert the protocol's §2
fair-loss recovery story against the actual framing, retransmission, and
re-dial code paths.

Fault semantics keep the stream honest about what TCP can do: dropping or
truncating bytes *within* a live connection would silently desynchronise
the framing (something real TCP never does), so ``drop``/``truncate``
always close the connection afterwards — from the endpoints' perspective
they are a connection reset with (for truncate) a half-delivered frame.
``garbage`` injects a complete, well-framed noise payload (exercising the
codec's rejection path without killing the connection) or, half the time,
raw bad-magic bytes (exercising the hard connection-drop path).

Per-connection randomness derives from ``random.Random(f"chaos-proxy/
{seed}/{n}")`` for the *n*-th accepted connection, so a proxy's behaviour
is reproducible given the same seed and connection order (TCP scheduling
itself is of course not deterministic — the simulator remains the
authority on exact replay; the proxy's job is coverage, not replay).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field, fields
from typing import Optional

from repro.encoding import encode_frame
from repro.errors import SimulationError

__all__ = ["ProxyProfile", "ProxyStats", "ChaosProxy"]


@dataclass(frozen=True)
class ProxyProfile:
    """Per-chunk fault rates applied to each forwarded direction."""

    #: Probability of sleeping before forwarding a chunk (adds latency
    #: without reordering — the pump is sequential per direction).
    delay_rate: float = 0.0
    min_delay: float = 0.0
    max_delay: float = 0.005
    #: Probability of discarding a chunk and closing the connection (a
    #: reset whose final bytes were never delivered).
    drop_rate: float = 0.0
    #: Probability of forwarding a random prefix of a chunk and closing —
    #: the peer sees a mid-frame disconnect.
    truncate_rate: float = 0.0
    #: Probability of injecting a garbage frame (or raw bad-magic bytes)
    #: ahead of a chunk.
    garbage_rate: float = 0.0
    #: Probability of closing the connection outright before a chunk.
    reset_rate: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value < 0:
                raise SimulationError(f"{spec.name} must be >= 0, got {value}")
        for name in ("delay_rate", "drop_rate", "truncate_rate",
                     "garbage_rate", "reset_rate"):
            if getattr(self, name) > 1:
                raise SimulationError(f"{name} must be <= 1")
        if self.min_delay > self.max_delay:
            raise SimulationError("min_delay must be <= max_delay")


@dataclass
class ProxyStats:
    """What one proxy did to the bytes that passed through it."""

    connections: int = 0
    #: Upstream dials that failed (the replica was down); the client-side
    #: connection is closed immediately so the dialer can re-try later.
    refused: int = 0
    chunks_forwarded: int = 0
    chunks_delayed: int = 0
    chunks_dropped: int = 0
    chunks_truncated: int = 0
    garbage_injected: int = 0
    resets: int = 0

    def as_dict(self) -> dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class ChaosProxy:
    """Forwards TCP both ways between a listener and one upstream address,
    applying a :class:`ProxyProfile` of byte-level faults per chunk."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        profile: Optional[ProxyProfile] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.profile = profile or ProxyProfile()
        self.seed = seed
        self.host = host
        self.port = port
        self.stats = ProxyStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    async def start(self) -> tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening and tear down every forwarded connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        for task in list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conn_tasks.clear()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        rng = random.Random(f"chaos-proxy/{self.seed}/{self.stats.connections}")
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            # Upstream down (e.g. mid crash_restart): refuse by closing, so
            # the dialer's next retransmission tick re-dials.
            self.stats.refused += 1
            writer.close()
            return
        self._writers.add(writer)
        self._writers.add(up_writer)
        pumps = [
            asyncio.create_task(self._pump(reader, up_writer, rng)),
            asyncio.create_task(self._pump(up_reader, writer, rng)),
        ]
        for task in pumps:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            # Either side finishing (EOF, fault-triggered close, error)
            # tears down the whole forwarded connection.
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in pumps:
                task.cancel()
            for end in (writer, up_writer):
                self._writers.discard(end)
                end.close()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        rng: random.Random,
    ) -> None:
        profile = self.profile
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                if profile.reset_rate and rng.random() < profile.reset_rate:
                    self.stats.resets += 1
                    return
                if profile.drop_rate and rng.random() < profile.drop_rate:
                    self.stats.chunks_dropped += 1
                    return
                if (
                    profile.truncate_rate
                    and len(chunk) > 1
                    and rng.random() < profile.truncate_rate
                ):
                    writer.write(chunk[: rng.randrange(1, len(chunk))])
                    await writer.drain()
                    self.stats.chunks_truncated += 1
                    return
                if profile.garbage_rate and rng.random() < profile.garbage_rate:
                    writer.write(self._garbage(rng))
                    self.stats.garbage_injected += 1
                if profile.delay_rate and rng.random() < profile.delay_rate:
                    await asyncio.sleep(
                        rng.uniform(profile.min_delay, profile.max_delay)
                    )
                    self.stats.chunks_delayed += 1
                writer.write(chunk)
                await writer.drain()
                self.stats.chunks_forwarded += 1
        except (OSError, ConnectionError, asyncio.CancelledError):
            return

    @staticmethod
    def _garbage(rng: random.Random) -> bytes:
        """A well-framed noise payload, or raw bad-magic bytes.

        The framed flavour survives the peer's frame decoder and dies in
        envelope decoding (silently discarded, connection lives); the raw
        flavour fails the magic check and drops the connection.
        """
        if rng.random() < 0.5:
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 48)))
            return encode_frame(payload)
        return bytes(rng.randrange(256) for _ in range(rng.randrange(2, 16)))
