"""Real asyncio TCP transport for the sans-I/O protocol state machines.

The same replica and client classes that run on the deterministic simulator
run here over real sockets:

* :class:`ReplicaServer` hosts one replica behind a TCP listener.
* :class:`AsyncClient` connects to every replica and exposes
  ``await write(value)`` / ``await read()``, driving the sans-I/O client
  with real timers for retransmission.

Framing is the length-prefixed canonical codec; each frame carries an
envelope ``{"src": <node-id>, "msg": <message wire dict>}``.  The transport
tolerates connection loss: sends to broken connections are dropped and the
protocol's retransmission recovers, matching the §2 fair-loss model.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Callable, Optional, Union

from repro.core.batching import expand_message
from repro.core.client import BftBcClient
from repro.core.config import SystemConfig
from repro.core.messages import Message, message_from_wire, message_wire_bytes
from repro.core.operations import Send
from repro.core.replica import BftBcReplica
from repro.encoding import FrameDecoder, canonical_decode, canonical_encode, encode_frame
from repro.errors import EncodingError, NetworkError, OperationFailedError, ProtocolError
from repro.obs.instrumentation import Instrumentation
from repro.storage import FileLogStore

__all__ = ["ReplicaServer", "AsyncClient"]


def _encode_envelope(
    src: str, message: Message, dst: Optional[str] = None
) -> bytes:
    # The canonical format is self-delimiting, so the envelope dict
    # ``{"msg": ..., "src": ...}`` (keys in canonical sorted order) can be
    # assembled around the message's cached bytes without re-encoding it.
    # ``dst`` is the optional demultiplexing tag for shared connections
    # (``repro.net.mux``): replica replies name the logical client they
    # answer.  Key order stays canonical ("dst" < "msg" < "src"), and the
    # dst-less envelope is byte-identical to the historical two-key form.
    body = (
        b"u3:msg"
        + message_wire_bytes(message)
        + b"u3:src"
        + canonical_encode(src)
        + b"e"
    )
    if dst is None:
        return encode_frame(b"d" + body)
    return encode_frame(b"du3:dst" + canonical_encode(dst) + body)


def _decode_envelope(payload: bytes) -> tuple[str, Message]:
    src, message, _ = _decode_envelope_dst(payload)
    return src, message


def _decode_envelope_dst(payload: bytes) -> tuple[str, Message, Optional[str]]:
    """Decode an envelope keeping its demux tag (``None`` when untagged)."""
    wire = canonical_decode(payload)
    if not isinstance(wire, dict) or "src" not in wire or "msg" not in wire:
        raise EncodingError(f"malformed envelope: {wire!r}")
    dst = wire.get("dst")
    if dst is not None and not isinstance(dst, str):
        raise EncodingError(f"malformed envelope dst: {wire!r}")
    return wire["src"], message_from_wire(wire["msg"]), dst


class ReplicaServer:
    """Hosts one replica state machine behind a TCP listener."""

    def __init__(
        self,
        replica: BftBcReplica,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_verify: bool = True,
    ) -> None:
        self.replica = replica
        self.host = host
        self.port = port
        #: Amortize signature verification across each socket read: all the
        #: frames a 64 KiB chunk yields are prevalidated in one pass through
        #: the replica's verification memo before their handlers run.  A
        #: chunk with a single frame is handled exactly as before.
        self.batch_verify = batch_verify
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def instrumentation(self) -> Instrumentation:
        """The hosted replica's observability handle (wall-clock spans)."""
        return self.replica.instrumentation

    @classmethod
    def durable(
        cls,
        node_id: str,
        config: SystemConfig,
        data_dir: Union[str, os.PathLike],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replica_cls: type[BftBcReplica] = BftBcReplica,
        fsync: str = "always",
        snapshot_interval: Optional[int] = 1024,
        instrumentation: Optional[Instrumentation] = None,
        batch_verify: bool = True,
    ) -> "ReplicaServer":
        """Build a server whose replica journals to ``data_dir``.

        The replica recovers from whatever snapshot + WAL the directory
        already holds, so restarting a server on the same directory resumes
        from the pre-crash Figure-2 state.  An instrumentation handle times
        handlers and store calls on the wall clock.
        """
        store = FileLogStore(
            data_dir, fsync=fsync, snapshot_interval=snapshot_interval
        )
        replica = replica_cls(
            node_id, config, store=store, instrumentation=instrumentation
        )
        replica.recover()
        return cls(replica, host=host, port=port, batch_verify=batch_verify)

    async def start(self) -> tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def repair_pull(
        self, sends: list[Send], addrs: dict[str, tuple[str, int]]
    ) -> None:
        """Deliver repair pulls over real sockets and feed the replies back.

        One short-lived connection per peer: write the REPAIR-REQ envelope,
        read until the REPAIR-REPLY lands or a timeout/connection error
        ends the attempt — the next audit tick retransmits to unanswered
        peers, so losses here only cost latency (fair-loss, like every
        other message).
        """
        replica = self.replica
        for send in sends:
            addr = addrs.get(send.dest)
            if addr is None:
                continue
            try:
                reader, writer = await asyncio.open_connection(*addr)
            except OSError:
                continue
            try:
                writer.write(_encode_envelope(replica.node_id, send.message))
                await writer.drain()
                decoder = FrameDecoder()
                answered = False
                while not answered:
                    chunk = await asyncio.wait_for(reader.read(65536), 2.0)
                    if not chunk:
                        break
                    for payload in decoder.feed(chunk):
                        src, message = _decode_envelope(payload)
                        replica.handle(src, message)
                        answered = True
            except (OSError, asyncio.TimeoutError, EncodingError, ProtocolError):
                pass
            finally:
                writer.close()

    async def stabilization_loop(
        self,
        peer_addrs: "Callable[[], dict[str, tuple[str, int]]]",
        interval: float = 1.0,
    ) -> None:
        """Periodic self-audit; pull repair from peers while quarantined.

        Runs until the server stops.  ``peer_addrs`` is re-read every tick
        so an orchestrator can publish (or update) the address book after
        the worker starts — a restarted worker whose data directory rotted
        while it was down repairs itself as soon as the book names its
        peers.  Maintenance must never take the listener down with it, so
        audit/repair errors are swallowed and retried next tick.
        """
        while True:
            await asyncio.sleep(interval)
            if self._server is None:
                return
            replica = self.replica
            try:
                if not replica.quarantined:
                    replica.self_audit()
                if replica.quarantined:
                    sends = (
                        replica.repair_retransmit()
                        if replica.repair.active
                        else replica.begin_repair()
                    )
                    await self.repair_pull(sends, peer_addrs())
            except asyncio.CancelledError:
                raise
            except Exception:
                continue

    async def stop(self) -> None:
        """Stop listening and drop every established connection — the
        moral equivalent of killing the replica process."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        self._connections.add(writer)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                await self._handle_chunk(list(decoder.feed(chunk)), writer)
        except (ConnectionError, EncodingError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels handler tasks blocked in read();
            # completing normally keeps the streams machinery from logging
            # a spurious "exception was never retrieved" at teardown.
            pass
        finally:
            # Close without awaiting: at interpreter shutdown the surrounding
            # task may already be cancelled, and waiting here would raise.
            self._connections.discard(writer)
            writer.close()

    async def _handle_chunk(
        self, payloads: list[bytes], writer: asyncio.StreamWriter
    ) -> None:
        """Handle every frame one socket read produced, in arrival order.

        A busy connection (the client-side mux, or a pipelining client)
        lands several frames per read; decoding them all first lets the
        replica prevalidate their signatures in one amortized batch pass,
        and the replies share a single flow-control drain.  Each reply is
        tagged ``dst=<request src>`` so a multiplexer on the far end can
        route it to the right logical client; plain clients ignore the tag.
        """
        frames: list[tuple[str, Message]] = []
        for payload in payloads:
            try:
                frames.append(_decode_envelope(payload))
            except (EncodingError, ProtocolError):
                continue  # corrupted or malformed input is silently discarded
        if self.batch_verify and len(frames) > 1:
            prevalidate = getattr(self.replica, "prevalidate", None)
            if prevalidate is not None:
                inners: list[Message] = []
                for _, message in frames:
                    inners.extend(expand_message(message))
                prevalidate(inners)
        wrote = False
        for src, message in frames:
            reply = self.replica.handle(src, message)
            if reply is not None:
                writer.write(
                    _encode_envelope(self.replica.node_id, reply, dst=src)
                )
                wrote = True
        if wrote:
            await writer.drain()


class AsyncClient:
    """Async facade over a sans-I/O client, for real-network deployments.

    Kept as the thin low-level wiring; new code should prefer
    ``repro.cluster.deploy(DeploymentSpec(transport="tcp"))``, which adds
    connection multiplexing, pipelining, and reply-burst batch
    verification on top of the same machinery.
    """

    def __init__(
        self,
        client: BftBcClient,
        replica_addrs: dict[str, tuple[str, int]],
        *,
        retransmit_interval: float = 0.2,
        op_timeout: float = 30.0,
    ) -> None:
        self.client = client
        self.replica_addrs = dict(replica_addrs)
        self.retransmit_interval = retransmit_interval
        self.op_timeout = op_timeout
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._reader_tasks: list[asyncio.Task] = []
        self._inbox: asyncio.Queue[tuple[str, Message]] = asyncio.Queue()
        #: Successful re-dials of previously broken replica connections
        #: (via either the retransmission timer or the lazy send path).
        self.reconnects = 0
        self._ever_connected: set[str] = set()

    async def connect(self) -> None:
        """Open a connection to every reachable replica."""
        for node_id, (host, port) in self.replica_addrs.items():
            await self._try_connect(node_id, host, port)
        if not self._writers:
            raise NetworkError("could not connect to any replica")

    async def _try_connect(self, node_id: str, host: str, port: int) -> bool:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            return False
        self._writers[node_id] = writer
        if node_id in self._ever_connected:
            self.reconnects += 1
        self._ever_connected.add(node_id)
        task = asyncio.create_task(self._read_loop(node_id, reader, writer))
        self._reader_tasks.append(task)
        return True

    async def _read_loop(
        self,
        node_id: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for payload in decoder.feed(chunk):
                    try:
                        src, message = _decode_envelope(payload)
                    except (EncodingError, ProtocolError):
                        continue
                    await self._inbox.put((src, message))
        except (ConnectionError, EncodingError):
            pass
        finally:
            # Only clear the slot if a re-dial hasn't already replaced it.
            if self._writers.get(node_id) is writer:
                self._writers.pop(node_id, None)

    async def close(self) -> None:
        for task in self._reader_tasks:
            task.cancel()
        for writer in list(self._writers.values()):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
        self._writers.clear()
        self._reader_tasks.clear()

    # -- operations ----------------------------------------------------------

    async def write(self, value: Any) -> Any:
        """Perform one write; returns the committed timestamp."""
        return await self._run_op(self.client.begin_write(value))

    async def read(self) -> Any:
        """Perform one read; returns the value."""
        return await self._run_op(self.client.begin_read())

    async def _run_op(self, initial_sends: list[Send]) -> Any:
        await self._send_all(initial_sends)
        deadline = asyncio.get_running_loop().time() + self.op_timeout
        while self.client.busy:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise OperationFailedError(
                    f"operation timed out after {self.op_timeout}s"
                )
            timeout = min(self.retransmit_interval, remaining)
            try:
                src, message = await asyncio.wait_for(
                    self._inbox.get(), timeout=timeout
                )
            except asyncio.TimeoutError:
                # A quiet interval is when broken connections matter: without
                # a live socket the retransmission below would be a no-op
                # against a restarted replica, so re-dial first.
                await self._reconnect_broken()
                await self._send_all(self.client.retransmit())
                continue
            await self._send_all(self.client.deliver(src, message))
        assert self.client.op is not None
        return self.client.op.result

    async def _reconnect_broken(self) -> None:
        """Re-dial every replica whose connection is missing or half-dead.

        Runs on the retransmission timer: a replica that crashed and came
        back (e.g. a durable server restarted on its data directory) left a
        closed or closing writer behind, and only a fresh connection lets
        the retransmitted round reach it.
        """
        for node_id, (host, port) in self.replica_addrs.items():
            writer = self._writers.get(node_id)
            if writer is not None and not writer.is_closing():
                continue
            if writer is not None:
                self._writers.pop(node_id, None)
                writer.close()
            await self._try_connect(node_id, host, port)

    async def _send_all(self, sends: list[Send]) -> None:
        for send in sends:
            writer = self._writers.get(send.dest)
            if writer is None or writer.is_closing():
                # Lazily reconnect; a failure is just message loss.
                addr = self.replica_addrs.get(send.dest)
                if addr is None or not await self._try_connect(send.dest, *addr):
                    continue
                writer = self._writers[send.dest]
            try:
                writer.write(
                    _encode_envelope(self.client.node_id, send.message)
                )
                await writer.drain()
            except (OSError, RuntimeError):
                self._writers.pop(send.dest, None)
