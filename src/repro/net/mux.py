"""Client-side connection multiplexing and pipelined operations.

A process driving many concurrent operations against the cluster does not
need one socket per operation.  :class:`MuxEndpoint` holds **one TCP
connection per replica**, shared by any number of *logical* clients:
requests go out tagged with the logical client's id as the envelope
``src``; the server tags each reply with ``dst=<that id>`` (see
``repro.net.asyncio_transport``) and the endpoint's read loops route it to
the owning client's inbox.

:class:`PipelinedClient` builds on the endpoint to pipeline a FIFO of
operations.  The protocol requires each client identity's operations to be
sequential — overlapping the phases of two writes under one identity is
exactly the faulty-client behaviour replicas refuse (§4.1, and the
one-prepared-write-per-client rule of Figure 2) — so the pipeline window is
made of k logical clients: submitted operations are dealt to whichever
logical client is idle, giving k operations in flight per process over just
3f+1 sockets.  Replies arriving back-to-back land in the same socket read
at the replica, where the chunk-level batch verifier amortizes their
signature checks (``ReplicaServer._handle_chunk``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.core.batching import prevalidate_batch
from repro.core.client import BftBcClient
from repro.core.operations import Send
from repro.encoding import FrameDecoder
from repro.errors import EncodingError, NetworkError, OperationFailedError, ProtocolError
from repro.net.asyncio_transport import _decode_envelope_dst, _encode_envelope

__all__ = ["MuxEndpoint", "PipelinedClient", "OpRecord"]


class MuxEndpoint:
    """One TCP connection per replica, shared by many logical clients."""

    def __init__(self, replica_addrs: dict[str, tuple[str, int]]) -> None:
        self.replica_addrs = dict(replica_addrs)
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._reader_tasks: list[asyncio.Task] = []
        self._inboxes: dict[str, asyncio.Queue] = {}
        #: Successful re-dials of previously broken replica connections.
        self.reconnects = 0
        self._ever_connected: set[str] = set()
        #: Replies whose demux tag named no registered client.
        self.unroutable = 0

    def register(self, client_id: str) -> "asyncio.Queue[tuple[str, Any]]":
        """Claim a logical client id; returns its reply inbox."""
        if client_id in self._inboxes:
            raise ValueError(f"logical client {client_id!r} already registered")
        queue: asyncio.Queue = asyncio.Queue()
        self._inboxes[client_id] = queue
        return queue

    async def connect(self) -> None:
        """Open the shared connection to every reachable replica."""
        for node_id, (host, port) in self.replica_addrs.items():
            await self._try_connect(node_id, host, port)
        if not self._writers:
            raise NetworkError("could not connect to any replica")

    async def _try_connect(self, node_id: str, host: str, port: int) -> bool:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            return False
        self._writers[node_id] = writer
        self._locks.setdefault(node_id, asyncio.Lock())
        if node_id in self._ever_connected:
            self.reconnects += 1
        self._ever_connected.add(node_id)
        task = asyncio.create_task(self._read_loop(node_id, reader, writer))
        self._reader_tasks.append(task)
        return True

    async def _read_loop(
        self,
        node_id: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for payload in decoder.feed(chunk):
                    try:
                        src, message, dst = _decode_envelope_dst(payload)
                    except (EncodingError, ProtocolError):
                        continue
                    queue = self._route(dst)
                    if queue is None:
                        self.unroutable += 1
                        continue
                    await queue.put((src, message))
        except (ConnectionError, EncodingError):
            pass
        finally:
            if self._writers.get(node_id) is writer:
                self._writers.pop(node_id, None)

    def _route(self, dst: Optional[str]) -> Optional[asyncio.Queue]:
        """The inbox a reply belongs to.

        An untagged reply (a pre-demux server) is only routable when a
        single logical client is registered — with several, delivering it
        to all of them would hand k-1 clients a frame they must discard on
        signature/nonce grounds, so it is dropped and retransmission
        recovers against an upgraded server.
        """
        if dst is not None:
            return self._inboxes.get(dst)
        if len(self._inboxes) == 1:
            return next(iter(self._inboxes.values()))
        return None

    async def reconnect_broken(self) -> None:
        """Re-dial every replica whose shared connection is missing or dead."""
        for node_id, (host, port) in self.replica_addrs.items():
            writer = self._writers.get(node_id)
            if writer is not None and not writer.is_closing():
                continue
            if writer is not None:
                self._writers.pop(node_id, None)
                writer.close()
            await self._try_connect(node_id, host, port)

    async def send(self, client_id: str, sends: Iterable[Send]) -> None:
        """Write each send on its replica's shared connection.

        Per-replica locks keep concurrent logical clients' write+drain
        sequences from interleaving mid-frame; a dead connection is
        re-dialled lazily, and a failed dial is just message loss (the
        protocol's retransmission recovers, per the §2 fair-loss model).
        """
        for send in sends:
            lock = self._locks.setdefault(send.dest, asyncio.Lock())
            async with lock:
                writer = self._writers.get(send.dest)
                if writer is None or writer.is_closing():
                    addr = self.replica_addrs.get(send.dest)
                    if addr is None or not await self._try_connect(
                        send.dest, *addr
                    ):
                        continue
                    writer = self._writers[send.dest]
                try:
                    writer.write(_encode_envelope(client_id, send.message))
                    await writer.drain()
                except (OSError, RuntimeError):
                    self._writers.pop(send.dest, None)

    async def close(self) -> None:
        for task in self._reader_tasks:
            task.cancel()
        for writer in list(self._writers.values()):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
        self._writers.clear()
        self._reader_tasks.clear()


@dataclass
class OpRecord:
    """One completed pipelined operation.

    ``index`` is the operation's position in the submitted script;
    records are returned in *completion* order, so comparing the two
    orders exposes pipeline reordering.  ``result`` is the committed
    timestamp for writes and the value for reads.
    """

    index: int
    kind: str
    value: Any
    client: str
    result: Any


class PipelinedClient:
    """Runs a FIFO of operations with up to ``len(clients)`` in flight.

    Each sans-I/O client in ``clients`` is one slot of the pipeline
    window; all of them share one :class:`MuxEndpoint`.  Every logical
    client id must be registered with the replicas' key registry (the
    standard ``client:`` namespace works — see
    ``KeyRegistry.open_namespace``).
    """

    def __init__(
        self,
        clients: Sequence[BftBcClient],
        replica_addrs: dict[str, tuple[str, int]],
        *,
        retransmit_interval: float = 0.2,
        op_timeout: float = 30.0,
        verifier: Any = None,
    ) -> None:
        if not clients:
            raise ValueError("PipelinedClient needs at least one client")
        self.clients = list(clients)
        self.retransmit_interval = retransmit_interval
        self.op_timeout = op_timeout
        #: When set, each drained burst of replies is prevalidated as one
        #: amortized ``verify_batch`` pass; the per-reply checks inside
        #: ``client.deliver`` then hit the verification memo for free.
        self.verifier = verifier
        self.endpoint = MuxEndpoint(replica_addrs)
        self._inboxes = {
            client.node_id: self.endpoint.register(client.node_id)
            for client in self.clients
        }

    @property
    def window(self) -> int:
        return len(self.clients)

    async def connect(self) -> None:
        await self.endpoint.connect()

    async def close(self) -> None:
        await self.endpoint.close()

    async def run_script(
        self, script: Sequence[tuple[str, Any]]
    ) -> list[OpRecord]:
        """Execute ``[(kind, value), ...]`` steps, k at a time, FIFO.

        Steps are dealt to logical clients in submission order as slots
        free up; the returned records are in completion order.
        """
        steps = list(enumerate(script))
        cursor = iter(steps)
        records: list[OpRecord] = []

        async def worker(client: BftBcClient) -> None:
            for index, (kind, value) in cursor:
                result = await self._run_op(client, kind, value)
                records.append(
                    OpRecord(
                        index=index,
                        kind=kind,
                        value=value,
                        client=client.node_id,
                        result=result,
                    )
                )

        await asyncio.gather(*(worker(client) for client in self.clients))
        return records

    async def write(self, value: Any) -> Any:
        """One write through the first pipeline slot (no concurrency)."""
        return await self._run_op(self.clients[0], "write", value)

    async def read(self) -> Any:
        """One read through the first pipeline slot (no concurrency)."""
        return await self._run_op(self.clients[0], "read", None)

    async def _run_op(self, client: BftBcClient, kind: str, value: Any) -> Any:
        if kind == "write":
            sends = client.begin_write(value)
        elif kind == "read":
            sends = client.begin_read()
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        await self.endpoint.send(client.node_id, sends)
        inbox = self._inboxes[client.node_id]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.op_timeout
        while client.busy:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise OperationFailedError(
                    f"operation timed out after {self.op_timeout}s"
                )
            timeout = min(self.retransmit_interval, remaining)
            try:
                src, message = await asyncio.wait_for(
                    inbox.get(), timeout=timeout
                )
            except asyncio.TimeoutError:
                await self.endpoint.reconnect_broken()
                await self.endpoint.send(client.node_id, client.retransmit())
                continue
            # A quorum's replies land nearly simultaneously; drain whatever
            # else has already arrived and verify the burst in one pass.
            batch = [(src, message)]
            while True:
                try:
                    batch.append(inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if self.verifier is not None and len(batch) > 1:
                prevalidate_batch(
                    self.verifier, [reply for _, reply in batch]
                )
            for src, message in batch:
                await self.endpoint.send(
                    client.node_id, client.deliver(src, message)
                )
        assert client.op is not None
        return client.op.result
