"""Baseline protocols the paper compares against (§8).

* :mod:`repro.baselines.bqs` — the original Malkhi-Reiter BQS register [9]
  (3f+1 replicas, no Byzantine-client handling) with the Phalanx write-back
  extension for read atomicity [10].
* :mod:`repro.baselines.phalanx` — the Phalanx Byzantine-client protocol
  [10]: 4f+1 replicas, echo certificates, masking-quorum reads that may
  return :data:`~repro.baselines.phalanx.NULL_READ`.
"""

from repro.baselines.bqs import (
    BqsClient,
    BqsReadOperation,
    BqsReplica,
    BqsWriteOperation,
)
from repro.baselines.phalanx import (
    NULL_READ,
    PhalanxClient,
    PhalanxReadOperation,
    PhalanxReplica,
    PhalanxWriteOperation,
)
from repro.baselines.runner import (
    BaselineCluster,
    build_bqs_cluster,
    build_phalanx_cluster,
)

__all__ = [
    "BqsReplica",
    "BqsClient",
    "BqsWriteOperation",
    "BqsReadOperation",
    "PhalanxReplica",
    "PhalanxClient",
    "PhalanxWriteOperation",
    "PhalanxReadOperation",
    "NULL_READ",
    "BaselineCluster",
    "build_bqs_cluster",
    "build_phalanx_cluster",
]
