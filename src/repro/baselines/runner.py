"""Cluster builders for the baseline protocols.

These mirror :class:`repro.sim.runner.Cluster` so that experiments can run
identical workloads against BFT-BC, BQS, and Phalanx and compare the results
(experiments E7/E8).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.baselines.bqs import BqsClient, BqsReplica
from repro.baselines.phalanx import PhalanxClient, PhalanxReplica
from repro.core.batching import BatchCoalescer, BatchStats
from repro.core.config import SystemConfig, make_system
from repro.core.quorum import QuorumSystem
from repro.net.simnet import LinkProfile, SimNetwork
from repro.obs.instrumentation import Instrumentation
from repro.sim.metrics import MetricsCollector
from repro.sim.nodes import ClientNode, ScriptStep
from repro.sim.recorder import HistoryRecorder
from repro.sim.scheduler import Scheduler
from repro.errors import OperationFailedError

__all__ = ["BaselineCluster", "build_bqs_cluster", "build_phalanx_cluster"]


class _BaselineReplicaNode:
    def __init__(self, replica, network: SimNetwork) -> None:
        self.replica = replica
        self.network = network
        network.register(replica.node_id, self._on_message)

    def _on_message(self, src, message) -> None:
        reply = self.replica.handle(src, message)
        if reply is not None:
            self.network.send(self.replica.node_id, src, reply)


class BaselineCluster:
    """A simulated deployment of a baseline protocol."""

    def __init__(
        self,
        config: SystemConfig,
        replica_cls: Callable[[str, SystemConfig], object],
        client_cls: Callable[[str, SystemConfig], object],
        *,
        profile: Optional[LinkProfile] = None,
        seed: int = 0,
        retransmit_interval: float = 0.05,
        batching: bool = False,
        replica_overrides: Optional[dict[int, Callable]] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        self.scheduler = Scheduler()
        self.network = SimNetwork(self.scheduler, profile=profile, seed=seed)
        self.recorder = HistoryRecorder(self.scheduler)
        self.instrumentation = instrumentation or Instrumentation.off()
        self.instrumentation.bind_clock(lambda: self.scheduler.now)
        self.metrics = MetricsCollector(instrumentation=self.instrumentation)
        #: As in :class:`repro.sim.runner.Cluster`: single-object clients
        #: never share a destination within a round, so the coalescer is a
        #: pass-through here (the differential tests pin this byte for byte).
        self.batch_stats: Optional[BatchStats] = BatchStats() if batching else None
        if self.batch_stats is not None:
            self.instrumentation.attach_batching(self.batch_stats)
        self._client_cls = client_cls
        self._retransmit_interval = retransmit_interval
        self.replicas: dict[str, object] = {}
        self.clients: dict[str, ClientNode] = {}
        self._extra_done_checks: list[Callable[[], bool]] = []
        overrides = replica_overrides or {}
        for index, node_id in enumerate(config.quorums.replica_ids):
            factory = overrides.get(index, replica_cls)
            replica = factory(node_id, config)
            self.replicas[node_id] = replica
            _BaselineReplicaNode(replica, self.network)

    def add_client(self, name: str) -> ClientNode:
        client = self._client_cls(
            f"client:{name}", self.config, instrumentation=self.instrumentation
        )
        node = ClientNode(
            client,  # type: ignore[arg-type]  (duck-typed client interface)
            self.network,
            self.scheduler,
            recorder=self.recorder,
            metrics=self.metrics,
            retransmit_interval=self._retransmit_interval,
            coalescer=(
                BatchCoalescer(self.batch_stats)
                if self.batch_stats is not None
                else None
            ),
        )
        self.clients[client.node_id] = node
        return node

    def run_scripts(
        self,
        scripts: dict[str, Sequence[ScriptStep]],
        *,
        think_time: float = 0.0,
        stagger: float = 0.0,
        max_time: float = 300.0,
    ) -> None:
        for index, (name, script) in enumerate(scripts.items()):
            node = self.clients.get(f"client:{name}") or self.add_client(name)
            node.run_script(script, think_time=think_time, start_delay=index * stagger)
        self.run(max_time=max_time)

    def add_done_check(self, check: Callable[[], bool]) -> None:
        """Register an extra completion condition (Byzantine actors use this)."""
        self._extra_done_checks.append(check)

    def _all_done(self) -> bool:
        if not all(n.done for n in self.clients.values()):
            return False
        return all(check() for check in self._extra_done_checks)

    def run(self, *, max_time: float = 300.0, max_events: int = 5_000_000) -> None:
        self.scheduler.run(
            until=self.scheduler.now + max_time,
            max_events=max_events,
            stop_when=self._all_done,
        )
        if not self._all_done():
            busy = [n for n, node in self.clients.items() if not node.done]
            raise OperationFailedError(
                f"baseline workload incomplete after {max_time}s; busy: {busy}"
            )

    def settle(self, duration: float = 1.0) -> None:
        self.scheduler.run(until=self.scheduler.now + duration)

    @property
    def history(self):
        return self.recorder.history

    def client(self, name: str) -> ClientNode:
        return self.clients[f"client:{name}"]


def build_bqs_cluster(
    f: int = 1,
    *,
    scheme: str = "hmac",
    seed: int = 0,
    profile: Optional[LinkProfile] = None,
    write_back: bool = True,
    batching: bool = False,
    replica_overrides: Optional[dict[int, Callable]] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> BaselineCluster:
    """A BQS register deployment: 3f+1 replicas, quorums of 2f+1."""
    config = make_system(f, scheme=scheme, seed=b"bqs-seed-%d" % seed)

    def client_cls(node_id: str, cfg: SystemConfig, **kwargs) -> BqsClient:
        return BqsClient(node_id, cfg, write_back=write_back, **kwargs)

    return BaselineCluster(
        config,
        BqsReplica,
        client_cls,
        profile=profile,
        seed=seed,
        batching=batching,
        replica_overrides=replica_overrides,
        instrumentation=instrumentation,
    )


def build_phalanx_cluster(
    f: int = 1,
    *,
    scheme: str = "hmac",
    seed: int = 0,
    profile: Optional[LinkProfile] = None,
    replica_overrides: Optional[dict[int, Callable]] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> BaselineCluster:
    """A Phalanx deployment: 4f+1 replicas, quorums of 3f+1."""
    config = make_system(
        f,
        scheme=scheme,
        seed=b"phalanx-seed-%d" % seed,
        quorums=QuorumSystem.phalanx(f),
    )
    return BaselineCluster(
        config,
        PhalanxReplica,
        PhalanxClient,
        profile=profile,
        seed=seed,
        replica_overrides=replica_overrides,
        instrumentation=instrumentation,
    )
