"""The original BQS replicated register (Malkhi & Reiter [9], as presented in
§3.1), with the Phalanx write-back extension [10] for read atomicity.

This is the paper's "does not handle Byzantine clients" baseline:

* 3f + 1 replicas, quorums of 2f + 1, one-phase reads (plus optional
  write-back), two-phase writes.
* A replica stores ``(data, ts, writer-signature)``; the writer's signature
  binds the value to the timestamp, so a Byzantine *replica* cannot
  fabricate values — but a Byzantine *client* can: write different values
  under the same timestamp at different replicas (breaking atomicity), pick
  an enormous timestamp (exhausting the timestamp space), or do partial
  writes.  Experiments E7/E9 demonstrate exactly these failures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.messages import (
    BqsReadReply,
    BqsReadRequest,
    BqsReadTsReply,
    BqsReadTsRequest,
    BqsWriteReply,
    BqsWriteRequest,
)
from repro.baselines.statements import (
    bqs_read_reply_statement,
    bqs_read_ts_reply_statement,
    bqs_write_reply_statement,
    bqs_write_statement,
)
from repro.core.config import SystemConfig
from repro.core.messages import Message
from repro.core.operations import Operation, Send
from repro.core.timestamp import ZERO_TS, Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.nonces import NonceSource
from repro.crypto.signatures import Signature
from repro.errors import ProtocolError

__all__ = ["BqsReplica", "BqsClient", "BqsWriteOperation", "BqsReadOperation"]


@dataclass
class BqsReplicaStats:
    handled: Counter = field(default_factory=Counter)
    discards: Counter = field(default_factory=Counter)
    writes_installed: int = 0


class BqsReplica:
    """BQS replica: stores the highest-timestamped writer-signed value."""

    def __init__(self, node_id: str, config: SystemConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.data: Any = None
        self.ts: Timestamp = ZERO_TS
        self.writer_sig: Optional[Signature] = None
        self.stats = BqsReplicaStats()

    def _sign(self, statement: Any) -> Signature:
        return self.config.scheme.sign_statement(self.node_id, statement)

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        self.stats.handled[message.KIND] += 1
        if isinstance(message, BqsReadTsRequest):
            return BqsReadTsReply(
                ts=self.ts,
                nonce=message.nonce,
                signature=self._sign(
                    bqs_read_ts_reply_statement(self.ts, message.nonce)
                ),
            )
        if isinstance(message, BqsWriteRequest):
            return self._handle_write(message)
        if isinstance(message, BqsReadRequest):
            return BqsReadReply(
                value=self.data,
                ts=self.ts,
                writer_sig=self.writer_sig,
                nonce=message.nonce,
                signature=self._sign(
                    bqs_read_reply_statement(self.data, self.ts, message.nonce)
                ),
            )
        self.stats.discards["unknown-kind"] += 1
        return None

    def _handle_write(self, message: BqsWriteRequest) -> Optional[BqsWriteReply]:
        writer = message.writer_sig.signer
        if not self.config.is_authorized_writer(writer):
            self.stats.discards["unauthorized"] += 1
            return None
        statement = bqs_write_statement(message.ts, hash_value(message.value))
        if not self.config.verifier.verify_statement(message.writer_sig, statement):
            self.stats.discards["bad-signature"] += 1
            return None
        # NOTE the vulnerability this baseline exists to demonstrate: the
        # replica checks only that the timestamp is fresh *locally*.  Nothing
        # prevents a Byzantine client from signing two different values with
        # the same timestamp and sending one to each half of the replica
        # group, nor from jumping the timestamp arbitrarily far ahead.
        if message.ts > self.ts:
            self.data = message.value
            self.ts = message.ts
            self.writer_sig = message.writer_sig
            self.stats.writes_installed += 1
        return BqsWriteReply(
            ts=message.ts,
            signature=self._sign(bqs_write_reply_statement(message.ts)),
        )


class BqsWriteOperation(Operation):
    """Two-phase write: read the highest timestamp, then store."""

    op_name = "write"

    def __init__(
        self, client_id: str, config: SystemConfig, value: Any, nonce: bytes
    ) -> None:
        super().__init__(client_id, config)
        self.value = value
        self.nonce = nonce
        self._phase = 0
        self._target_ts: Optional[Timestamp] = None

    def start(self) -> list[Send]:
        self._phase = 1
        return self._broadcast(
            BqsReadTsRequest(nonce=self.nonce), self._validate_read_ts
        )

    def _validate_read_ts(self, sender: str, message: Message) -> Optional[Timestamp]:
        if not isinstance(message, BqsReadTsReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = bqs_read_ts_reply_statement(message.ts, message.nonce)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.ts

    def _validate_write_reply(
        self, sender: str, message: Message
    ) -> Optional[Signature]:
        if not isinstance(message, BqsWriteReply) or message.ts != self._target_ts:
            return None
        if message.signature.signer != sender:
            return None
        statement = bqs_write_reply_statement(message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if not self._collector.have_quorum:
            return []
        if self._phase == 1:
            max_ts: Timestamp = max(self._collector.replies.values())
            self._target_ts = max_ts.succ(self.client_id)
            self._phase = 2
            statement = bqs_write_statement(self._target_ts, hash_value(self.value))
            request = BqsWriteRequest(
                value=self.value,
                ts=self._target_ts,
                writer_sig=self._sign(statement),
            )
            return self._broadcast(request, self._validate_write_reply)
        if self._phase == 2:
            return self._finish(self._target_ts)
        raise AssertionError(f"unexpected phase {self._phase}")


class BqsReadOperation(Operation):
    """One-phase read; optional write-back for atomicity (Phalanx [10])."""

    op_name = "read"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        nonce: bytes,
        *,
        write_back: bool = True,
    ) -> None:
        super().__init__(client_id, config)
        self.nonce = nonce
        self.write_back = write_back
        self._phase = 0
        self._best: Optional[BqsReadReply] = None

    def start(self) -> list[Send]:
        self._phase = 1
        return self._broadcast(BqsReadRequest(nonce=self.nonce), self._validate_read)

    def _validate_read(self, sender: str, message: Message) -> Optional[BqsReadReply]:
        if not isinstance(message, BqsReadReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = bqs_read_reply_statement(message.value, message.ts, message.nonce)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        if message.ts == ZERO_TS:
            return message if message.value is None else None
        if message.writer_sig is None:
            return None
        writer_statement = bqs_write_statement(message.ts, hash_value(message.value))
        if not self.config.verifier.verify_statement(
            message.writer_sig, writer_statement
        ):
            return None
        return message

    def _validate_write_back(self, sender: str, message: Message) -> Optional[Signature]:
        assert self._best is not None
        if not isinstance(message, BqsWriteReply) or message.ts != self._best.ts:
            return None
        if message.signature.signer != sender:
            return None
        statement = bqs_write_reply_statement(message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if self._phase == 1:
            if not self._collector.have_quorum:
                return []
            replies: list[BqsReadReply] = list(self._collector.replies.values())
            best = max(replies, key=lambda r: r.ts)
            self._best = best
            up_to_date = frozenset(
                sender
                for sender, r in self._collector.replies.items()
                if r.ts == best.ts
            )
            if (
                not self.write_back
                or len(up_to_date) >= self.config.quorum_size
                or best.ts == ZERO_TS
            ):
                return self._finish(best.value)
            # Write back the highest value (re-signed by its writer already);
            # the up-to-date replicas are credited into the round so quorum
            # counting and retransmission cover only the laggards.
            self._phase = 2
            assert best.writer_sig is not None
            request = BqsWriteRequest(
                value=best.value, ts=best.ts, writer_sig=best.writer_sig
            )
            targets = tuple(
                r for r in self.config.quorums.replica_ids if r not in up_to_date
            )
            return self._broadcast(
                request,
                self._validate_write_back,
                targets,
                prefill={r: None for r in up_to_date},
            )
        if self._phase == 2:
            if self._collector.have_quorum:
                assert self._best is not None
                return self._finish(self._best.value)
            return []
        raise AssertionError(f"unexpected phase {self._phase}")


class BqsClient:
    """Client front-end with the same driving interface as BftBcClient."""

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        *,
        write_back: bool = True,
        instrumentation=None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.write_back = write_back
        self.instrumentation = instrumentation
        credential = config.registry.register(node_id)
        self._nonces = NonceSource(node_id, secret=credential.secret)
        self.op: Optional[Operation] = None
        self.completed_ops = 0

    def begin_write(self, value: Any) -> list[Send]:
        self._check_idle()
        self.op = BqsWriteOperation(
            self.node_id, self.config, value, self._nonces.next()
        )
        self.op.instrument(self.instrumentation)
        return self.op.start()

    def begin_read(self) -> list[Send]:
        self._check_idle()
        self.op = BqsReadOperation(
            self.node_id, self.config, self._nonces.next(), write_back=self.write_back
        )
        self.op.instrument(self.instrumentation)
        return self.op.start()

    def _check_idle(self) -> None:
        if self.op is not None and not self.op.done:
            raise ProtocolError(f"client {self.node_id} already busy")

    def deliver(self, sender: str, message: Message) -> list[Send]:
        if self.op is None or self.op.done:
            return []
        sends = self.op.on_message(sender, message)
        if self.op.done:
            self.completed_ops += 1
        return sends

    def retransmit(self) -> list[Send]:
        if self.op is None or self.op.done:
            return []
        return self.op.on_retransmit()

    @property
    def busy(self) -> bool:
        return self.op is not None and not self.op.done

    @property
    def last_result(self) -> Any:
        return None if self.op is None else self.op.result
