"""Wire messages for the baseline protocols (BQS [9] and Phalanx [10]).

Registered in the same message registry as the core protocol, with distinct
kind tags, so they flow through the same simulated network and transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

from repro.core.messages import Message, register_message
from repro.core.timestamp import Timestamp
from repro.crypto.signatures import Signature

__all__ = [
    "BqsReadTsRequest",
    "BqsReadTsReply",
    "BqsWriteRequest",
    "BqsWriteReply",
    "BqsReadRequest",
    "BqsReadReply",
    "PhxReadTsRequest",
    "PhxReadTsReply",
    "PhxEchoRequest",
    "PhxEchoReply",
    "PhxWriteRequest",
    "PhxWriteReply",
    "PhxReadRequest",
    "PhxReadReply",
]


def _sig(wire: Any) -> Signature:
    return Signature.from_wire(wire)


def _opt_sig(wire: Any) -> Optional[Signature]:
    return None if wire is None else Signature.from_wire(wire)


# ---------------------------------------------------------------------------
# BQS (Malkhi-Reiter basic register; §3.1 of the ICDCS paper)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class BqsReadTsRequest(Message):
    KIND: ClassVar[str] = "BQS-READ-TS"
    nonce: bytes

    def to_wire(self) -> dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BqsReadTsRequest":
        return cls(nonce=wire["nonce"])


@register_message
@dataclass(frozen=True)
class BqsReadTsReply(Message):
    KIND: ClassVar[str] = "BQS-READ-TS-REPLY"
    ts: Timestamp
    nonce: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "ts": self.ts.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BqsReadTsReply":
        return cls(
            ts=Timestamp.from_wire(wire["ts"]),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class BqsWriteRequest(Message):
    """Store ``(value, ts)``; ``writer_sig`` authenticates value+timestamp."""

    KIND: ClassVar[str] = "BQS-WRITE"
    value: Any
    ts: Timestamp
    writer_sig: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "ts": self.ts.to_wire(),
            "wsig": self.writer_sig.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BqsWriteRequest":
        return cls(
            value=wire["value"],
            ts=Timestamp.from_wire(wire["ts"]),
            writer_sig=_sig(wire["wsig"]),
        )


@register_message
@dataclass(frozen=True)
class BqsWriteReply(Message):
    KIND: ClassVar[str] = "BQS-WRITE-REPLY"
    ts: Timestamp
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {"ts": self.ts.to_wire(), "sig": self.signature.to_wire()}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BqsWriteReply":
        return cls(ts=Timestamp.from_wire(wire["ts"]), signature=_sig(wire["sig"]))


@register_message
@dataclass(frozen=True)
class BqsReadRequest(Message):
    KIND: ClassVar[str] = "BQS-READ"
    nonce: bytes

    def to_wire(self) -> dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BqsReadRequest":
        return cls(nonce=wire["nonce"])


@register_message
@dataclass(frozen=True)
class BqsReadReply(Message):
    """Replica's stored value, timestamp, and the writer's signature."""

    KIND: ClassVar[str] = "BQS-READ-REPLY"
    value: Any
    ts: Timestamp
    writer_sig: Optional[Signature]  # None before the first write
    nonce: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "ts": self.ts.to_wire(),
            "wsig": None if self.writer_sig is None else self.writer_sig.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BqsReadReply":
        return cls(
            value=wire["value"],
            ts=Timestamp.from_wire(wire["ts"]),
            writer_sig=_opt_sig(wire["wsig"]),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
        )


# ---------------------------------------------------------------------------
# Phalanx Byzantine-client protocol (4f+1 replicas, echo certificates)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class PhxReadTsRequest(Message):
    KIND: ClassVar[str] = "PHX-READ-TS"
    nonce: bytes

    def to_wire(self) -> dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxReadTsRequest":
        return cls(nonce=wire["nonce"])


@register_message
@dataclass(frozen=True)
class PhxReadTsReply(Message):
    KIND: ClassVar[str] = "PHX-READ-TS-REPLY"
    ts: Timestamp
    nonce: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "ts": self.ts.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxReadTsReply":
        return cls(
            ts=Timestamp.from_wire(wire["ts"]),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class PhxEchoRequest(Message):
    """Ask replicas to vouch for ``(ts, h(value))`` before the write."""

    KIND: ClassVar[str] = "PHX-ECHO"
    ts: Timestamp
    value_hash: bytes
    signature: Signature  # client's, over the echo statement

    def to_wire(self) -> dict[str, Any]:
        return {
            "ts": self.ts.to_wire(),
            "hash": self.value_hash,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxEchoRequest":
        return cls(
            ts=Timestamp.from_wire(wire["ts"]),
            value_hash=wire["hash"],
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class PhxEchoReply(Message):
    KIND: ClassVar[str] = "PHX-ECHO-REPLY"
    ts: Timestamp
    value_hash: bytes
    signature: Signature  # replica's echo signature (certificate entry)

    def to_wire(self) -> dict[str, Any]:
        return {
            "ts": self.ts.to_wire(),
            "hash": self.value_hash,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxEchoReply":
        return cls(
            ts=Timestamp.from_wire(wire["ts"]),
            value_hash=wire["hash"],
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class PhxWriteRequest(Message):
    """The write proper, justified by a quorum of echo signatures."""

    KIND: ClassVar[str] = "PHX-WRITE"
    value: Any
    ts: Timestamp
    echo_sigs: tuple[Signature, ...]
    signature: Signature  # client's

    def to_wire(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "ts": self.ts.to_wire(),
            "echoes": tuple(s.to_wire() for s in self.echo_sigs),
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxWriteRequest":
        return cls(
            value=wire["value"],
            ts=Timestamp.from_wire(wire["ts"]),
            echo_sigs=tuple(Signature.from_wire(s) for s in wire["echoes"]),
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class PhxWriteReply(Message):
    KIND: ClassVar[str] = "PHX-WRITE-REPLY"
    ts: Timestamp
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {"ts": self.ts.to_wire(), "sig": self.signature.to_wire()}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxWriteReply":
        return cls(ts=Timestamp.from_wire(wire["ts"]), signature=_sig(wire["sig"]))


@register_message
@dataclass(frozen=True)
class PhxReadRequest(Message):
    KIND: ClassVar[str] = "PHX-READ"
    nonce: bytes

    def to_wire(self) -> dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxReadRequest":
        return cls(nonce=wire["nonce"])


@register_message
@dataclass(frozen=True)
class PhxReadReply(Message):
    """Masking-quorum read reply: no transferable proof is included, so the
    reader must see f+1 matching replies to trust a value."""

    KIND: ClassVar[str] = "PHX-READ-REPLY"
    value: Any
    ts: Timestamp
    nonce: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "ts": self.ts.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PhxReadReply":
        return cls(
            value=wire["value"],
            ts=Timestamp.from_wire(wire["ts"]),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
        )
