"""Signed-statement builders for the baseline protocols."""

from __future__ import annotations

from typing import Any

from repro.core.timestamp import Timestamp

__all__ = [
    "bqs_write_statement",
    "bqs_read_ts_reply_statement",
    "bqs_write_reply_statement",
    "bqs_read_reply_statement",
    "phx_echo_request_statement",
    "phx_echo_statement",
    "phx_write_request_statement",
    "phx_read_ts_reply_statement",
    "phx_write_reply_statement",
    "phx_read_reply_statement",
]


# -- BQS --------------------------------------------------------------------


def bqs_write_statement(ts: Timestamp, value_hash: bytes) -> tuple[Any, ...]:
    """What the *writer* signs: binds the value hash to the timestamp."""
    return ("BQS-WRITE", ts.to_wire(), value_hash)


def bqs_read_ts_reply_statement(ts: Timestamp, nonce: bytes) -> tuple[Any, ...]:
    """Replica's signed phase-1 reply body, bound to the nonce."""
    return ("BQS-READ-TS-REPLY", ts.to_wire(), nonce)


def bqs_write_reply_statement(ts: Timestamp) -> tuple[Any, ...]:
    """Replica's signed write acknowledgement body."""
    return ("BQS-WRITE-REPLY", ts.to_wire())


def bqs_read_reply_statement(
    value: Any, ts: Timestamp, nonce: bytes
) -> tuple[Any, ...]:
    """Replica's signed read-reply envelope (value + timestamp + nonce)."""
    return ("BQS-READ-REPLY", value, ts.to_wire(), nonce)


# -- Phalanx -------------------------------------------------------------------


def phx_echo_request_statement(ts: Timestamp, value_hash: bytes) -> tuple[Any, ...]:
    """What the *client* signs when asking for an echo."""
    return ("PHX-ECHO", ts.to_wire(), value_hash)


def phx_echo_statement(ts: Timestamp, value_hash: bytes) -> tuple[Any, ...]:
    """What replicas sign when echoing; a quorum forms the write proof."""
    return ("PHX-ECHO-REPLY", ts.to_wire(), value_hash)


def phx_write_request_statement(
    value: Any, ts: Timestamp
) -> tuple[Any, ...]:
    """What the client signs on the write proper."""
    return ("PHX-WRITE", value, ts.to_wire())


def phx_read_ts_reply_statement(ts: Timestamp, nonce: bytes) -> tuple[Any, ...]:
    """Replica's signed timestamp reply, bound to the nonce."""
    return ("PHX-READ-TS-REPLY", ts.to_wire(), nonce)


def phx_write_reply_statement(ts: Timestamp) -> tuple[Any, ...]:
    """Replica's signed write acknowledgement body."""
    return ("PHX-WRITE-REPLY", ts.to_wire())


def phx_read_reply_statement(
    value: Any, ts: Timestamp, nonce: bytes
) -> tuple[Any, ...]:
    """Replica's signed read reply (no transferable proof — masking read)."""
    return ("PHX-READ-REPLY", value, ts.to_wire(), nonce)
