"""The Phalanx Byzantine-client register (Malkhi & Reiter [10]).

This is the prior protocol the paper improves on for Byzantine clients:

* ``n = 4f + 1`` replicas, quorums of ``3f + 1``.
* Writes take three phases: READ-TS, ECHO (replicas vouch for one
  ``(ts, h(value))`` per client-timestamp, preventing equivocation), then
  WRITE justified by a quorum of echo signatures.
* Reads are masking-quorum reads: replies carry no transferable proof, so a
  value is only trusted when ``f + 1`` replicas report the identical
  ``(ts, value)``.  Under an incomplete or concurrent write no candidate may
  qualify, in which case the read returns :data:`NULL_READ` — exactly the
  weakness §8 describes ("read operations could return a null value if there
  was an incomplete or a concurrent write").

Use :meth:`~repro.core.quorum.QuorumSystem.phalanx` for the quorum system.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.messages import (
    PhxEchoReply,
    PhxEchoRequest,
    PhxReadReply,
    PhxReadRequest,
    PhxReadTsReply,
    PhxReadTsRequest,
    PhxWriteReply,
    PhxWriteRequest,
)
from repro.baselines.statements import (
    phx_echo_request_statement,
    phx_echo_statement,
    phx_read_reply_statement,
    phx_read_ts_reply_statement,
    phx_write_reply_statement,
    phx_write_request_statement,
)
from repro.core.config import SystemConfig
from repro.core.messages import Message
from repro.core.operations import Operation, Send
from repro.core.timestamp import ZERO_TS, Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.nonces import NonceSource
from repro.crypto.signatures import Signature
from repro.errors import ProtocolError

__all__ = [
    "NULL_READ",
    "PhalanxReplica",
    "PhalanxClient",
    "PhalanxWriteOperation",
    "PhalanxReadOperation",
]

#: Sentinel returned by a Phalanx read that could not identify a value.
NULL_READ = "<phalanx-null-read>"


@dataclass
class PhalanxReplicaStats:
    handled: Counter = field(default_factory=Counter)
    discards: Counter = field(default_factory=Counter)
    writes_installed: int = 0
    echoes_granted: int = 0
    echoes_refused: int = 0


class PhalanxReplica:
    """Phalanx replica: echo log + highest echoed-and-proven value."""

    def __init__(self, node_id: str, config: SystemConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.data: Any = None
        self.ts: Timestamp = ZERO_TS
        #: (client, ts) -> value hash already echoed (anti-equivocation).
        self.echo_log: dict[tuple[str, tuple], bytes] = {}
        self.stats = PhalanxReplicaStats()

    def _sign(self, statement: Any) -> Signature:
        return self.config.scheme.sign_statement(self.node_id, statement)

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        self.stats.handled[message.KIND] += 1
        if isinstance(message, PhxReadTsRequest):
            return PhxReadTsReply(
                ts=self.ts,
                nonce=message.nonce,
                signature=self._sign(
                    phx_read_ts_reply_statement(self.ts, message.nonce)
                ),
            )
        if isinstance(message, PhxEchoRequest):
            return self._handle_echo(message)
        if isinstance(message, PhxWriteRequest):
            return self._handle_write(message)
        if isinstance(message, PhxReadRequest):
            return PhxReadReply(
                value=self.data,
                ts=self.ts,
                nonce=message.nonce,
                signature=self._sign(
                    phx_read_reply_statement(self.data, self.ts, message.nonce)
                ),
            )
        self.stats.discards["unknown-kind"] += 1
        return None

    def _handle_echo(self, message: PhxEchoRequest) -> Optional[PhxEchoReply]:
        client = message.signature.signer
        if not self.config.is_authorized_writer(client):
            self.stats.discards["unauthorized"] += 1
            return None
        statement = phx_echo_request_statement(message.ts, message.value_hash)
        if not self.config.verifier.verify_statement(message.signature, statement):
            self.stats.discards["bad-signature"] += 1
            return None
        key = (client, message.ts.to_wire())
        recorded = self.echo_log.get(key)
        if recorded is not None and recorded != message.value_hash:
            # Equivocation attempt: refuse to vouch for a second value under
            # the same (client, timestamp).
            self.stats.echoes_refused += 1
            self.stats.discards["echo-conflict"] += 1
            return None
        self.echo_log[key] = message.value_hash
        self.stats.echoes_granted += 1
        return PhxEchoReply(
            ts=message.ts,
            value_hash=message.value_hash,
            signature=self._sign(phx_echo_statement(message.ts, message.value_hash)),
        )

    def _handle_write(self, message: PhxWriteRequest) -> Optional[PhxWriteReply]:
        client = message.signature.signer
        if not self.config.is_authorized_writer(client):
            self.stats.discards["unauthorized"] += 1
            return None
        statement = phx_write_request_statement(message.value, message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            self.stats.discards["bad-signature"] += 1
            return None
        value_hash = hash_value(message.value)
        echo_statement = phx_echo_statement(message.ts, value_hash)
        signers = set()
        for sig in message.echo_sigs:
            if not self.config.quorums.is_replica(sig.signer):
                continue
            if not self.config.verifier.verify_statement(sig, echo_statement):
                continue
            signers.add(sig.signer)
        if len(signers) < self.config.quorum_size:
            self.stats.discards["bad-echo-proof"] += 1
            return None
        if message.ts > self.ts:
            self.data = message.value
            self.ts = message.ts
            self.stats.writes_installed += 1
        return PhxWriteReply(
            ts=message.ts,
            signature=self._sign(phx_write_reply_statement(message.ts)),
        )


class PhalanxWriteOperation(Operation):
    """Three-phase Phalanx write: READ-TS, ECHO, WRITE."""

    op_name = "write"

    def __init__(
        self, client_id: str, config: SystemConfig, value: Any, nonce: bytes
    ) -> None:
        super().__init__(client_id, config)
        self.value = value
        self.value_hash = hash_value(value)
        self.nonce = nonce
        self._phase = 0
        self._target_ts: Optional[Timestamp] = None

    def start(self) -> list[Send]:
        self._phase = 1
        return self._broadcast(
            PhxReadTsRequest(nonce=self.nonce), self._validate_read_ts
        )

    def _validate_read_ts(self, sender: str, message: Message) -> Optional[Timestamp]:
        if not isinstance(message, PhxReadTsReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = phx_read_ts_reply_statement(message.ts, message.nonce)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.ts

    def _validate_echo(self, sender: str, message: Message) -> Optional[Signature]:
        if not isinstance(message, PhxEchoReply):
            return None
        if message.ts != self._target_ts or message.value_hash != self.value_hash:
            return None
        if message.signature.signer != sender:
            return None
        statement = phx_echo_statement(message.ts, message.value_hash)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    def _validate_write_reply(
        self, sender: str, message: Message
    ) -> Optional[Signature]:
        if not isinstance(message, PhxWriteReply) or message.ts != self._target_ts:
            return None
        if message.signature.signer != sender:
            return None
        statement = phx_write_reply_statement(message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if not self._collector.have_quorum:
            return []
        if self._phase == 1:
            max_ts: Timestamp = max(self._collector.replies.values())
            self._target_ts = max_ts.succ(self.client_id)
            self._phase = 2
            statement = phx_echo_request_statement(self._target_ts, self.value_hash)
            request = PhxEchoRequest(
                ts=self._target_ts,
                value_hash=self.value_hash,
                signature=self._sign(statement),
            )
            return self._broadcast(request, self._validate_echo)
        if self._phase == 2:
            echo_sigs = tuple(self._collector.replies.values())
            self._phase = 3
            assert self._target_ts is not None
            statement = phx_write_request_statement(self.value, self._target_ts)
            request = PhxWriteRequest(
                value=self.value,
                ts=self._target_ts,
                echo_sigs=echo_sigs,
                signature=self._sign(statement),
            )
            return self._broadcast(request, self._validate_write_reply)
        if self._phase == 3:
            return self._finish(self._target_ts)
        raise AssertionError(f"unexpected phase {self._phase}")


class PhalanxReadOperation(Operation):
    """Masking-quorum read: needs f+1 matching replies; may return NULL_READ."""

    op_name = "read"

    def __init__(self, client_id: str, config: SystemConfig, nonce: bytes) -> None:
        super().__init__(client_id, config)
        self.nonce = nonce
        self.returned_null = False
        self._phase = 0

    def start(self) -> list[Send]:
        self._phase = 1
        return self._broadcast(PhxReadRequest(nonce=self.nonce), self._validate_read)

    def _validate_read(self, sender: str, message: Message) -> Optional[PhxReadReply]:
        if not isinstance(message, PhxReadRequest) and not isinstance(
            message, PhxReadReply
        ):
            return None
        if not isinstance(message, PhxReadReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = phx_read_reply_statement(message.value, message.ts, message.nonce)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if not self._collector.have_quorum:
            return []
        replies: list[PhxReadReply] = list(self._collector.replies.values())
        groups: Counter = Counter()
        values: dict[tuple, Any] = {}
        for reply in replies:
            key = (reply.ts.to_wire(), hash_value(reply.value))
            groups[key] += 1
            values[key] = reply.value
        candidates = [
            key for key, count in groups.items() if count >= self.config.f + 1
        ]
        if not candidates:
            self.returned_null = True
            return self._finish(NULL_READ)
        best = max(candidates, key=lambda key: Timestamp.from_wire(key[0]))
        return self._finish(values[best])


class PhalanxClient:
    """Client front-end with the same driving interface as BftBcClient."""

    def __init__(
        self, node_id: str, config: SystemConfig, *, instrumentation=None
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.instrumentation = instrumentation
        credential = config.registry.register(node_id)
        self._nonces = NonceSource(node_id, secret=credential.secret)
        self.op: Optional[Operation] = None
        self.completed_ops = 0
        self.null_reads = 0

    def begin_write(self, value: Any) -> list[Send]:
        self._check_idle()
        self.op = PhalanxWriteOperation(
            self.node_id, self.config, value, self._nonces.next()
        )
        self.op.instrument(self.instrumentation)
        return self.op.start()

    def begin_read(self) -> list[Send]:
        self._check_idle()
        self.op = PhalanxReadOperation(self.node_id, self.config, self._nonces.next())
        self.op.instrument(self.instrumentation)
        return self.op.start()

    def _check_idle(self) -> None:
        if self.op is not None and not self.op.done:
            raise ProtocolError(f"client {self.node_id} already busy")

    def deliver(self, sender: str, message: Message) -> list[Send]:
        if self.op is None or self.op.done:
            return []
        sends = self.op.on_message(sender, message)
        if self.op.done:
            self.completed_ops += 1
            if isinstance(self.op, PhalanxReadOperation) and self.op.returned_null:
                self.null_reads += 1
        return sends

    def retransmit(self) -> list[Send]:
        if self.op is None or self.op.done:
            return []
        return self.op.on_retransmit()

    @property
    def busy(self) -> bool:
        return self.op is not None and not self.op.done

    @property
    def last_result(self) -> Any:
        return None if self.op is None else self.op.result
