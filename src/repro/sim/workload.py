"""Workload generation for experiments.

Values written by workloads are unique tuples ``(writer_id, seq, payload)``:
uniqueness is what makes linearizability checking polynomial, and the writer
tag is the attribution the BFT-linearizability checker uses (it mirrors the
signature on the phase-3 WRITE request, which replicas verified).
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.sim.nodes import ScriptStep

__all__ = [
    "value_for",
    "write_script",
    "read_script",
    "alternating_script",
    "mixed_script",
    "make_scripts",
]


def value_for(writer: str, seq: int, payload: Any = None) -> tuple:
    """The unique value convention used throughout tests and benchmarks."""
    return (writer, seq, payload)


def write_script(writer: str, count: int, payload_size: int = 0) -> list[ScriptStep]:
    """``count`` writes of unique values."""
    payload = "x" * payload_size if payload_size else None
    return [("write", value_for(writer, seq, payload)) for seq in range(count)]


def read_script(count: int) -> list[ScriptStep]:
    """``count`` reads."""
    return [("read", None) for _ in range(count)]


def alternating_script(writer: str, count: int) -> list[ScriptStep]:
    """write, read, write, read, ... (``count`` of each)."""
    steps: list[ScriptStep] = []
    for seq in range(count):
        steps.append(("write", value_for(writer, seq)))
        steps.append(("read", None))
    return steps


def mixed_script(
    writer: str,
    count: int,
    *,
    write_fraction: float = 0.5,
    seed: int = 0,
) -> list[ScriptStep]:
    """A random mix of reads and writes with the given write fraction."""
    rng = random.Random(seed)
    steps: list[ScriptStep] = []
    seq = 0
    for _ in range(count):
        if rng.random() < write_fraction:
            steps.append(("write", value_for(writer, seq)))
            seq += 1
        else:
            steps.append(("read", None))
    return steps


def make_scripts(
    writers: Sequence[str],
    ops_per_client: int,
    *,
    write_fraction: float = 0.5,
    seed: int = 0,
) -> dict[str, list[ScriptStep]]:
    """Independent mixed scripts for a set of clients."""
    return {
        writer: mixed_script(
            writer,
            ops_per_client,
            write_fraction=write_fraction,
            seed=seed + index,
        )
        for index, writer in enumerate(writers)
    }
