"""Simulator adapter for multi-object clients.

Drives a :class:`~repro.core.multiobject.MultiObjectClient` through a script
of ``(obj, kind, value)`` steps.  Steps on different objects are issued
concurrently up to ``max_in_flight``; per-object operations remain
sequential, matching the §4.1 model.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.batching import BatchCoalescer, BatchStats
from repro.core.multiobject import MultiObjectClient, MultiObjectReplica
from repro.core.messages import Message
from repro.net.simnet import SimNetwork
from repro.sim.scheduler import EventHandle, Scheduler
from repro.spec.histories import History, Invocation, Response

__all__ = ["MultiObjectClientNode", "MultiObjectReplicaNode", "MultiScriptStep"]

#: ``(object id, "read" | "write", value-or-None)``
MultiScriptStep = tuple[str, str, Any]

RETRANSMIT_INTERVAL = 0.05


class MultiObjectClientNode:
    """Runs a multi-object script over the simulated network."""

    def __init__(
        self,
        client: MultiObjectClient,
        network: SimNetwork,
        scheduler: Scheduler,
        *,
        max_in_flight: int = 4,
        record_history: bool = False,
        coalescer: Optional[BatchCoalescer] = None,
    ) -> None:
        self.client = client
        self.network = network
        self.scheduler = scheduler
        self.max_in_flight = max_in_flight
        #: Cross-object batching layer: when set, each send round (dispatch,
        #: delivery follow-ups, retransmission sweep) emits at most one wire
        #: frame per destination.
        self.coalescer = coalescer
        self.results: list[tuple[MultiScriptStep, Any]] = []
        self.done = True
        #: Per-object histories (obj -> History), populated when
        #: ``record_history`` is on.  Each object gets its own history so
        #: the per-client-per-object sequentiality of §4.1 holds.
        self.histories: dict[str, History] = {} if record_history else {}
        self._record = record_history
        self._pending: list[MultiScriptStep] = []
        self._in_flight: dict[str, MultiScriptStep] = {}
        self._retransmit_handle: Optional[EventHandle] = None
        network.register(client.node_id, self._on_message)

    @property
    def node_id(self) -> str:
        return self.client.node_id

    def run_script(self, script: list[MultiScriptStep]) -> None:
        self._pending = list(script)
        self.done = not self._pending
        if self._pending:
            self.scheduler.call_later(0.0, self._dispatch)
            self._arm_retransmit()

    # -- scheduling ------------------------------------------------------------

    def _dispatch(self) -> None:
        # Sends from every step issued this round are accumulated and sent
        # as one round, so the coalescer can merge same-replica frames
        # across objects (k in-flight ops -> one frame per replica).
        round_sends = []
        index = 0
        while index < len(self._pending) and len(self._in_flight) < self.max_in_flight:
            obj, kind, value = self._pending[index]
            if obj in self._in_flight:
                index += 1  # that object is busy: keep order, try the next
                continue
            step = self._pending.pop(index)
            self._in_flight[obj] = step
            if self._record:
                self.histories.setdefault(obj, History()).append(
                    Invocation(
                        client=self.node_id,
                        obj=obj,
                        op=kind,
                        arg=value,
                        time=self.scheduler.now,
                    )
                )
            if kind == "write":
                round_sends.extend(self.client.begin_write(obj, value))
            elif kind == "read":
                round_sends.extend(self.client.begin_read(obj))
            else:
                raise ValueError(f"unknown step kind {kind!r}")
        self._send_all(round_sends)

    def _on_message(self, src: str, message: Message) -> None:
        self._send_all(self.client.deliver(src, message))
        completed = [
            obj for obj in list(self._in_flight) if not self.client.busy(obj)
        ]
        for obj in completed:
            step = self._in_flight.pop(obj)
            result = self.client.result(obj)
            self.results.append((step, result))
            if self._record:
                value = result if step[1] == "read" else None
                self.histories.setdefault(obj, History()).append(
                    Response(
                        client=self.node_id,
                        obj=obj,
                        value=value,
                        time=self.scheduler.now,
                    )
                )
        if completed:
            self._dispatch()
        if not self._pending and not self._in_flight:
            self.done = True
            self._cancel_retransmit()

    def _send_all(self, sends) -> None:
        if self.coalescer is not None:
            sends = self.coalescer.coalesce(sends)
        for send in sends:
            self.network.send(self.node_id, send.dest, send.message)

    def _arm_retransmit(self) -> None:
        self._retransmit_handle = self.scheduler.call_later(
            RETRANSMIT_INTERVAL, self._retransmit
        )

    def _retransmit(self) -> None:
        if self.done:
            return
        self._send_all(self.client.retransmit())
        self._arm_retransmit()

    def _cancel_retransmit(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
            self._retransmit_handle = None

    @property
    def batch_stats(self) -> Optional[BatchStats]:
        """Coalescing counters, when batching is enabled."""
        return None if self.coalescer is None else self.coalescer.stats


class MultiObjectReplicaNode:
    """Wires a :class:`MultiObjectReplica` into the simulated network.

    The replica itself is batch-aware: a :class:`BatchEnvelope` of object
    messages is unpacked, handled in order, and answered with at most one
    reply frame, so the reply fan-in is coalesced symmetrically with the
    client's request fan-out.
    """

    def __init__(self, replica: MultiObjectReplica, network: SimNetwork) -> None:
        self.replica = replica
        self.network = network
        network.register(replica.node_id, self._on_message)

    def _on_message(self, src: str, message: Message) -> None:
        reply = self.replica.handle(src, message)
        if reply is not None:
            self.network.send(self.replica.node_id, src, reply)

    @property
    def node_id(self) -> str:
        return self.replica.node_id
