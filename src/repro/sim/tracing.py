"""Protocol-level message tracing for simulated runs.

Attach a :class:`MessageTrace` to a cluster's network and every send, drop,
corruption, and delivery is recorded with its virtual timestamp.  The trace
can be filtered, summarised per message kind, and rendered as a compact
text timeline — the first tool to reach for when a schedule misbehaves.

Example::

    cluster = build_cluster(f=1)
    trace = MessageTrace.attach(cluster)
    ... run workload ...
    print(trace.render(limit=40))
    print(trace.summary())
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["TraceEvent", "MessageTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed network event."""

    time: float
    event: str  # sent | dropped | corrupted | delivered
    src: str
    dst: str
    kind: str

    def format(self) -> str:
        arrow = {
            "sent": "→",
            "delivered": "✓",
            "dropped": "✗",
            "corrupted": "≈",
        }.get(self.event, "?")
        return (
            f"{self.time * 1000:9.3f}ms  {self.event:9s} {arrow} "
            f"{self.src:>16s} → {self.dst:<16s} {self.kind}"
        )


class MessageTrace:
    """Records network events from a :class:`~repro.net.simnet.SimNetwork`."""

    def __init__(self, network, scheduler) -> None:
        self._network = network
        self._scheduler = scheduler
        self.events: list[TraceEvent] = []
        self.enabled = True
        # Keep one stable bound-method reference: accessing self._on_event
        # creates a fresh object each time, which would defeat the identity
        # check in detach().
        self._tap = self._on_event
        network.tap = self._tap

    @classmethod
    def attach(cls, cluster) -> "MessageTrace":
        """Convenience: attach to a cluster-like object (network+scheduler)."""
        return cls(cluster.network, cluster.scheduler)

    def _on_event(self, event: str, src: str, dst: str, kind: str) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(
                time=self._scheduler.now, event=event, src=src, dst=dst, kind=kind
            )
        )

    def detach(self) -> None:
        if self._network.tap is self._tap:
            self._network.tap = None

    def clear(self) -> None:
        self.events.clear()

    # -- queries ---------------------------------------------------------------

    def filter(
        self,
        *,
        node: Optional[str] = None,
        kind: Optional[str] = None,
        event: Optional[str] = None,
    ) -> list[TraceEvent]:
        """Events touching ``node``, of message ``kind``, of ``event`` type."""
        out = []
        for item in self.events:
            if node is not None and node not in (item.src, item.dst):
                continue
            if kind is not None and item.kind != kind:
                continue
            if event is not None and item.event != event:
                continue
            out.append(item)
        return out

    def kinds(self) -> Counter:
        """sent-message counts by kind."""
        return Counter(e.kind for e in self.events if e.event == "sent")

    def drop_rate(self) -> float:
        sent = sum(1 for e in self.events if e.event == "sent")
        dropped = sum(1 for e in self.events if e.event == "dropped")
        return dropped / sent if sent else 0.0

    # -- rendering ----------------------------------------------------------------

    def render(
        self,
        events: Optional[Iterable[TraceEvent]] = None,
        *,
        limit: int = 100,
    ) -> str:
        """A time-ordered text timeline (truncated to ``limit`` lines)."""
        selected = list(self.events if events is None else events)
        lines = [e.format() for e in selected[:limit]]
        if len(selected) > limit:
            lines.append(f"... {len(selected) - limit} more events")
        return "\n".join(lines)

    def summary(self) -> str:
        """Aggregate counts by kind and outcome."""
        by_kind = self.kinds()
        outcomes = Counter(e.event for e in self.events)
        parts = [
            "events: "
            + ", ".join(f"{name}={count}" for name, count in sorted(outcomes.items()))
        ]
        parts.append(
            "sent by kind: "
            + ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        )
        parts.append(f"drop rate: {self.drop_rate():.1%}")
        return "\n".join(parts)
