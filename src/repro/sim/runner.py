"""Cluster construction and experiment execution.

:func:`build_cluster` assembles a full deployment — quorum system, keys,
replicas (optionally substituting Byzantine ones), simulated network,
recorder, metrics — for any of the three protocol variants.  Experiments then
attach clients (correct or Byzantine), install workloads and fault schedules,
and run the deterministic scheduler until the workloads complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.batching import BatchCoalescer, BatchStats
from repro.core.client import (
    BftBcClient,
    FastBftBcClient,
    OptimizedBftBcClient,
    StrongBftBcClient,
)
from repro.core.config import SystemConfig, Variant, make_system
from repro.core.persistence import ClientStateBudget
from repro.core.messages import wire_cache_stats
from repro.core.fast_replica import FastBftBcReplica
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.net.simnet import LinkProfile, SimNetwork
from repro.obs.instrumentation import Instrumentation
from repro.sim.faults import FaultSchedule
from repro.sim.metrics import MetricsCollector
from repro.sim.nodes import ClientNode, ReplicaNode, ScriptStep
from repro.sim.recorder import HistoryRecorder
from repro.sim.scheduler import Scheduler
from repro.spec.histories import History
from repro.storage import ReplicaStore
from repro.errors import OperationFailedError, SimulationError

__all__ = ["ClusterOptions", "Cluster", "build_cluster", "VARIANTS"]

#: Supported protocol variant names (the values of :class:`Variant`).
VARIANTS = tuple(v.value for v in Variant)

ReplicaFactory = Callable[[str, SystemConfig], BftBcReplica]


@dataclass
class ClusterOptions:
    """Knobs for one simulated deployment."""

    f: int = 1
    variant: Variant = Variant.BASE
    scheme: str = "hmac"
    seed: int = 0
    profile: LinkProfile = field(default_factory=LinkProfile.reliable)
    background_signing: bool = False
    gc_plist: bool = True
    strict_stop: bool = False
    piggyback_write_certs: bool = False
    prefer_quorum: bool = False
    #: Enable the memoizing verification pipeline (set False for the
    #: uncached ablation arm of experiment E4d).
    verification_cache: bool = True
    #: Optional per-replica cap on resident per-client protocol state
    #: (plist/optlist/fastc); entries beyond it spill to the WAL-backed
    #: store and rehydrate on demand.  ``None`` keeps the classic
    #: all-resident behaviour.
    client_state_budget: Optional[ClientStateBudget] = None
    #: Coalesce same-destination sends into batch envelopes.  Single-object
    #: clients never share a destination within a round, so for this runner
    #: the layer is a provable pass-through (the differential tests pin the
    #: runs byte for byte); it exists here so every variant can be exercised
    #: with the batching path active.
    batching: bool = False
    #: Virtual-time cost of one foreground public-key signature at a
    #: replica (models §3.3.2's signing cost; 0 = free).
    sign_delay: float = 0.0
    retransmit_interval: float = 0.05
    #: Exponential growth of the retransmission period per unanswered
    #: attempt (1.0 = the historical fixed timer), with ``retransmit_jitter``
    #: spreading clients' retries by a deterministic ±fraction and
    #: ``retransmit_max_interval`` capping the backoff.
    retransmit_backoff: float = 1.0
    retransmit_jitter: float = 0.0
    retransmit_max_interval: Optional[float] = None
    #: Called with each replica's node_id to build its backing store.  When
    #: set, that replica's Figure-2 state is mediated by the produced store
    #: (e.g. a FileLogStore for durable deployments); None keeps the
    #: volatile in-memory default.
    store_factory: Optional[Callable[[str], ReplicaStore]] = None
    #: Replica index -> factory producing a (possibly Byzantine) replica.
    replica_overrides: dict[int, ReplicaFactory] = field(default_factory=dict)
    #: Observability handle threaded through every client and replica of
    #: the cluster.  ``None`` builds a disabled handle: spans are no-ops,
    #: but the stats sources still register so metrics accessors work.
    instrumentation: Optional[Instrumentation] = None

    def __post_init__(self) -> None:
        try:
            self.variant = Variant.coerce(self.variant)
        except Exception:
            raise SimulationError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            ) from None


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(self, options: ClusterOptions) -> None:
        self.options = options
        self.config = make_system(
            options.f,
            scheme=options.scheme,
            seed=b"cluster-seed-%d" % options.seed,
            strong=(options.variant == "strong"),
            background_signing=options.background_signing,
            gc_plist=options.gc_plist,
            strict_stop=options.strict_stop,
            piggyback_write_certs=options.piggyback_write_certs,
            prefer_quorum=options.prefer_quorum,
            verification_cache=options.verification_cache,
            client_state_budget=options.client_state_budget,
        )
        self.scheduler = Scheduler()
        self.network = SimNetwork(
            self.scheduler, profile=options.profile, seed=options.seed
        )
        self.recorder = HistoryRecorder(self.scheduler)
        #: The run's observability handle; spans and histograms use the
        #: scheduler's virtual clock unless the caller bound another.
        self.instrumentation = options.instrumentation or Instrumentation.off()
        self.instrumentation.bind_clock(lambda: self.scheduler.now)
        self.metrics = MetricsCollector(instrumentation=self.instrumentation)
        assert self.config.verifier is not None
        self.instrumentation.attach_verification(self.config.verifier.stats)
        self.instrumentation.attach_wire_cache(wire_cache_stats())
        self.instrumentation.attach_keys(self.config.registry.stats)
        if self.config.authenticator is not None:
            self.instrumentation.attach_sessions(self.config.authenticator.stats)
        #: One coalescing-stats block shared by every client of the cluster.
        self.batch_stats: Optional[BatchStats] = (
            BatchStats() if options.batching else None
        )
        if self.batch_stats is not None:
            self.instrumentation.attach_batching(self.batch_stats)
        self.replica_nodes: dict[str, ReplicaNode] = {}
        self.clients: dict[str, ClientNode] = {}
        self._extra_done_checks: list[Callable[[], bool]] = []
        self._build_replicas()

    @property
    def replicas(self) -> dict[str, BftBcReplica]:
        """Live replica state machines, by node id.

        A property over the nodes because a crash/restart fault swaps the
        node's replica object for a freshly recovered one.
        """
        return {nid: node.replica for nid, node in self.replica_nodes.items()}

    # -- construction ------------------------------------------------------------

    def _replica_class(self) -> type[BftBcReplica]:
        if self.options.variant == "optimized":
            return OptimizedBftBcReplica
        if self.options.variant == "fastpath":
            return FastBftBcReplica
        return BftBcReplica

    def _client_class(self) -> type[BftBcClient]:
        if self.options.variant == "optimized":
            return OptimizedBftBcClient
        if self.options.variant == "fastpath":
            return FastBftBcClient
        if self.options.variant == "strong":
            return StrongBftBcClient
        return BftBcClient

    def _build_replicas(self) -> None:
        replica_cls = self._replica_class()
        storage_stats = {}
        client_state_stats = {}
        stabilization_stats = {}
        for index, node_id in enumerate(self.config.quorums.replica_ids):
            factory = self.options.replica_overrides.get(index)
            if factory is not None:
                # Byzantine overrides keep their own (volatile) state.
                replica = factory(node_id, self.config)
            elif self.options.store_factory is not None:
                replica = replica_cls(
                    node_id,
                    self.config,
                    store=self.options.store_factory(node_id),
                    instrumentation=self.instrumentation,
                )
            else:
                replica = replica_cls(
                    node_id, self.config, instrumentation=self.instrumentation
                )
            storage_stats[node_id] = replica.store.stats
            stabilization_stats[node_id] = replica.stats
            client_state = getattr(replica, "client_state", None)
            if client_state is not None:
                client_state_stats[node_id] = client_state.stats
            self.replica_nodes[node_id] = ReplicaNode(
                replica,
                self.network,
                self.scheduler,
                sign_delay=self.options.sign_delay,
            )
        self.instrumentation.attach_storage(storage_stats)
        self.instrumentation.attach_stabilization(stabilization_stats)
        if client_state_stats:
            self.instrumentation.attach_client_state(client_state_stats)

    def add_client(self, name: str) -> ClientNode:
        """Create a correct client of the cluster's variant."""
        client = self._client_class()(
            f"client:{name}", self.config, instrumentation=self.instrumentation
        )
        node = ClientNode(
            client,
            self.network,
            self.scheduler,
            recorder=self.recorder,
            metrics=self.metrics,
            retransmit_interval=self.options.retransmit_interval,
            retransmit_backoff=self.options.retransmit_backoff,
            retransmit_jitter=self.options.retransmit_jitter,
            retransmit_max_interval=self.options.retransmit_max_interval,
            coalescer=(
                BatchCoalescer(self.batch_stats)
                if self.batch_stats is not None
                else None
            ),
        )
        self.clients[client.node_id] = node
        return node

    def add_done_check(self, check: Callable[[], bool]) -> None:
        """Register an extra completion condition (Byzantine actors use this)."""
        self._extra_done_checks.append(check)

    # -- execution ------------------------------------------------------------------

    def install_faults(self, schedule: FaultSchedule) -> None:
        schedule.install(self.scheduler, self.network, nodes=self.replica_nodes)

    def run_scripts(
        self,
        scripts: dict[str, Sequence[ScriptStep]],
        *,
        think_time: float = 0.0,
        stagger: float = 0.0,
        max_time: float = 300.0,
    ) -> None:
        """Install one script per client (by short name) and run to completion.

        Clients are created on demand.  ``stagger`` spaces the clients'
        start times to control contention.
        """
        for index, (name, script) in enumerate(scripts.items()):
            node = self.clients.get(f"client:{name}") or self.add_client(name)
            node.run_script(
                script, think_time=think_time, start_delay=index * stagger
            )
        self.run(max_time=max_time)

    def _all_done(self) -> bool:
        if not all(node.done for node in self.clients.values()):
            return False
        return all(check() for check in self._extra_done_checks)

    def run(self, *, max_time: float = 300.0, max_events: int = 5_000_000) -> None:
        """Run until every client script (and extra check) completes.

        Raises:
            OperationFailedError: if the virtual-time or event budget is
                exhausted first — i.e. liveness failed under this schedule.
        """
        self.scheduler.run(
            until=self.scheduler.now + max_time,
            max_events=max_events,
            stop_when=self._all_done,
        )
        if not self._all_done():
            busy = [n for n, node in self.clients.items() if not node.done]
            raise OperationFailedError(
                f"workload incomplete after {max_time}s virtual time; "
                f"busy clients: {busy}"
            )

    def settle(self, duration: float = 1.0) -> None:
        """Let in-flight messages drain for ``duration`` of virtual time."""
        self.scheduler.run(until=self.scheduler.now + duration)

    # -- administrative actions -------------------------------------------------

    def stop_client(self, node_id: str) -> None:
        """The §4.1.1 stop event: revoke the key and record ``<c : stop>``."""
        self.config.revoke_writer(node_id)
        self.recorder.record_stop(node_id)

    # -- results ------------------------------------------------------------------

    @property
    def history(self) -> History:
        return self.recorder.history

    def client(self, name: str) -> ClientNode:
        return self.clients[f"client:{name}"]


def build_cluster(options: Optional[ClusterOptions] = None, **kwargs) -> Cluster:
    """Build a cluster from options or keyword overrides."""
    if options is None:
        options = ClusterOptions(**kwargs)
    elif kwargs:
        raise SimulationError("pass either options or keyword overrides, not both")
    return Cluster(options)
