"""Declarative fault schedules for the simulated network.

A :class:`FaultSchedule` is a list of timed actions (crash, recover,
partition, heal, degrade a link) applied to a :class:`~repro.net.simnet.SimNetwork`
when the simulation reaches the given virtual time.  Experiments use these to
exercise the asynchrony and fault assumptions of §2 without hand-writing
scheduler callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim.scheduler import Scheduler

__all__ = ["FaultAction", "FaultSchedule"]


@dataclass(frozen=True)
class FaultAction:
    """One timed fault-injection step."""

    time: float
    description: str
    apply: Callable[[SimNetwork], None]


@dataclass
class FaultSchedule:
    """A composable schedule of fault actions."""

    actions: list[FaultAction] = field(default_factory=list)

    def crash(self, time: float, node_id: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"crash {node_id}", lambda net: net.crash(node_id))
        )
        return self

    def recover(self, time: float, node_id: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"recover {node_id}", lambda net: net.recover(node_id))
        )
        return self

    def partition(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"partition {a} | {b}", lambda net: net.partition(a, b))
        )
        return self

    def heal(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"heal {a} | {b}", lambda net: net.heal(a, b))
        )
        return self

    def degrade_link(
        self, time: float, src: str, dst: str, profile: LinkProfile
    ) -> "FaultSchedule":
        self.actions.append(
            FaultAction(
                time,
                f"degrade {src}->{dst}",
                lambda net: net.set_link_profile(src, dst, profile),
            )
        )
        return self

    def install(self, scheduler: Scheduler, network: SimNetwork) -> None:
        """Arm every action on the scheduler."""
        for action in self.actions:
            scheduler.call_at(
                action.time, lambda a=action: a.apply(network)
            )
