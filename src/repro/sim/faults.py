"""Declarative fault schedules for the simulated network.

A :class:`FaultSchedule` is a list of timed actions (crash, recover,
partition, heal, degrade a link) applied to a :class:`~repro.net.simnet.SimNetwork`
when the simulation reaches the given virtual time.  Experiments use these to
exercise the asynchrony and fault assumptions of §2 without hand-writing
scheduler callbacks.

Network-level :meth:`FaultSchedule.crash` merely stops delivery — the
replica's in-memory state survives, modelling a partition-style outage.
Node-level :meth:`FaultSchedule.crash_restart` goes further: it fires the
:class:`~repro.sim.nodes.ReplicaNode` crash/restart path, which destroys the
replica object and rebuilds it from its
:class:`~repro.storage.ReplicaStore` — the schedule that crash-recovery
experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import SimulationError
from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim.scheduler import Scheduler

__all__ = ["FaultAction", "NodeFaultAction", "FaultSchedule"]


@dataclass(frozen=True)
class FaultAction:
    """One timed fault-injection step."""

    time: float
    description: str
    apply: Callable[[SimNetwork], None]


@dataclass(frozen=True)
class NodeFaultAction:
    """A timed step that acts on a :class:`~repro.sim.nodes.ReplicaNode`.

    Unlike :class:`FaultAction` these need the node adapter, not just the
    network, because they destroy and rebuild the replica state machine.
    """

    time: float
    description: str
    node_id: str
    apply: Callable[[Any], None]


@dataclass
class FaultSchedule:
    """A composable schedule of fault actions."""

    actions: list[FaultAction] = field(default_factory=list)
    node_actions: list[NodeFaultAction] = field(default_factory=list)

    def crash(self, time: float, node_id: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"crash {node_id}", lambda net: net.crash(node_id))
        )
        return self

    def recover(self, time: float, node_id: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"recover {node_id}", lambda net: net.recover(node_id))
        )
        return self

    def partition(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"partition {a} | {b}", lambda net: net.partition(a, b))
        )
        return self

    def heal(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"heal {a} | {b}", lambda net: net.heal(a, b))
        )
        return self

    def degrade_link(
        self, time: float, src: str, dst: str, profile: LinkProfile
    ) -> "FaultSchedule":
        self.actions.append(
            FaultAction(
                time,
                f"degrade {src}->{dst}",
                lambda net: net.set_link_profile(src, dst, profile),
            )
        )
        return self

    def crash_restart(
        self, time: float, node_id: str, *, down_for: float
    ) -> "FaultSchedule":
        """Crash ``node_id`` at ``time`` (losing volatile state) and restart
        it ``down_for`` later, recovering from its store."""
        self.node_actions.append(
            NodeFaultAction(
                time, f"crash {node_id}", node_id, lambda node: node.crash()
            )
        )
        self.node_actions.append(
            NodeFaultAction(
                time + down_for,
                f"restart {node_id}",
                node_id,
                lambda node: node.restart(),
            )
        )
        return self

    def install(
        self,
        scheduler: Scheduler,
        network: SimNetwork,
        nodes: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Arm every action on the scheduler.

        ``nodes`` maps node id to :class:`~repro.sim.nodes.ReplicaNode` and
        is required whenever the schedule contains node-level actions.
        """
        for action in self.actions:
            scheduler.call_at(
                action.time, lambda a=action: a.apply(network)
            )
        if self.node_actions and nodes is None:
            raise SimulationError(
                "schedule has node-level actions but no nodes were supplied"
            )
        for node_action in self.node_actions:
            if node_action.node_id not in nodes:  # type: ignore[operator]
                raise SimulationError(
                    f"unknown node {node_action.node_id!r} in fault schedule"
                )
            scheduler.call_at(
                node_action.time,
                lambda a=node_action: a.apply(nodes[a.node_id]),  # type: ignore[index]
            )
