"""Declarative fault schedules for the simulated network.

A :class:`FaultSchedule` is a list of timed actions (crash, recover,
partition, heal, degrade a link) applied to a :class:`~repro.net.simnet.SimNetwork`
when the simulation reaches the given virtual time.  Experiments use these to
exercise the asynchrony and fault assumptions of §2 without hand-writing
scheduler callbacks.

Network-level :meth:`FaultSchedule.crash` merely stops delivery — the
replica's in-memory state survives, modelling a partition-style outage.
Node-level :meth:`FaultSchedule.crash_restart` goes further: it fires the
:class:`~repro.sim.nodes.ReplicaNode` crash/restart path, which destroys the
replica object and rebuilds it from its
:class:`~repro.storage.ReplicaStore` — the schedule that crash-recovery
experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import SimulationError
from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim.scheduler import Scheduler

__all__ = ["FaultAction", "NodeFaultAction", "ClusterFaultAction", "FaultSchedule"]


@dataclass(frozen=True)
class FaultAction:
    """One timed fault-injection step."""

    time: float
    description: str
    apply: Callable[[SimNetwork], None]


@dataclass(frozen=True)
class NodeFaultAction:
    """A timed step that acts on a :class:`~repro.sim.nodes.ReplicaNode`.

    Unlike :class:`FaultAction` these need the node adapter, not just the
    network, because they destroy and rebuild the replica state machine.
    """

    time: float
    description: str
    node_id: str
    apply: Callable[[Any], None]


@dataclass(frozen=True)
class ClusterFaultAction:
    """A timed step that acts on a whole cluster harness.

    Reconfiguration is the motivating case: replacing a shard member needs
    the cluster (to spawn the joining node and the reconfigurator), not any
    single node or the bare network.
    """

    time: float
    description: str
    apply: Callable[[Any], None]


@dataclass
class FaultSchedule:
    """A composable schedule of fault actions.

    A schedule is built once (the ``crash``/``partition``/… builders all
    return ``self`` for chaining), validated as it is built, and installed
    exactly once: :meth:`install` arms every action and raises
    :class:`~repro.errors.SimulationError` on a second call — arming the
    same actions twice would double-fire every fault.  Overlapping
    :meth:`crash_restart` windows for one node are rejected at build time:
    a restart scheduled while the node is still down from an earlier
    crash would bring it back early and silently change the experiment.
    """

    actions: list[FaultAction] = field(default_factory=list)
    node_actions: list[NodeFaultAction] = field(default_factory=list)
    cluster_actions: list[ClusterFaultAction] = field(default_factory=list)
    #: Down-windows per node, ``node_id -> [(crash_time, restart_time)]``,
    #: maintained by :meth:`crash_restart` for overlap validation.
    _down_windows: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _installed: bool = field(default=False, init=False, repr=False, compare=False)

    def crash(self, time: float, node_id: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"crash {node_id}", lambda net: net.crash(node_id))
        )
        return self

    def recover(self, time: float, node_id: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"recover {node_id}", lambda net: net.recover(node_id))
        )
        return self

    def partition(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"partition {a} | {b}", lambda net: net.partition(a, b))
        )
        return self

    def heal(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.actions.append(
            FaultAction(time, f"heal {a} | {b}", lambda net: net.heal(a, b))
        )
        return self

    def block_kinds(
        self, time: float, dst: str, kinds: tuple[str, ...]
    ) -> "FaultSchedule":
        """Drop inbound messages of the given KINDs at ``dst`` from ``time``
        on.  The fastpath chaos scenarios use this to filter FAST-PREP /
        FAST-WRITE traffic and force clients onto the signed fallback."""
        self.actions.append(
            FaultAction(
                time,
                f"block {','.join(kinds)} -> {dst}",
                lambda net: net.block_kinds(dst, kinds),
            )
        )
        return self

    def unblock_kinds(
        self, time: float, dst: str, kinds: Optional[tuple[str, ...]] = None
    ) -> "FaultSchedule":
        """Heal a selective kind-block at ``dst`` (all kinds when None)."""
        self.actions.append(
            FaultAction(
                time,
                f"unblock {','.join(kinds) if kinds else '*'} -> {dst}",
                lambda net: net.unblock_kinds(dst, kinds),
            )
        )
        return self

    def degrade_link(
        self, time: float, src: str, dst: str, profile: LinkProfile
    ) -> "FaultSchedule":
        self.actions.append(
            FaultAction(
                time,
                f"degrade {src}->{dst}",
                lambda net: net.set_link_profile(src, dst, profile),
            )
        )
        return self

    def crash_restart(
        self, time: float, node_id: str, *, down_for: float
    ) -> "FaultSchedule":
        """Crash ``node_id`` at ``time`` (losing volatile state) and restart
        it ``down_for`` later, recovering from its store.

        Raises:
            SimulationError: if ``down_for`` is not positive, or the new
                down-window ``[time, time + down_for)`` overlaps an earlier
                crash_restart window for the same node (the restart would
                fire while the node is still down from the other crash).
        """
        if down_for <= 0:
            raise SimulationError(
                f"crash_restart down_for must be positive, got {down_for}"
            )
        window = (time, time + down_for)
        for start, end in self._down_windows.get(node_id, ()):
            if window[0] < end and start < window[1]:
                raise SimulationError(
                    f"crash_restart window [{window[0]}, {window[1]}) for "
                    f"{node_id!r} overlaps existing down-window "
                    f"[{start}, {end})"
                )
        self._down_windows.setdefault(node_id, []).append(window)
        self.node_actions.append(
            NodeFaultAction(
                time, f"crash {node_id}", node_id, lambda node: node.crash()
            )
        )
        self.node_actions.append(
            NodeFaultAction(
                time + down_for,
                f"restart {node_id}",
                node_id,
                lambda node: node.restart(),
            )
        )
        return self

    def wal_bitflip(
        self, time: float, node_id: str, *, position: float = 0.5, flip: int = 0x01
    ) -> "FaultSchedule":
        """XOR one byte of ``node_id``'s on-disk WAL at ``time``.

        ``position`` is a fraction of the file size at fire time (robust to
        the log growing between plan generation and injection); ``flip`` is
        the XOR mask.  Models bit rot: the live replica keeps running on
        its in-memory state until a self-audit or restart replays the log
        and the integrity seal exposes the damage.  Requires a file-backed
        store (no-op on a volatile one).
        """
        if not 0.0 <= position <= 1.0:
            raise SimulationError(
                f"wal_bitflip position must be in [0, 1], got {position}"
            )
        if not 1 <= flip <= 0xFF:
            raise SimulationError(
                f"wal_bitflip mask must be a non-zero byte, got {flip}"
            )
        self.node_actions.append(
            NodeFaultAction(
                time,
                f"wal_bitflip {node_id} @{position:.2f}",
                node_id,
                lambda node: node.corrupt_wal(position=position, flip=flip),
            )
        )
        return self

    def snapshot_truncate(
        self, time: float, node_id: str, *, keep: float = 0.5
    ) -> "FaultSchedule":
        """Truncate ``node_id``'s on-disk snapshot to a ``keep`` fraction.

        Models a partially-written or rotted snapshot file; the checksum
        footer fails on the next load and recovery falls back to the
        previous generation or WAL-only replay.  Requires a file-backed
        store (no-op on a volatile one).
        """
        if not 0.0 <= keep < 1.0:
            raise SimulationError(
                f"snapshot_truncate keep must be in [0, 1), got {keep}"
            )
        self.node_actions.append(
            NodeFaultAction(
                time,
                f"snapshot_truncate {node_id} keep={keep:.2f}",
                node_id,
                lambda node: node.corrupt_snapshot(keep=keep),
            )
        )
        return self

    def state_perturb(
        self, time: float, node_id: str, *, target: str = "data", seed: int = 0
    ) -> "FaultSchedule":
        """Mutate one Figure-2 field of ``node_id``'s *live* in-memory state.

        Models a memory fault: the durable log still holds the truth, so a
        periodic self-audit (replaying the store into a twin) detects the
        divergence and quarantines the replica.  ``target`` picks the
        field: ``data`` (the object value), ``write_ts`` (regressed to
        zero) or ``plist`` (prepare list forgotten).
        """
        if target not in ("data", "write_ts", "plist"):
            raise SimulationError(
                f"state_perturb target must be data/write_ts/plist, got {target!r}"
            )
        self.node_actions.append(
            NodeFaultAction(
                time,
                f"state_perturb {node_id} {target}",
                node_id,
                lambda node: node.perturb_state(target=target, seed=seed),
            )
        )
        return self

    def reconfigure(
        self,
        time: float,
        shard: str,
        *,
        remove: str,
        add: str,
        crash_old: bool = False,
    ) -> "FaultSchedule":
        """Replace member ``remove`` of ``shard`` with a fresh node ``add``.

        Fires ``cluster.start_reconfiguration(...)`` at ``time``: the
        cluster harness spawns the joining replica (which bootstraps by
        state transfer), runs a reconfigurator client against the old
        membership, and installs the successor epoch under whatever traffic
        is in flight.  With ``crash_old`` the removed member is crashed at
        the same instant — the "replace a dead replica" scenario.
        """
        self.cluster_actions.append(
            ClusterFaultAction(
                time,
                f"reconfigure {shard}: {remove} -> {add}"
                + (" (crash old)" if crash_old else ""),
                lambda cluster: cluster.start_reconfiguration(
                    shard, remove=remove, add=add, crash_old=crash_old
                ),
            )
        )
        return self

    def install(
        self,
        scheduler: Scheduler,
        network: SimNetwork,
        nodes: Optional[Mapping[str, Any]] = None,
        cluster: Optional[Any] = None,
    ) -> None:
        """Arm every action on the scheduler.

        ``nodes`` maps node id to :class:`~repro.sim.nodes.ReplicaNode` and
        is required whenever the schedule contains node-level actions;
        ``cluster`` is required for cluster-level actions (reconfiguration).

        Ordering is explicit: network actions are armed before node
        actions, then cluster actions, and within each list actions fire in
        time order with same-time ties resolved by the order they were
        added to the schedule.  A schedule installs exactly once; a second
        call raises (it would arm — and fire — every action twice).
        """
        if self._installed:
            raise SimulationError(
                "fault schedule is already installed; installing twice "
                "would fire every action twice"
            )
        # Validate everything before arming anything, so a failed install
        # leaves neither half-armed actions nor a spent schedule behind.
        if self.node_actions and nodes is None:
            raise SimulationError(
                "schedule has node-level actions but no nodes were supplied"
            )
        if self.cluster_actions and cluster is None:
            raise SimulationError(
                "schedule has cluster-level actions but no cluster was supplied"
            )
        for node_action in self.node_actions:
            if node_action.node_id not in (nodes or {}):
                raise SimulationError(
                    f"unknown node {node_action.node_id!r} in fault schedule"
                )
        self._installed = True
        for action in sorted(self.actions, key=lambda a: a.time):
            scheduler.call_at(
                action.time, lambda a=action: a.apply(network)
            )
        for node_action in sorted(self.node_actions, key=lambda a: a.time):
            scheduler.call_at(
                node_action.time,
                lambda a=node_action: a.apply(nodes[a.node_id]),  # type: ignore[index]
            )
        for cluster_action in sorted(self.cluster_actions, key=lambda a: a.time):
            scheduler.call_at(
                cluster_action.time,
                lambda a=cluster_action: a.apply(cluster),
            )
