"""Adapters that attach sans-I/O protocol state machines to the simulator.

:class:`ReplicaNode` is trivial — replicas are reactive.  :class:`ClientNode`
drives a client through a scripted sequence of operations, manages the
retransmission timer (the protocol's only liveness mechanism), records
history events, and reports per-operation metrics.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Sequence

from repro.core.batching import (
    BatchCoalescer,
    BatchEnvelope,
    expand_message,
    prevalidate_batch,
)
from repro.core.client import BftBcClient, OptimizedBftBcClient
from repro.core.messages import Message, message_wire_bytes
from repro.core.operations import Send
from repro.core.replica import BftBcReplica
from repro.core.timestamp import ZERO_TS
from repro.net.simnet import SimNetwork
from repro.sim.metrics import MetricsCollector, OperationSample
from repro.sim.recorder import HistoryRecorder
from repro.sim.scheduler import EventHandle, Scheduler

__all__ = ["ReplicaNode", "ClientNode", "ScriptStep"]

#: One scripted operation: ``("write", value)`` or ``("read", None)``.
ScriptStep = tuple[str, Any]

#: Default retransmission period, comfortably above typical simulated RTTs.
DEFAULT_RETRANSMIT_INTERVAL = 0.05


class ReplicaNode:
    """Wires a replica state machine into the simulated network.

    ``sign_delay`` models the CPU cost of one *foreground* public-key
    signature as virtual time: the reply is held back by
    ``sign_delay × (foreground signatures performed while handling)``.
    Background signatures (§3.3.2) are free by construction — that is the
    point of the optimization, and experiment E4 measures it.
    """

    def __init__(
        self,
        replica: BftBcReplica,
        network: SimNetwork,
        scheduler: Optional[Scheduler] = None,
        *,
        sign_delay: float = 0.0,
        replica_factory: Optional[Callable[[], BftBcReplica]] = None,
    ) -> None:
        self.replica = replica
        self.network = network
        self.scheduler = scheduler
        self.sign_delay = sign_delay
        #: Rebuilds a fresh (state-machine-only) replica on restart; the
        #: default works for any replica whose constructor is
        #: ``(node_id, config, store=...)``.
        self._replica_factory = replica_factory or (
            lambda: type(self.replica)(
                self.replica.node_id,
                self.replica.config,
                store=self.replica.store,
                instrumentation=self.replica.instrumentation,
            )
        )
        self.crashes = 0
        self.restarts = 0
        #: True while crashed (no audits run — the process is dead).
        self.down = False
        #: Corruption injections performed against this node (chaos).
        self.corruptions = 0
        network.register(replica.node_id, self._on_message)

    # -- crash / restart ----------------------------------------------------

    def crash(self) -> None:
        """Simulate a process crash: the network stops delivering to this
        node and the replica's store loses whatever a power cut would
        (everything for :class:`~repro.storage.MemoryStore`, the un-fsynced
        WAL tail for :class:`~repro.storage.FileLogStore`)."""
        self.network.crash(self.node_id)
        self.replica.store.crash()
        self.crashes += 1
        self.down = True

    def restart(self) -> None:
        """Bring the replica back: a *fresh* state machine is built around
        the surviving store and :meth:`~repro.core.replica.BftBcReplica.recover`
        rebuilds the Figure-2 state from snapshot + log before the network
        resumes delivery."""
        replica = self._replica_factory()
        replica.recover()
        self.replica = replica
        self.network.recover(self.node_id)
        self.restarts += 1
        self.down = False

    # -- corruption injection (chaos) ---------------------------------------

    def corrupt_wal(self, *, position: float = 0.5, flip: int = 0x01) -> None:
        """XOR one byte of the on-disk WAL (no-op on a volatile store).

        The live replica keeps serving from memory; the damage surfaces
        when a self-audit or restart replays the log and the record's
        integrity seal fails.
        """
        path = getattr(self.replica.store, "wal_path", None)
        if path is None or not path.exists():
            return
        size = path.stat().st_size
        if size == 0:
            return
        offset = min(int(size * position), size - 1)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            original = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([original[0] ^ flip]))
        self.corruptions += 1

    def corrupt_snapshot(self, *, keep: float = 0.5) -> None:
        """Truncate the on-disk snapshot (no-op on a volatile store).

        Short episodes usually have not compacted yet, so if no snapshot
        file exists one is forced first (from the live, consistent state —
        the same call ``maybe_compact`` would make) and then damaged; the
        fault models "the snapshot that existed rotted".
        """
        store = self.replica.store
        path = getattr(store, "snapshot_path", None)
        if path is None:
            return
        if (not path.exists() or path.stat().st_size == 0) and (
            store.snapshot_source is not None
        ):
            store.write_snapshot(store.snapshot_source())
        if not path.exists():
            return
        size = path.stat().st_size
        if size == 0:
            return
        with open(path, "r+b") as fh:
            fh.truncate(max(0, int(size * keep)))
        self.corruptions += 1

    def perturb_state(self, *, target: str = "data", seed: int = 0) -> None:
        """Mutate one live Figure-2 field, leaving the durable log intact.

        Models a memory fault; a later self-audit replays the store into a
        twin and the fingerprint mismatch quarantines the replica.
        """
        state = self.replica._state
        if target == "data":
            state._data = ("perturbed", self.node_id, seed)
        elif target == "write_ts":
            state._write_ts = ZERO_TS
        elif target == "plist":
            state.plist._clear_silent()
        else:
            raise ValueError(f"unknown perturb target {target!r}")
        self.corruptions += 1

    # -- self-stabilization loop --------------------------------------------

    def audit_and_repair(self) -> bool:
        """One tick of the periodic self-audit; returns True when clean.

        A healthy replica runs :meth:`~repro.core.replica.BftBcReplica.self_audit`;
        a quarantined one (whether this tick quarantined it or an earlier
        recovery did) gets its repair pulls pushed onto the network —
        :meth:`~repro.core.replica.BftBcReplica.begin_repair` on the first
        tick, retransmissions to unanswered peers on later ones.
        """
        if self.down:
            return True
        replica = self.replica
        clean = True
        if not replica.quarantined:
            clean = replica.self_audit()
        else:
            clean = False
        if replica.quarantined:
            if replica.repair.active:
                sends = replica.repair_retransmit()
            else:
                sends = replica.begin_repair()
            for send in sends:
                self.network.send(self.node_id, send.dest, send.message)
        return clean

    def _on_message(self, src: str, message: Message) -> None:
        """Handle one frame; a batch is unpacked and answered as one frame."""
        before = self.replica.stats.foreground_signs
        inners = expand_message(message)
        if len(inners) > 1:
            # Batch-aware replicas warm their verification memo in one
            # amortized pass before the per-message handlers run.
            prevalidate = getattr(self.replica, "prevalidate", None)
            if prevalidate is not None:
                prevalidate(inners)
        replies = [
            reply
            for inner in inners
            if (reply := self.replica.handle(src, inner)) is not None
        ]
        if not replies:
            return
        if len(replies) == 1:
            reply: Message = replies[0]
        else:
            reply = BatchEnvelope(
                payloads=tuple(message_wire_bytes(r) for r in replies)
            )
        delay = self.sign_delay * (self.replica.stats.foreground_signs - before)
        # Behavioural laggards (e.g. byzantine.DelayingReplica) advertise a
        # fixed per-reply delay via this marker attribute.
        delay += getattr(self.replica, "reply_delay", 0.0)
        if delay > 0 and self.scheduler is not None:
            self.scheduler.call_later(
                delay,
                lambda: self.network.send(self.replica.node_id, src, reply),
            )
        else:
            self.network.send(self.replica.node_id, src, reply)

    @property
    def node_id(self) -> str:
        return self.replica.node_id


class ClientNode:
    """Drives a correct client through a script of operations."""

    def __init__(
        self,
        client: BftBcClient,
        network: SimNetwork,
        scheduler: Scheduler,
        recorder: Optional[HistoryRecorder] = None,
        metrics: Optional[MetricsCollector] = None,
        retransmit_interval: float = DEFAULT_RETRANSMIT_INTERVAL,
        coalescer: Optional[BatchCoalescer] = None,
        retransmit_backoff: float = 1.0,
        retransmit_jitter: float = 0.0,
        retransmit_max_interval: Optional[float] = None,
    ) -> None:
        self.client = client
        self.network = network
        self.scheduler = scheduler
        self.recorder = recorder
        self.metrics = metrics
        self.retransmit_interval = retransmit_interval
        #: Exponential growth factor per unanswered retransmission; 1.0
        #: (the default) reproduces the historical fixed-period timer.
        self.retransmit_backoff = retransmit_backoff
        #: Jitter fraction: each delay is scaled by a uniform draw from
        #: ``[1 - jitter, 1 + jitter]`` so a fleet of clients that timed out
        #: together does not retransmit in lockstep forever.
        self.retransmit_jitter = retransmit_jitter
        self.retransmit_max_interval = retransmit_max_interval
        self._retransmit_attempts = 0
        # Seeded per node id: schedules stay deterministic run-to-run.
        self._retransmit_rng = random.Random(f"retransmit:{client.node_id}")
        #: Optional cross-object batching layer; single-object operations
        #: never share a destination within a round, so for this node the
        #: coalescer is a provable pass-through (see the differential tests).
        self.coalescer = coalescer
        #: ``(op kind, result)`` for every completed scripted operation —
        #: the committed timestamp for writes, the value for reads.
        self.results: list[tuple[str, Any]] = []
        self._script: list[ScriptStep] = []
        self._next_step = 0
        self._think_time = 0.0
        self._op_started_at = 0.0
        self._retransmit_handle: Optional[EventHandle] = None
        self._on_all_done: Optional[Callable[[], None]] = None
        self.done = True
        network.register(client.node_id, self._on_message)

    @property
    def node_id(self) -> str:
        return self.client.node_id

    # -- script execution -------------------------------------------------------

    def run_script(
        self,
        script: Sequence[ScriptStep],
        *,
        think_time: float = 0.0,
        start_delay: float = 0.0,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Schedule the client to execute ``script`` sequentially."""
        self._script = list(script)
        self._next_step = 0
        self._think_time = think_time
        self._on_all_done = on_done
        self.done = not self._script
        if self._script:
            self.scheduler.call_later(start_delay, self._start_next)

    def _start_next(self) -> None:
        if self._next_step >= len(self._script):
            self._complete_script()
            return
        kind, arg = self._script[self._next_step]
        self._next_step += 1
        self._op_started_at = self.scheduler.now
        self._retransmit_attempts = 0
        if self.recorder is not None:
            self.recorder.record_invocation(self.node_id, kind, arg)
        if kind == "write":
            sends = self.client.begin_write(arg)
        elif kind == "read":
            sends = self.client.begin_read()
        else:
            raise ValueError(f"unknown script step kind {kind!r}")
        self._send_all(sends)
        self._arm_retransmit()

    def _complete_script(self) -> None:
        self.done = True
        self._cancel_retransmit()
        if self._on_all_done is not None:
            self._on_all_done()

    # -- message plumbing ----------------------------------------------------

    def _send_all(self, sends: list[Send]) -> None:
        if self.coalescer is not None:
            sends = self.coalescer.coalesce(sends)
        for send in sends:
            self.network.send(self.node_id, send.dest, send.message)

    def _on_message(self, src: str, message: Message) -> None:
        was_busy = self.client.busy
        inners = expand_message(message)
        if len(inners) > 1:
            prevalidate_batch(self.client.config.verifier, inners)
        sends: list[Send] = []
        for inner in inners:
            sends.extend(self.client.deliver(src, inner))
        self._send_all(sends)
        if was_busy and not self.client.busy:
            self._on_op_complete()

    def _on_op_complete(self) -> None:
        self._cancel_retransmit()
        op = self.client.op
        assert op is not None
        self.results.append((op.op_name, op.result))
        latency = self.scheduler.now - self._op_started_at
        if self.recorder is not None:
            value = op.result if op.op_name == "read" else None
            self.recorder.record_response(self.node_id, value)
        if self.metrics is not None:
            fast = isinstance(self.client, OptimizedBftBcClient) and getattr(
                op, "fast_path", False
            )
            self.metrics.record(
                OperationSample(
                    client=self.node_id,
                    kind=op.op_name,
                    phases=op.phases,
                    latency=latency,
                    fast_path=fast,
                    fell_back=getattr(op, "fell_back", False),
                )
            )
        if self._next_step >= len(self._script):
            self._complete_script()
        else:
            self.scheduler.call_later(self._think_time, self._start_next)

    # -- retransmission -----------------------------------------------------

    def _arm_retransmit(self) -> None:
        self._cancel_retransmit()
        self._retransmit_handle = self.scheduler.call_later(
            self._retransmit_delay(), self._retransmit
        )

    def _retransmit_delay(self) -> float:
        """Next timer period: exponential backoff with deterministic jitter."""
        delay = self.retransmit_interval * (
            self.retransmit_backoff**self._retransmit_attempts
        )
        if self.retransmit_max_interval is not None:
            delay = min(delay, self.retransmit_max_interval)
        if self.retransmit_jitter:
            delay *= 1.0 + self.retransmit_jitter * (
                2.0 * self._retransmit_rng.random() - 1.0
            )
        return delay

    def _retransmit(self) -> None:
        if not self.client.busy:
            return
        self._retransmit_attempts += 1
        sends = self.client.retransmit()
        self._send_all(sends)
        if self.metrics is not None:
            self.metrics.retransmit_ticks += 1
        if self.client.busy:
            self._arm_retransmit()
        else:
            # The retransmit tick itself completed the operation (the
            # optimized protocol's fallback decision can fire here).
            self._on_op_complete()

    def _cancel_retransmit(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
            self._retransmit_handle = None
