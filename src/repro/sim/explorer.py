"""Systematic schedule exploration (bounded model checking of executions).

The randomized simulator samples delivery orders; this module *enumerates*
them.  A :class:`ScheduleExplorer` runs a set of sans-I/O clients against a
set of replicas with a reliable but **adversarially ordered** network: at
every step the scheduler chooses which pending message to deliver next, and
the explorer walks the resulting tree of executions depth-first up to a
state budget, invoking a property check on every completed execution.

Two reductions keep the tree tractable:

* deliveries are grouped per destination — messages to the *same* node form
  a FIFO queue (per-link FIFO), and the choice is only *which node* acts
  next, a classic partial-order reduction for actor systems;
* the explorer deduplicates choice frontiers by destination, not message
  identity.

This catches ordering bugs that random jitter may never hit: every way a
quorum can form, every interleaving of two clients' phases, etc.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.core.operations import Send

__all__ = ["ExplorationResult", "ScheduleExplorer"]


class ExplorationResult:
    """Aggregate outcome of an exploration run."""

    def __init__(self) -> None:
        self.executions = 0
        self.truncated = 0
        self.failures: list[tuple[tuple[str, ...], str]] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        return (
            f"{self.executions} complete executions explored, "
            f"{self.truncated} truncated, {len(self.failures)} failures"
        )


class ScheduleExplorer:
    """Enumerates delivery schedules over fresh system instances.

    Args:
        factory: builds a fresh system for each execution; returns
            ``(replicas, clients, kickoff)`` where ``replicas`` maps node id
            to a ``handle(sender, message)`` state machine, ``clients`` maps
            node id to a sans-I/O client, and ``kickoff`` starts every
            client operation and returns the initial traffic as a list of
            ``(source node id, Send)`` pairs.
        check: property evaluated on the finished system; returns an error
            string or None.  Receives ``(replicas, clients)``.
        max_executions: stop after this many complete executions.
        max_depth: abandon (count as truncated) any execution longer than
            this many deliveries — guards against livelock in exploration.
    """

    def __init__(
        self,
        factory: Callable[[], tuple[dict[str, Any], dict[str, Any], Callable[[], list[Send]]]],
        check: Callable[[dict[str, Any], dict[str, Any]], Optional[str]],
        *,
        max_executions: int = 2000,
        max_depth: int = 400,
    ) -> None:
        self.factory = factory
        self.check = check
        self.max_executions = max_executions
        self.max_depth = max_depth

    def run(self) -> ExplorationResult:
        """Explore schedules depth-first; returns the aggregated result."""
        result = ExplorationResult()
        self._explore(prefix=(), result=result)
        return result

    # -- internals ----------------------------------------------------------

    def _replay(self, prefix: tuple[str, ...]):
        """Build a fresh system and replay ``prefix`` (a list of destination
        choices); returns (replicas, clients, queues) at the choice point."""
        replicas, clients, kickoff = self.factory()
        queues: dict[str, deque] = {}
        # kickoff returns the initial traffic as (src, Send) pairs.
        for src, send in kickoff():
            queues.setdefault(send.dest, deque()).append((src, send.message))

        for dest in prefix:
            self._deliver_one(dest, replicas, clients, queues)
        return replicas, clients, queues

    def _deliver_one(self, dest: str, replicas, clients, queues) -> None:
        src, message = queues[dest].popleft()
        if not queues[dest]:
            del queues[dest]
        if dest in replicas:
            reply = replicas[dest].handle(src, message)
            if reply is not None:
                queues.setdefault(src, deque()).append((dest, reply))
        elif dest in clients:
            sends = clients[dest].deliver(src, message)
            for send in sends:
                queues.setdefault(send.dest, deque()).append((dest, send.message))

    def _explore(self, prefix: tuple[str, ...], result: ExplorationResult) -> None:
        if result.executions >= self.max_executions:
            return
        if len(prefix) > self.max_depth:
            result.truncated += 1
            return
        replicas, clients, queues = self._replay(prefix)
        if not queues:
            # Quiescent: a complete execution.
            result.executions += 1
            error = self.check(replicas, clients)
            if error is not None:
                result.failures.append((prefix, error))
            return
        for dest in sorted(queues):
            self._explore(prefix + (dest,), result)
            if result.executions >= self.max_executions:
                return
