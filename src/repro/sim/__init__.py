"""Deterministic simulation harness.

Virtual-time scheduler, node adapters, workload generation, fault schedules,
metrics, history recording, and the cluster runner used by every test,
example, and benchmark.
"""

from repro.sim.explorer import ExplorationResult, ScheduleExplorer
from repro.sim.faults import ClusterFaultAction, FaultAction, FaultSchedule
from repro.sim.metrics import MetricsCollector, OperationSample, Summary
from repro.sim.multi_node import (
    MultiObjectClientNode,
    MultiObjectReplicaNode,
    MultiScriptStep,
)
from repro.sim.nodes import ClientNode, ReplicaNode, ScriptStep
from repro.sim.recorder import HistoryRecorder
from repro.sim.runner import Cluster, ClusterOptions, VARIANTS, build_cluster
from repro.sim.scheduler import EventHandle, Scheduler
from repro.sim.shard_cluster import (
    ShardCluster,
    ShardClusterOptions,
    ShardRouterNode,
    build_shard_cluster,
)
from repro.sim.tracing import MessageTrace, TraceEvent
from repro.sim.workload import (
    alternating_script,
    make_scripts,
    mixed_script,
    read_script,
    value_for,
    write_script,
)

__all__ = [
    "Scheduler",
    "EventHandle",
    "SimulationError",
    "ClientNode",
    "ReplicaNode",
    "ScriptStep",
    "MultiObjectClientNode",
    "MultiObjectReplicaNode",
    "MultiScriptStep",
    "HistoryRecorder",
    "MetricsCollector",
    "OperationSample",
    "Summary",
    "FaultSchedule",
    "FaultAction",
    "ClusterFaultAction",
    "ShardCluster",
    "ShardClusterOptions",
    "ShardRouterNode",
    "build_shard_cluster",
    "ScheduleExplorer",
    "ExplorationResult",
    "MessageTrace",
    "TraceEvent",
    "Cluster",
    "ClusterOptions",
    "build_cluster",
    "VARIANTS",
    "value_for",
    "write_script",
    "read_script",
    "alternating_script",
    "mixed_script",
    "make_scripts",
]

from repro.errors import SimulationError  # noqa: E402  (re-export for convenience)
