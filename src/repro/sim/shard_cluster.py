"""Multi-group (sharded) cluster harness on the deterministic simulator.

Generalises :mod:`repro.sim.multi_node` from one replica group to many:
``shards`` independent 3f+1 groups share one :class:`SimNetwork` and one
virtual clock, objects are placed by a consistent-hash ring, and clients
are :class:`~repro.shard.router.ShardRouter` instances driven through
``(obj, kind, value)`` scripts by :class:`ShardRouterNode`.

The harness also owns the *operational* side that no protocol role can:
:meth:`ShardCluster.start_reconfiguration` spawns a joining replica node
(which bootstraps by state transfer from the old members), runs a
:class:`~repro.shard.reconfig.Reconfigurator` client against the old
membership, and lets the epoch install race whatever client traffic is in
flight — exactly the scenario the chaos layer's epoch-agreement oracle
judges.

Replica nodes take an optional ``service_delay``: each received frame
occupies the replica for that much virtual time (a single-server queue),
so aggregate throughput is capacity-limited per group and grows with the
number of shards — the effect benchmark E19 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.client import BftBcClient, OptimizedBftBcClient
from repro.core.config import SystemConfig, Variant, make_system
from repro.core.messages import Message
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.errors import OperationFailedError, SimulationError
from repro.net.simnet import LinkProfile, SimNetwork
from repro.shard.directory import ShardConfig, ShardDirectory
from repro.shard.reconfig import Reconfigurator
from repro.shard.replica import ShardReplica
from repro.shard.ring import HashRing
from repro.shard.router import ShardRouter
from repro.sim.faults import FaultSchedule
from repro.sim.multi_node import MultiScriptStep
from repro.sim.scheduler import EventHandle, Scheduler
from repro.spec.histories import History, Invocation, Response
from repro.storage import ReplicaStore

__all__ = [
    "ShardClusterOptions",
    "ShardCluster",
    "ShardReplicaNode",
    "ShardRouterNode",
    "ReconfiguratorNode",
    "build_shard_cluster",
]

RETRANSMIT_INTERVAL = 0.05


@dataclass
class ShardClusterOptions:
    """Knobs for one sharded deployment."""

    shards: int = 2
    f: int = 1
    variant: Variant = Variant.BASE
    scheme: str = "hmac"
    seed: int = 0
    profile: LinkProfile = field(default_factory=LinkProfile.reliable)
    vnodes: int = 32
    #: Seconds the superseded epoch stays serviceable after an install.
    handoff: float = 0.5
    #: Virtual-time service cost per frame at a replica (0 = infinitely
    #: fast replicas; set > 0 to model per-group capacity).
    service_delay: float = 0.0
    retransmit_interval: float = RETRANSMIT_INTERVAL
    #: ``(node_id, obj) -> ReplicaStore`` for durable per-object state;
    #: ``None`` keeps the in-memory default.
    store_factory: Optional[Callable[[str, str], ReplicaStore]] = None

    def __post_init__(self) -> None:
        try:
            self.variant = Variant.coerce(self.variant)
        except Exception:
            raise SimulationError(f"unknown variant {self.variant!r}") from None
        if self.shards < 1:
            raise SimulationError(f"need at least one shard, got {self.shards}")


def shard_id(index: int) -> str:
    return f"shard:{index}"


def member_id(shard_index: int, replica_index: int) -> str:
    return f"replica:s{shard_index}n{replica_index}"


class ShardReplicaNode:
    """Wires one :class:`ShardReplica` into the simulated network."""

    def __init__(
        self,
        replica: ShardReplica,
        network: SimNetwork,
        scheduler: Scheduler,
        *,
        service_delay: float = 0.0,
        retransmit_interval: float = RETRANSMIT_INTERVAL,
    ) -> None:
        self.replica = replica
        self.network = network
        self.scheduler = scheduler
        self.service_delay = service_delay
        self.retransmit_interval = retransmit_interval
        self.crashed = False
        self._busy_until = 0.0
        network.register(replica.node_id, self._on_message)

    @property
    def node_id(self) -> str:
        return self.replica.node_id

    def _on_message(self, src: str, message: Message) -> None:
        if self.crashed:
            return
        if self.service_delay <= 0:
            self._process(src, message)
            return
        # Single-server queue: each frame occupies the replica for
        # ``service_delay`` of virtual time, starting when the CPU frees up.
        start = max(self.scheduler.now, self._busy_until)
        self._busy_until = start + self.service_delay
        self.scheduler.call_at(
            self._busy_until, lambda: self._process(src, message)
        )

    def _process(self, src: str, message: Message) -> None:
        if self.crashed:
            return
        reply = self.replica.handle(src, message)
        if reply is not None:
            self.network.send(self.node_id, src, reply)

    def crash(self) -> None:
        """Stop the node for good (the replace-a-dead-replica scenario)."""
        self.crashed = True
        self.network.crash(self.node_id)

    # -- bootstrap (joining replicas only) ---------------------------------

    def start_bootstrap(self) -> None:
        self._send_all(self.replica.begin_bootstrap())
        self.scheduler.call_later(self.retransmit_interval, self._boot_tick)

    def _boot_tick(self) -> None:
        if self.crashed or self.replica.ready:
            return
        self._send_all(self.replica.bootstrap_retransmit())
        self.scheduler.call_later(self.retransmit_interval, self._boot_tick)

    def _send_all(self, sends) -> None:
        for send in sends:
            self.network.send(self.node_id, send.dest, send.message)


class ShardRouterNode:
    """Drives a :class:`ShardRouter` through a multi-object script.

    The same contract as
    :class:`~repro.sim.multi_node.MultiObjectClientNode`; epoch changes
    need no driver support (the router migrates in-flight operations
    itself), so the node merely counts them for the episode stats.
    """

    def __init__(
        self,
        router: ShardRouter,
        network: SimNetwork,
        scheduler: Scheduler,
        *,
        max_in_flight: int = 4,
        record_history: bool = False,
        retransmit_interval: float = RETRANSMIT_INTERVAL,
    ) -> None:
        self.router = router
        self.network = network
        self.scheduler = scheduler
        self.max_in_flight = max_in_flight
        self.retransmit_interval = retransmit_interval
        self.results: list[tuple[MultiScriptStep, Any]] = []
        self.done = True
        self.histories: dict[str, History] = {}
        self.epoch_changes = 0
        self._record = record_history
        self._pending: list[MultiScriptStep] = []
        self._in_flight: dict[str, MultiScriptStep] = {}
        self._retransmit_handle: Optional[EventHandle] = None
        router.on_epoch_change = self._on_epoch_change
        network.register(router.node_id, self._on_message)

    @property
    def node_id(self) -> str:
        return self.router.node_id

    def run_script(self, script: Sequence[MultiScriptStep]) -> None:
        self._pending = list(script)
        self.done = not self._pending
        if self._pending:
            self.scheduler.call_later(0.0, self._dispatch)
            self._arm_retransmit()

    # -- scheduling --------------------------------------------------------

    def _begin(self, step: MultiScriptStep) -> list:
        obj, kind, value = step
        if kind == "write":
            return self.router.begin_write(obj, value)
        if kind == "read":
            return self.router.begin_read(obj)
        raise ValueError(f"unknown step kind {kind!r}")

    def _dispatch(self) -> None:
        round_sends = []
        index = 0
        while (
            index < len(self._pending)
            and len(self._in_flight) < self.max_in_flight
        ):
            obj, kind, value = self._pending[index]
            if obj in self._in_flight:
                index += 1
                continue
            step = self._pending.pop(index)
            self._in_flight[obj] = step
            if self._record:
                self.histories.setdefault(obj, History()).append(
                    Invocation(
                        client=self.node_id,
                        obj=obj,
                        op=kind,
                        arg=value,
                        time=self.scheduler.now,
                    )
                )
            round_sends.extend(self._begin(step))
        self._send_all(round_sends)

    def _on_epoch_change(self, shard: str) -> None:
        self.epoch_changes += 1

    def _on_message(self, src: str, message: Message) -> None:
        self._send_all(self.router.deliver(src, message))
        completed = [
            obj for obj in list(self._in_flight) if not self.router.busy(obj)
        ]
        for obj in completed:
            step = self._in_flight.pop(obj)
            result = self.router.result(obj)
            self.results.append((step, result))
            if self._record:
                value = result if step[1] == "read" else None
                self.histories.setdefault(obj, History()).append(
                    Response(
                        client=self.node_id,
                        obj=obj,
                        value=value,
                        time=self.scheduler.now,
                    )
                )
        if completed:
            self._dispatch()
        if not self._pending and not self._in_flight:
            self.done = True
            self._cancel_retransmit()

    def _send_all(self, sends) -> None:
        for send in sends:
            self.network.send(self.node_id, send.dest, send.message)

    def _arm_retransmit(self) -> None:
        self._retransmit_handle = self.scheduler.call_later(
            self.retransmit_interval, self._retransmit
        )

    def _retransmit(self) -> None:
        if self.done:
            return
        self._send_all(self.router.retransmit())
        self._arm_retransmit()

    def _cancel_retransmit(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
            self._retransmit_handle = None


class ReconfiguratorNode:
    """Runs one :class:`Reconfigurator` over the simulated network.

    Waits (polling the virtual clock) until the joining replica finished
    its state transfer, then drives the sign/install phases with periodic
    retransmission until the new epoch is durable.
    """

    def __init__(
        self,
        reconfigurator: Reconfigurator,
        network: SimNetwork,
        scheduler: Scheduler,
        *,
        remove: str,
        add: str,
        joiner: Optional[ShardReplicaNode] = None,
        retransmit_interval: float = RETRANSMIT_INTERVAL,
    ) -> None:
        self.reconfigurator = reconfigurator
        self.network = network
        self.scheduler = scheduler
        self.remove = remove
        self.add = add
        self.joiner = joiner
        self.retransmit_interval = retransmit_interval
        network.register(reconfigurator.node_id, self._on_message)

    @property
    def node_id(self) -> str:
        return self.reconfigurator.node_id

    @property
    def done(self) -> bool:
        return self.reconfigurator.done

    def start(self) -> None:
        self.scheduler.call_later(0.0, self._tick)

    def _on_message(self, src: str, message: Message) -> None:
        self._send_all(self.reconfigurator.deliver(src, message))

    def _tick(self) -> None:
        if self.done:
            return
        if self.reconfigurator.phase == "idle":
            if self.joiner is None or self.joiner.replica.ready:
                self._send_all(
                    self.reconfigurator.begin_replace(self.remove, self.add)
                )
        else:
            self._send_all(self.reconfigurator.retransmit())
        self.scheduler.call_later(self.retransmit_interval, self._tick)

    def _send_all(self, sends) -> None:
        for send in sends:
            self.network.send(self.node_id, send.dest, send.message)


class ShardCluster:
    """A fully wired sharded deployment on the deterministic simulator."""

    def __init__(self, options: ShardClusterOptions) -> None:
        self.options = options
        self.scheduler = Scheduler()
        self.network = SimNetwork(
            self.scheduler, profile=options.profile, seed=options.seed
        )
        #: Template carrying the shared PKI, scheme, and protocol flags;
        #: every role derives its per-shard config from this via
        #: ``dataclasses.replace``.
        self.template: SystemConfig = make_system(
            options.f,
            scheme=options.scheme,
            seed=b"shard-cluster-seed-%d" % options.seed,
        )
        self.shard_ids = tuple(shard_id(i) for i in range(options.shards))
        self.ring = HashRing(self.shard_ids, vnodes=options.vnodes)
        genesis: dict[str, ShardConfig] = {}
        for s in range(options.shards):
            members = tuple(
                member_id(s, r) for r in range(3 * options.f + 1)
            )
            for member in members:
                self.template.registry.register(member)
            genesis[shard_id(s)] = ShardConfig(
                shard=shard_id(s), epoch=0, members=members, f=options.f
            )
        self.genesis = genesis
        #: The harness's own bookkeeping directory; reconfigurators write
        #: through it, so it always holds the newest installed chain.
        self.directory = ShardDirectory(genesis, self.template.scheme)
        self.replica_nodes: dict[str, ShardReplicaNode] = {}
        self.routers: dict[str, ShardRouterNode] = {}
        self.reconfigurations: list[ReconfiguratorNode] = []
        self._reconfig_count = 0
        for shard, config in genesis.items():
            for member in config.members:
                self._spawn_replica(member, shard)

    # -- construction ------------------------------------------------------

    def _replica_class(self) -> type[BftBcReplica]:
        if self.options.variant == "optimized":
            return OptimizedBftBcReplica
        return BftBcReplica

    def _client_class(self) -> type[BftBcClient]:
        if self.options.variant == "optimized":
            return OptimizedBftBcClient
        return BftBcClient

    def _fresh_directory(self) -> ShardDirectory:
        """A fresh verified directory caught up to the installed chain."""
        directory = ShardDirectory(self.genesis, self.template.scheme)
        for sid in self.shard_ids:
            directory.install_chain(sid, self.directory.chain(sid))
        return directory

    def _spawn_replica(
        self,
        node_id: str,
        shard: str,
        *,
        bootstrap_from: Optional[ShardConfig] = None,
    ) -> ShardReplicaNode:
        store_factory = None
        if self.options.store_factory is not None:
            outer = self.options.store_factory
            store_factory = lambda obj, n=node_id: outer(n, obj)  # noqa: E731
        replica = ShardReplica(
            node_id,
            shard,
            self._fresh_directory(),
            self.template,
            replica_cls=self._replica_class(),
            store_factory=store_factory,
            clock=lambda: self.scheduler.now,
            handoff=self.options.handoff,
            bootstrap_from=bootstrap_from,
        )
        node = ShardReplicaNode(
            replica,
            self.network,
            self.scheduler,
            service_delay=self.options.service_delay,
            retransmit_interval=self.options.retransmit_interval,
        )
        self.replica_nodes[node_id] = node
        return node

    def add_router(
        self,
        name: str,
        *,
        max_in_flight: int = 4,
        record_history: bool = True,
    ) -> ShardRouterNode:
        self.template.registry.register(f"client:{name}")
        router = ShardRouter(
            f"client:{name}",
            self.ring,
            self._fresh_directory(),
            self.template,
            client_cls=self._client_class(),
        )
        node = ShardRouterNode(
            router,
            self.network,
            self.scheduler,
            max_in_flight=max_in_flight,
            record_history=record_history,
            retransmit_interval=self.options.retransmit_interval,
        )
        self.routers[router.node_id] = node
        return node

    # -- reconfiguration ---------------------------------------------------

    def start_reconfiguration(
        self, shard: str, *, remove: str, add: str, crash_old: bool = False
    ) -> ReconfiguratorNode:
        """Replace ``remove`` with ``add`` in ``shard`` under live traffic."""
        current = self.directory.config(shard)
        if remove not in current.members:
            raise SimulationError(f"{remove!r} not a member of {shard!r}")
        if crash_old:
            self.replica_nodes[remove].crash()
        self.template.registry.register(add)
        joiner = self._spawn_replica(
            add, shard, bootstrap_from=current
        )
        joiner.start_bootstrap()
        self._reconfig_count += 1
        reconfigurator = Reconfigurator(
            f"admin:{self._reconfig_count}",
            shard,
            self.directory,
            self.template,
            revoke_removed=crash_old,
        )
        node = ReconfiguratorNode(
            reconfigurator,
            self.network,
            self.scheduler,
            remove=remove,
            add=add,
            joiner=joiner,
            retransmit_interval=self.options.retransmit_interval,
        )
        self.reconfigurations.append(node)
        node.start()
        return node

    # -- execution ---------------------------------------------------------

    def install_faults(self, schedule: FaultSchedule) -> None:
        schedule.install(
            self.scheduler, self.network, nodes=self.replica_nodes, cluster=self
        )

    def run_scripts(
        self,
        scripts: dict[str, Sequence[MultiScriptStep]],
        *,
        max_in_flight: int = 4,
        max_time: float = 300.0,
    ) -> None:
        for name, script in scripts.items():
            node = self.routers.get(f"client:{name}") or self.add_router(
                name, max_in_flight=max_in_flight
            )
            node.run_script(script)
        self.run(max_time=max_time)

    def _all_done(self) -> bool:
        return all(node.done for node in self.routers.values()) and all(
            node.done for node in self.reconfigurations
        )

    def run(self, *, max_time: float = 300.0, max_events: int = 5_000_000) -> None:
        """Run until every script and reconfiguration completes.

        Raises:
            OperationFailedError: when the time or event budget runs out
                first — liveness failed under this schedule.
        """
        self.scheduler.run(
            until=self.scheduler.now + max_time,
            max_events=max_events,
            stop_when=self._all_done,
        )
        if not self._all_done():
            busy = [n for n, node in self.routers.items() if not node.done]
            stuck = [
                f"{node.node_id}({node.reconfigurator.phase})"
                for node in self.reconfigurations
                if not node.done
            ]
            raise OperationFailedError(
                f"shard workload incomplete after {max_time}s virtual time; "
                f"busy routers: {busy}; stuck reconfigurations: {stuck}"
            )

    def settle(self, duration: float = 1.0) -> None:
        """Advance virtual time by ``duration`` (processing pending events).

        A sentinel no-op event pins the end time: the scheduler clock only
        moves when events fire, so an empty queue would otherwise leave
        ``now`` — and clock-based handoff windows — frozen.
        """
        deadline = self.scheduler.now + duration
        self.scheduler.call_at(deadline, lambda: None)
        self.scheduler.run(until=deadline)

    # -- results -----------------------------------------------------------

    def merged_histories(self) -> dict[str, History]:
        """Per-object histories merged across every router, time-sorted."""
        merged: dict[str, list] = {}
        for node in self.routers.values():
            for obj, history in node.histories.items():
                merged.setdefault(obj, []).extend(history.events)
        out: dict[str, History] = {}
        for obj, events in merged.items():
            history = History()
            history.events = sorted(events, key=lambda e: e.time)
            out[obj] = history
        return out

    def live_members(self, shard: str) -> list[ShardReplica]:
        """The current members' live state machines (crashed ones excluded)."""
        return [
            self.replica_nodes[member].replica
            for member in self.directory.config(shard).members
            if member in self.replica_nodes
            and not self.replica_nodes[member].crashed
        ]

    def total_ops(self) -> int:
        return sum(len(node.results) for node in self.routers.values())


def build_shard_cluster(
    options: Optional[ShardClusterOptions] = None, **kwargs
) -> ShardCluster:
    """Build a sharded cluster from options or keyword overrides."""
    if options is None:
        options = ShardClusterOptions(**kwargs)
    elif kwargs:
        raise SimulationError("pass either options or keyword overrides, not both")
    return ShardCluster(options)
