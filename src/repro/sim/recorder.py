"""Recording verifiable histories at the client boundary.

The recorder produces the §4.1 event stream: invocations and responses of
*correct* clients, plus stop events of faulty ones.  Byzantine clients do not
get invocation/response events (their behaviour has no specification); their
effects enter the history only through what correct readers observe — which
is exactly how the correctness conditions are stated.
"""

from __future__ import annotations

from typing import Any

from repro.sim.scheduler import Scheduler
from repro.spec.histories import History, Invocation, Response, StopEvent

__all__ = ["HistoryRecorder"]


class HistoryRecorder:
    """Appends timestamped events to a :class:`~repro.spec.histories.History`."""

    def __init__(self, scheduler: Scheduler, obj: str = "x") -> None:
        self._scheduler = scheduler
        self.obj = obj
        self.history = History()

    def record_invocation(self, client: str, op: str, arg: Any = None) -> None:
        self.history.append(
            Invocation(
                client=client,
                obj=self.obj,
                op=op,
                arg=arg,
                time=self._scheduler.now,
            )
        )

    def record_response(self, client: str, value: Any = None) -> None:
        self.history.append(
            Response(
                client=client,
                obj=self.obj,
                value=value,
                time=self._scheduler.now,
            )
        )

    def record_stop(self, client: str) -> None:
        """Record that a faulty client has been removed from operation."""
        self.history.append(StopEvent(client=client, time=self._scheduler.now))
