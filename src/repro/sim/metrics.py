"""Operation-level metrics collected during simulation runs.

The benchmark harness reports exactly the quantities the paper's evaluation
discusses: phases per operation (E1), messages and bytes per operation (E2),
latency in network round-trips, fast-path rates for the optimized protocol
(E10), signature counts (E4), verification-cache hit rates (E4d), and the
wire fast path's encode-cache and batching counters (E15).
"""

from __future__ import annotations

import math
import warnings
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.batching import BatchStats
from repro.core.messages import WireCacheStats
from repro.core.verification import VerificationStats
from repro.obs.instrumentation import Instrumentation
from repro.storage import StorageStats

__all__ = ["OperationSample", "Summary", "MetricsCollector"]


@dataclass(frozen=True)
class OperationSample:
    """One completed client operation."""

    client: str
    kind: str  # "read" | "write"
    phases: int
    latency: float
    fast_path: bool = False
    fell_back: bool = False


@dataclass(frozen=True)
class Summary:
    """Summary statistics over a list of samples."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "Summary":
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, maximum=0.0)
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            maximum=ordered[-1],
        )


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class MetricsCollector:
    """Accumulates operation samples for one simulation run.

    Stats sources (verification, wire cache, batching, storage) live on the
    collector's :class:`~repro.obs.Instrumentation` handle; the old
    ``attach_*`` methods survive as deprecated shims that delegate there —
    and, unlike the historical behaviour, a second attach now raises instead
    of silently discarding the first source's counters.
    """

    samples: list[OperationSample] = field(default_factory=list)
    retransmit_ticks: int = 0
    #: The stats-source registry (and span/histogram sink) for this run.
    #: The cluster harness shares its own handle; a bare collector gets a
    #: private disabled one, which still registers sources.
    instrumentation: Instrumentation = field(default_factory=Instrumentation.off)

    @property
    def verification(self) -> Optional[VerificationStats]:
        """Counters of the deployment's shared verification pipeline."""
        return self.instrumentation.source("verification")

    @property
    def wire_cache(self) -> Optional[WireCacheStats]:
        """Encode-once wire-cache counters (process-wide)."""
        return self.instrumentation.source("wire_cache")

    @property
    def batching(self) -> Optional[BatchStats]:
        """Cross-object batching counters, when the deployment batches."""
        return self.instrumentation.source("batching")

    @property
    def storage(self) -> dict[str, StorageStats]:
        """Per-replica storage counters (log appends, fsyncs, snapshots)."""
        return self.instrumentation.source("storage") or {}

    def record(self, sample: OperationSample) -> None:
        self.samples.append(sample)

    def _deprecated_attach(self, name: str) -> None:
        warnings.warn(
            f"MetricsCollector.attach_{name} is deprecated; attach sources "
            f"through the Instrumentation handle instead "
            f"(metrics.instrumentation.attach_{name})",
            DeprecationWarning,
            stacklevel=3,
        )

    def attach_verification(self, stats: VerificationStats) -> None:
        """Deprecated shim; raises on double attach (see class docstring)."""
        self._deprecated_attach("verification")
        self.instrumentation.attach_verification(stats)

    def attach_wire_cache(self, stats: WireCacheStats) -> None:
        """Deprecated shim; raises on double attach (see class docstring)."""
        self._deprecated_attach("wire_cache")
        self.instrumentation.attach_wire_cache(stats)

    def attach_batching(self, stats: BatchStats) -> None:
        """Deprecated shim; raises on double attach (see class docstring)."""
        self._deprecated_attach("batching")
        self.instrumentation.attach_batching(stats)

    def attach_storage(self, stats_by_replica: dict[str, StorageStats]) -> None:
        """Deprecated shim; raises on per-replica double attach."""
        self._deprecated_attach("storage")
        self.instrumentation.attach_storage(stats_by_replica)

    def verification_hit_rate(self) -> float:
        """Signature-memo hit rate of the attached verifier (0 when absent)."""
        if self.verification is None:
            return 0.0
        return self.verification.signature_hit_rate

    def verified_signatures_per_op(self) -> float:
        """Backend signature verifications per completed operation (E4d)."""
        if self.verification is None or not self.samples:
            return 0.0
        return self.verification.backend_verifies / len(self.samples)

    # -- wire fast path (E15) --------------------------------------------

    def encode_cache_hit_rate(self) -> float:
        """Fraction of wire serialisations served from the encode-once cache."""
        if self.wire_cache is None:
            return 0.0
        return self.wire_cache.hit_rate

    def encodes_per_op(self) -> float:
        """Actual canonical encodes of wire frames per completed operation."""
        if self.wire_cache is None or not self.samples:
            return 0.0
        return self.wire_cache.misses / len(self.samples)

    def batch_size_histogram(self) -> Counter:
        """batch size -> count of emitted batches (empty when not batching)."""
        if self.batching is None:
            return Counter()
        return Counter(self.batching.batch_sizes)

    def frames_saved(self) -> int:
        """Wire frames avoided by cross-object coalescing."""
        if self.batching is None:
            return 0
        return self.batching.frames_saved

    # -- storage / durability (E16) ---------------------------------------

    def storage_totals(self) -> StorageStats:
        """Sum of every attached replica's storage counters."""
        total = StorageStats()
        for stats in self.storage.values():
            total.add(stats)
        return total

    def log_appends_per_op(self) -> float:
        """WAL records appended (across all replicas) per completed op."""
        if not self.storage or not self.samples:
            return 0.0
        return self.storage_totals().appends / len(self.samples)

    def fsyncs_per_op(self) -> float:
        """fsync calls (across all replicas) per completed op."""
        if not self.storage or not self.samples:
            return 0.0
        return self.storage_totals().fsyncs / len(self.samples)

    # -- views ----------------------------------------------------------------

    def by_kind(self, kind: str) -> list[OperationSample]:
        return [s for s in self.samples if s.kind == kind]

    def phase_histogram(self, kind: Optional[str] = None) -> Counter:
        """phases -> number of operations (experiment E1's row data)."""
        selected = self.samples if kind is None else self.by_kind(kind)
        return Counter(s.phases for s in selected)

    def latency_summary(self, kind: Optional[str] = None) -> Summary:
        selected = self.samples if kind is None else self.by_kind(kind)
        return Summary.of([s.latency for s in selected])

    def phases_summary(self, kind: Optional[str] = None) -> Summary:
        selected = self.samples if kind is None else self.by_kind(kind)
        return Summary.of([float(s.phases) for s in selected])

    def fast_path_rate(self) -> float:
        """Fraction of writes that skipped the explicit phase 2 (E10)."""
        writes = self.by_kind("write")
        if not writes:
            return 0.0
        return sum(1 for s in writes if s.fast_path) / len(writes)

    def fallback_rate(self) -> float:
        """Fraction of writes that abandoned the fast path for the signed
        protocol (the fastpath variant's E20 counterpart to E10)."""
        writes = self.by_kind("write")
        if not writes:
            return 0.0
        return sum(1 for s in writes if s.fell_back) / len(writes)

    def per_client_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for sample in self.samples:
            counts[sample.client] += 1
        return dict(counts)

    @property
    def operations(self) -> int:
        return len(self.samples)
