"""Deterministic discrete-event scheduler (virtual time).

The whole simulation — network delays, retransmission timers, node
processing — runs on one of these.  Events fire in (time, insertion-order)
order, so a run is fully determined by the seed used by the components that
schedule events.  Virtual time makes latency measurements exact and lets a
"10 second" experiment finish in milliseconds of wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

__all__ = ["EventHandle", "Scheduler"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.call_later`; supports cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.time


class Scheduler:
    """A virtual-time event loop."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed = 0

    def call_later(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = _Event(time=self.now + delay, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_at(self, when: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        event = _Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event; return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.action()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until the queue drains or a limit is reached.

        Args:
            until: stop once virtual time would exceed this.
            max_events: stop after this many events (guards runaway loops).
            stop_when: predicate checked after every event.
        """
        processed = 0
        while self._queue:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and processed >= max_events:
                return
            # Peek for the time bound without disturbing cancelled entries.
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                self.now = until
                return
            if not self.step():
                return
            processed += 1

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        remaining = sum(1 for e in self._queue if not e.cancelled)
        if remaining:
            raise SimulationError(
                f"run_until_idle hit the {max_events}-event bound with "
                f"{remaining} events still queued"
            )
