"""Deterministic discrete-event scheduler (virtual time).

The whole simulation — network delays, retransmission timers, node
processing — runs on one of these.  Events fire in (time, insertion-order)
order, so a run is fully determined by the seed used by the components that
schedule events.  Virtual time makes latency measurements exact and lets a
"10 second" experiment finish in milliseconds of wall-clock time.

Cancellation is lazy: :meth:`EventHandle.cancel` marks the entry and the
queue skips it on pop.  Long runs with heavy timer churn (every operation
arms and cancels a retransmission timer) would otherwise grow the heap
without bound, so the scheduler compacts — filters the dead entries and
re-heapifies — once they outnumber the live ones (see :meth:`_maybe_compact`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

__all__ = ["EventHandle", "Scheduler"]

#: Below this queue size compaction is never worth the re-heapify; the
#: constant-factor bookkeeping would dominate.
_COMPACT_MIN_QUEUE = 64


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    #: Set once the event has fired (left the queue), so cancelling a stale
    #: handle afterwards cannot skew the scheduler's cancelled_pending count.
    done: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.call_later`; supports cancellation."""

    def __init__(self, event: _Event, scheduler: "Scheduler") -> None:
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        if not self._event.cancelled and not self._event.done:
            self._event.cancelled = True
            self._scheduler._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.time


class Scheduler:
    """A virtual-time event loop."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed = 0
        #: Cancelled entries still sitting in the heap.
        self.cancelled_pending = 0
        #: Times the heap was compacted (filter + re-heapify).
        self.compactions = 0

    def call_later(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = _Event(time=self.now + delay, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def call_at(self, when: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        event = _Event(time=when, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def live_pending(self) -> int:
        """Number of queued events that have not been cancelled."""
        return len(self._queue) - self.cancelled_pending

    # -- cancellation bookkeeping -----------------------------------------

    def _on_cancel(self) -> None:
        self.cancelled_pending += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Drop cancelled entries once they outnumber the live ones.

        Each compaction is O(live) and at least halves the queue, so the
        amortised cost per cancellation is O(1) and heap size stays within a
        constant factor of the live event count.
        """
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self.cancelled_pending > len(self._queue) // 2
        ):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self.cancelled_pending = 0
            self.compactions += 1

    def _pop_cancelled(self) -> None:
        """Drop the cancelled entry at the heap root."""
        heapq.heappop(self._queue)
        self.cancelled_pending -= 1

    def step(self) -> bool:
        """Run the next event; return False if the queue is empty."""
        while self._queue:
            if self._queue[0].cancelled:
                self._pop_cancelled()
                continue
            event = heapq.heappop(self._queue)
            event.done = True
            self.now = event.time
            self.events_processed += 1
            event.action()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until the queue drains or a limit is reached.

        Args:
            until: stop once virtual time would exceed this.
            max_events: stop after this many events (guards runaway loops).
            stop_when: predicate checked after every event.
        """
        processed = 0
        while self._queue:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and processed >= max_events:
                return
            # Peek for the time bound without disturbing cancelled entries.
            next_event = self._queue[0]
            if next_event.cancelled:
                self._pop_cancelled()
                continue
            if until is not None and next_event.time > until:
                self.now = until
                return
            if not self.step():
                return
            processed += 1

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        remaining = sum(1 for e in self._queue if not e.cancelled)
        if remaining:
            raise SimulationError(
                f"run_until_idle hit the {max_events}-event bound with "
                f"{remaining} events still queued"
            )
