"""Histories, verifiable histories, and well-formedness (§4.1).

An execution is modelled as a sequence of events: operation invocations,
matching responses, and ``stop`` events of faulty clients.  A *verifiable
history* contains the invocations/responses of **correct** clients plus the
stop events of faulty ones — we cannot model what a Byzantine process "does",
only what correct processes observed and when faulty ones were cut off.

The recorder tags events with the virtual times at which they occurred so the
checkers can derive the real-time partial order ``<H`` (``o0 <H o1`` iff
``rsp(o0)`` precedes ``inv(o1)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.errors import HistoryError

__all__ = [
    "Invocation",
    "Response",
    "StopEvent",
    "Event",
    "OperationRecord",
    "History",
]


@dataclass(frozen=True)
class Invocation:
    """``<c : x.op>`` — client ``c`` invokes ``op`` on object ``x``."""

    client: str
    obj: str
    op: str
    arg: Any
    time: float


@dataclass(frozen=True)
class Response:
    """``<c : x.rtval>`` — the response matching ``c``'s open invocation."""

    client: str
    obj: str
    value: Any
    time: float


@dataclass(frozen=True)
class StopEvent:
    """``<c : stop>`` — faulty client ``c`` leaves the system (§4.1.1)."""

    client: str
    time: float


Event = Invocation | Response | StopEvent


@dataclass(frozen=True)
class OperationRecord:
    """A completed (or pending) operation: an invocation and its response."""

    client: str
    obj: str
    op: str
    arg: Any
    result: Any
    invoked_at: float
    responded_at: Optional[float]  # None: pending at the end of the history

    @property
    def complete(self) -> bool:
        return self.responded_at is not None

    def precedes(self, other: "OperationRecord | StopEvent") -> bool:
        """Real-time precedence ``self <H other``."""
        if self.responded_at is None:
            return False
        if isinstance(other, StopEvent):
            return self.responded_at < other.time
        return self.responded_at < other.invoked_at


class History:
    """An ordered event log with §4.1 utilities.

    Events must be appended in non-decreasing time order (the recorder does
    this naturally since it runs inside the simulator).
    """

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self.events: list[Event] = []
        for event in events:
            self.append(event)

    def append(self, event: Event) -> None:
        if self.events and event.time < self.events[-1].time:
            raise HistoryError(
                f"event at time {event.time} appended after time "
                f"{self.events[-1].time}"
            )
        self.events.append(event)

    # -- §4.1 definitions ------------------------------------------------------

    def client_subhistory(self, client: str) -> "History":
        """``H|c``: the subsequence of events whose client is ``c``."""
        sub = History()
        sub.events = [e for e in self.events if e.client == client]
        return sub

    def object_subhistory(self, obj: str) -> "History":
        """``H|x``: the subsequence of events on object ``x`` (stops kept)."""
        sub = History()
        sub.events = [
            e
            for e in self.events
            if isinstance(e, StopEvent) or e.obj == obj
        ]
        return sub

    def is_sequential_for_client(self, client: str) -> bool:
        """Check that ``H|c`` alternates invocation/response correctly."""
        open_invocation: Optional[Invocation] = None
        stopped = False
        for event in self.client_subhistory(client).events:
            if stopped:
                return False
            if isinstance(event, Invocation):
                if open_invocation is not None:
                    return False
                open_invocation = event
            elif isinstance(event, Response):
                if open_invocation is None:
                    return False
                if event.obj != open_invocation.obj:
                    return False
                open_invocation = None
            else:  # StopEvent
                stopped = True
        return True

    def is_well_formed(self) -> bool:
        """A history is well-formed if every client subhistory is sequential."""
        return all(self.is_sequential_for_client(c) for c in self.clients())

    def clients(self) -> frozenset[str]:
        return frozenset(e.client for e in self.events)

    def stop_events(self) -> list[StopEvent]:
        return [e for e in self.events if isinstance(e, StopEvent)]

    def stop_time(self, client: str) -> Optional[float]:
        for event in self.events:
            if isinstance(event, StopEvent) and event.client == client:
                return event.time
        return None

    # -- operations ------------------------------------------------------------

    def operations(self) -> list[OperationRecord]:
        """Pair invocations with their matching responses, in invocation order.

        A trailing invocation without a response becomes a pending operation
        (``responded_at is None``).
        """
        open_by_client: dict[str, Invocation] = {}
        records: list[OperationRecord] = []
        order: list[tuple[float, int]] = []
        for event in self.events:
            if isinstance(event, Invocation):
                if event.client in open_by_client:
                    raise HistoryError(
                        f"client {event.client} has overlapping invocations"
                    )
                open_by_client[event.client] = event
            elif isinstance(event, Response):
                inv = open_by_client.pop(event.client, None)
                if inv is None:
                    raise HistoryError(
                        f"response without invocation for client {event.client}"
                    )
                records.append(
                    OperationRecord(
                        client=inv.client,
                        obj=inv.obj,
                        op=inv.op,
                        arg=inv.arg,
                        result=event.value,
                        invoked_at=inv.time,
                        responded_at=event.time,
                    )
                )
        for inv in open_by_client.values():
            records.append(
                OperationRecord(
                    client=inv.client,
                    obj=inv.obj,
                    op=inv.op,
                    arg=inv.arg,
                    result=None,
                    invoked_at=inv.time,
                    responded_at=None,
                )
            )
        records.sort(key=lambda r: r.invoked_at)
        return records

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
