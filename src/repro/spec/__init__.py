"""Correctness conditions of §4, executable.

* :mod:`repro.spec.histories` — events, histories, well-formedness (§4.1).
* :mod:`repro.spec.linearizability` — atomic-register checking for
  unique-value histories (Herlihy-Wing linearizability [6]).
* :mod:`repro.spec.bft_linearizability` — Definition 1 (BFT-linearizability
  with the ``max-b`` lurking-write bound) and the §7.1 plus-form.
"""

from repro.spec.bft_linearizability import (
    BftCheckResult,
    check_bft_linearizable,
    check_bft_linearizable_plus,
    count_lurking_writes,
    default_attribution,
)
from repro.spec.histories import (
    Event,
    History,
    Invocation,
    OperationRecord,
    Response,
    StopEvent,
)
from repro.spec.invariants import Lemma1Report, check_lemma1
from repro.spec.linearizability import (
    LinearizabilityReport,
    check_register_linearizable,
)

__all__ = [
    "History",
    "Invocation",
    "Response",
    "StopEvent",
    "Event",
    "OperationRecord",
    "LinearizabilityReport",
    "check_register_linearizable",
    "BftCheckResult",
    "check_bft_linearizable",
    "check_bft_linearizable_plus",
    "count_lurking_writes",
    "default_attribution",
    "Lemma1Report",
    "check_lemma1",
]
