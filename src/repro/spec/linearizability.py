"""Atomic-register linearizability checking for unique-value histories.

The workloads in this repository write *unique* values (each value tags its
writer and sequence number), which makes linearizability of a single
read/write register decidable in polynomial time: the reads-from mapping is
known, so checking reduces to a cycle search over write *clusters*.

Algorithm (standard for read-mapped single-register histories):

1. Group each write ``w`` with the reads that returned its value into a
   cluster ``C_w``.  Reads of the initial value join the virtual initial
   write's cluster, which precedes everything.
2. Any valid linearization must order each cluster as a contiguous block
   (a read of ``w`` cannot appear after a later write), so every real-time
   precedence between operations in *different* clusters induces an order
   constraint between the clusters.
3. The history is linearizable iff (a) no read completes before its write
   begins (reading from the future), (b) every read's value was actually
   written (or is the initial value), and (c) the cluster constraint graph
   is acyclic.

Pending writes (invoked, never responded) are allowed to take effect: their
interval extends to infinity, which lets Byzantine-client writes that have no
proper response participate as clusters — exactly what Theorem 1's history
construction does when it inserts a write by the faulty client just before
the read that observed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.spec.histories import History, OperationRecord

__all__ = ["LinearizabilityReport", "check_register_linearizable"]

_INITIAL = "__initial__"


@dataclass
class _Cluster:
    key: Hashable
    write: Optional[OperationRecord]  # None for the virtual initial write
    reads: list[OperationRecord] = field(default_factory=list)

    def members(self) -> list[OperationRecord]:
        ops = list(self.reads)
        if self.write is not None:
            ops.append(self.write)
        return ops


@dataclass
class LinearizabilityReport:
    """Outcome of a linearizability check, with the first violation found."""

    ok: bool
    violation: Optional[str] = None

    def __bool__(self) -> bool:
        return self.ok


def check_register_linearizable(
    history: History,
    *,
    initial_value: Any = None,
    obj: Optional[str] = None,
) -> LinearizabilityReport:
    """Check a unique-write register history for atomicity.

    Args:
        history: the recorded history; write operations must be recorded
            with ``op == "write"`` and their value in ``arg``; reads with
            ``op == "read"`` and the returned value in ``result``.
        initial_value: the register's value before any write.
        obj: restrict the check to one object (None = all events).

    Returns:
        A report whose ``violation`` explains the first failed condition.
    """
    records = history.operations()
    if obj is not None:
        records = [r for r in records if r.obj == obj]

    writes_by_value: dict[Hashable, OperationRecord] = {}
    for record in records:
        if record.op != "write":
            continue
        key = _value_key(record.arg)
        if key in writes_by_value:
            return LinearizabilityReport(
                ok=False,
                violation=f"duplicate write value {record.arg!r}; "
                "the unique-value checker requires distinct writes",
            )
        writes_by_value[key] = record

    clusters: dict[Hashable, _Cluster] = {
        key: _Cluster(key=key, write=w) for key, w in writes_by_value.items()
    }
    initial_cluster = _Cluster(key=_INITIAL, write=None)
    clusters[_INITIAL] = initial_cluster

    for record in records:
        if record.op != "read" or not record.complete:
            continue
        key = _value_key(record.result)
        if key not in writes_by_value and record.result == initial_value:
            initial_cluster.reads.append(record)
            continue
        cluster = clusters.get(key)
        if cluster is None or cluster.write is None:
            return LinearizabilityReport(
                ok=False,
                violation=f"read by {record.client} returned {record.result!r}, "
                "which no write produced",
            )
        # Condition (a): no reading from the future.
        if record.responded_at is not None and (
            record.responded_at < cluster.write.invoked_at
        ):
            return LinearizabilityReport(
                ok=False,
                violation=f"read by {record.client} of {record.result!r} "
                "completed before the write was invoked",
            )
        cluster.reads.append(record)

    # Build cluster precedence edges from real-time order.
    cluster_of: dict[int, Hashable] = {}
    intervals: list[tuple[OperationRecord, Hashable]] = []
    for cluster in clusters.values():
        for member in cluster.members():
            cluster_of[id(member)] = cluster.key
            intervals.append((member, cluster.key))

    edges: dict[Hashable, set[Hashable]] = {key: set() for key in clusters}
    # The virtual initial write precedes every real write cluster.
    for key, cluster in clusters.items():
        if key != _INITIAL and cluster.write is not None:
            edges[_INITIAL].add(key)

    for op_a, key_a in intervals:
        if op_a.responded_at is None:
            continue
        for op_b, key_b in intervals:
            if key_a == key_b or op_a is op_b:
                continue
            if op_a.responded_at < op_b.invoked_at:
                edges[key_a].add(key_b)

    cycle = _find_cycle(edges)
    if cycle is not None:
        return LinearizabilityReport(
            ok=False,
            violation="cluster precedence cycle (atomicity violation): "
            + " -> ".join(str(k) for k in cycle),
        )
    return LinearizabilityReport(ok=True)


def _value_key(value: Any) -> Hashable:
    """Hashable identity for a written value (values may be nested tuples)."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def _find_cycle(edges: dict[Hashable, set[Hashable]]) -> Optional[list[Hashable]]:
    """Return one cycle in the digraph, or None if acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in edges}
    stack: list[Hashable] = []

    def visit(node: Hashable) -> Optional[list[Hashable]]:
        colour[node] = GRAY
        stack.append(node)
        for succ in edges.get(node, ()):
            if colour.get(succ, WHITE) == GRAY:
                index = stack.index(succ)
                return stack[index:] + [succ]
            if colour.get(succ, WHITE) == WHITE:
                found = visit(succ)
                if found is not None:
                    return found
        stack.pop()
        colour[node] = BLACK
        return None

    for node in list(edges):
        if colour[node] == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None
