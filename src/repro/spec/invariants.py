"""Executable form of Lemma 1 (§5) — the paper's core safety argument.

The proof of Theorem 1 rests on three facts about the signatures correct
replicas have *released* at the moment a faulty client stops.  With
``tsmax`` the (f+1)-st highest timestamp stored by non-faulty replicas:

1. **No write certificate above tsmax.**  A certificate needs 2f+1
   *distinct* signers; with ``b`` Byzantine replicas actually present (who
   will sign anything), it is assemblable iff ≥ 2f+1-b correct replicas
   signed.  Lemma 1(1) says no ``t > tsmax`` reaches that threshold for
   WRITE-REPLY.
2. **At most one prepared timestamp above tsmax per client.**  Lemma 1(2):
   at most one timestamp above tsmax per client reaches the prepare
   threshold (two under the optimized protocol's twin lists — Lemma 1'(2)).
3. **One value per certifiable timestamp.**  Lemma 1(3): no timestamp above
   tsmax has two different hashes both reaching the threshold.

Replicas log every signature they release
(:attr:`~repro.core.replica.BftBcReplica.signed_write_replies`,
:attr:`~repro.core.replica.BftBcReplica.signed_prepare_replies`), so these
facts can be *checked* on any simulated execution, at any instant — the
proof's counting argument run as code.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.replica import BftBcReplica
from repro.core.timestamp import Timestamp

__all__ = ["Lemma1Report", "check_lemma1"]


@dataclass
class Lemma1Report:
    """Outcome of checking Lemma 1's three parts against signing logs."""

    ok: bool
    tsmax: Timestamp
    violations: list[str] = field(default_factory=list)
    #: timestamps above tsmax whose WRITE-REPLY signers reach the threshold
    certifiable_writes: list[Timestamp] = field(default_factory=list)
    #: client -> certifiable prepared timestamps above tsmax
    certifiable_prepares: dict[str, list[Timestamp]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def check_lemma1(
    replicas: Iterable[BftBcReplica],
    *,
    f: int,
    byzantine_replicas: frozenset[str] | set[str] = frozenset(),
    max_prepared_per_client: int = 1,
    suspects: Optional[Iterable[str]] = None,
) -> Lemma1Report:
    """Check Lemma 1 parts 1–3 against the correct replicas' signing logs.

    Args:
        replicas: all replica state machines of the deployment.
        f: the fault threshold.
        byzantine_replicas: node ids whose logs must be *excluded* (their
            signatures are unconstrained; the lemma counts correct ones).
        max_prepared_per_client: 1 for the base protocol (Lemma 1(2)),
            2 for the optimized protocol (Lemma 1'(2)).
        suspects: restrict part 2 to these client ids (default: every client
            that appears in any prepare log).

    Returns:
        A report; ``violations`` explains every failed part.
    """
    all_replicas = list(replicas)
    correct = [r for r in all_replicas if r.node_id not in byzantine_replicas]
    if not correct:
        raise ValueError("no correct replicas to check")
    present_byzantine = len(all_replicas) - len(correct)
    # A certificate needs 2f+1 distinct signers; the b Byzantine replicas
    # present sign anything, so it exists iff this many correct ones signed.
    threshold = max(1, (2 * f + 1) - present_byzantine)

    # tsmax: the (f+1)-st highest stored timestamp among non-faulty replicas.
    stored = sorted((r.pcert.ts for r in correct), reverse=True)
    index = min(f, len(stored) - 1)
    tsmax = stored[index]

    violations: list[str] = []

    # Part 1: count correct signers of WRITE-REPLY per timestamp > tsmax.
    write_signers: Counter = Counter()
    for replica in correct:
        for ts in replica.signed_write_replies:
            if ts > tsmax:
                write_signers[ts] += 1
    certifiable_writes = [ts for ts, n in write_signers.items() if n >= threshold]
    for ts in certifiable_writes:
        violations.append(
            f"Lemma 1(1): {write_signers[ts]} correct replicas signed "
            f"WRITE-REPLY for {ts} > tsmax={tsmax} (a write certificate "
            f"above tsmax could exist)"
        )

    # Parts 2 and 3: correct PREPARE-REPLY signers per (ts, hash, client).
    prepare_signers: dict[tuple[Timestamp, bytes, str], int] = Counter()
    for replica in correct:
        for ts, value_hash, client in replica.signed_prepare_replies:
            if ts > tsmax:
                prepare_signers[(ts, value_hash, client)] += 1

    certifiable: dict[str, set[Timestamp]] = defaultdict(set)
    certifiable_pairs: dict[Timestamp, set[bytes]] = defaultdict(set)
    for (ts, value_hash, client), count in prepare_signers.items():
        if count >= threshold:
            certifiable[client].add(ts)
            certifiable_pairs[ts].add(value_hash)

    suspect_set = set(suspects) if suspects is not None else set(certifiable)
    for client in sorted(suspect_set):
        timestamps = sorted(certifiable.get(client, set()))
        if len(timestamps) > max_prepared_per_client:
            violations.append(
                f"Lemma 1(2): client {client} holds certifiable prepares for "
                f"{len(timestamps)} timestamps above tsmax "
                f"({', '.join(map(str, timestamps))}); bound is "
                f"{max_prepared_per_client}"
            )

    for ts, hashes in sorted(certifiable_pairs.items()):
        if len(hashes) > 1:
            violations.append(
                f"Lemma 1(3): timestamp {ts} has {len(hashes)} certifiable "
                "values above tsmax"
            )

    return Lemma1Report(
        ok=not violations,
        tsmax=tsmax,
        violations=violations,
        certifiable_writes=sorted(certifiable_writes),
        certifiable_prepares={c: sorted(t) for c, t in certifiable.items()},
    )
