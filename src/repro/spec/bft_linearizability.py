"""BFT-linearizability checking (Definition 1, §4.2) and the §7.1 plus-form.

A verifiable history contains the operations of correct clients and the stop
events of faulty ones.  Definition 1 requires:

1–2.  A legal sequential history exists that agrees with every correct
      client's subhistory and respects the real-time order ``<H``.
3.    For every stopped faulty client ``c``, at most ``max-b`` of ``c``'s
      operations appear after its stop event in that sequential history.

We check 1–2 with the unique-value register checker, inserting a *pending*
write operation for every value that good readers observed but no good
client wrote (Theorem 1's construction: "insert a write operation in the
history that writes v (by client cb) immediately before the read").  A
pending write is unconstrained in time, exactly modelling a Byzantine write
launched at an unknown moment.

Condition 3 is measured directly: a value of ``c`` *first observed* by a
correct client's read after ``c``'s stop event is a lurking write.

The §7.1 ``BFT-linearizable+`` condition additionally requires that after
``k`` consecutive state-overwriting operations by good clients following the
stop, no operation of ``c`` is ever seen again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.spec.histories import History, Invocation, OperationRecord, StopEvent
from repro.spec.linearizability import (
    LinearizabilityReport,
    check_register_linearizable,
)

__all__ = [
    "default_attribution",
    "BftCheckResult",
    "count_lurking_writes",
    "check_bft_linearizable",
    "check_bft_linearizable_plus",
]

Attribution = Callable[[Any], Optional[str]]


def default_attribution(value: Any) -> Optional[str]:
    """Writer attribution for the workload's value convention.

    Workload values are tuples ``(writer_id, seq, payload)``; the phase-3
    WRITE request that produced a value is signed by its writer, so
    attribution is part of what replicas verified.
    """
    if isinstance(value, tuple) and len(value) >= 2 and isinstance(value[0], str):
        return value[0]
    return None


@dataclass
class BftCheckResult:
    """Outcome of a BFT-linearizability check."""

    ok: bool
    violation: Optional[str] = None
    lurking_writes: dict[str, int] = field(default_factory=dict)
    linearizability: Optional[LinearizabilityReport] = None

    def __bool__(self) -> bool:
        return self.ok


def _observations(
    history: History, attribution: Attribution
) -> list[tuple[OperationRecord, str]]:
    """Completed good-client reads paired with the writer of the value read."""
    result = []
    for record in history.operations():
        if record.op != "read" or not record.complete:
            continue
        writer = attribution(record.result)
        if writer is not None:
            result.append((record, writer))
    return result


def _augment_with_byzantine_writes(
    history: History, attribution: Attribution
) -> History:
    """Insert pending writes for observed values no good client wrote."""
    good_written = set()
    for record in history.operations():
        if record.op == "write":
            good_written.add(_key(record.arg))
    augmented = History()
    inserted: set[Any] = set()
    synthetic: list[Invocation] = []
    for record, writer in _observations(history, attribution):
        key = _key(record.result)
        if key in good_written or key in inserted:
            continue
        inserted.add(key)
        synthetic.append(
            Invocation(
                client=f"byz-writer:{writer}:{len(inserted)}",
                obj=record.obj,
                op="write",
                arg=record.result,
                time=float("-inf"),
            )
        )
    augmented.events = synthetic + list(history.events)
    return augmented


def _key(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def count_lurking_writes(
    history: History,
    bad_client: str,
    attribution: Attribution = default_attribution,
) -> int:
    """Number of ``bad_client`` writes first seen *after* its stop event.

    This is the quantity Definition 1 bounds by ``max-b`` (the paper proves
    ≤ 1 for the base protocol and ≤ 2 for the optimized one).
    """
    stop_time = history.stop_time(bad_client)
    if stop_time is None:
        return 0
    first_seen: dict[Any, float] = {}
    for record, writer in _observations(history, attribution):
        if writer != bad_client:
            continue
        key = _key(record.result)
        seen_at = record.responded_at if record.responded_at is not None else 0.0
        if key not in first_seen or seen_at < first_seen[key]:
            first_seen[key] = seen_at
    return sum(1 for seen_at in first_seen.values() if seen_at > stop_time)


def check_bft_linearizable(
    history: History,
    *,
    max_b: int,
    bad_clients: frozenset[str] | set[str] = frozenset(),
    attribution: Attribution = default_attribution,
    initial_value: Any = None,
    obj: Optional[str] = None,
) -> BftCheckResult:
    """Check Definition 1 against a recorded verifiable history.

    Args:
        history: events of correct clients plus stop events of bad ones.
        max_b: the lurking-write bound to enforce (1 base, 2 optimized).
        bad_clients: identifiers of the Byzantine clients.
        attribution: maps observed values to the client that wrote them.
        initial_value: register value before any write.
        obj: restrict the check to one object.
    """
    if not history.is_well_formed():
        return BftCheckResult(ok=False, violation="history is not well-formed")
    augmented = _augment_with_byzantine_writes(history, attribution)
    report = check_register_linearizable(
        augmented, initial_value=initial_value, obj=obj
    )
    if not report.ok:
        return BftCheckResult(
            ok=False,
            violation=f"not linearizable: {report.violation}",
            linearizability=report,
        )
    lurking = {
        client: count_lurking_writes(history, client, attribution)
        for client in sorted(bad_clients)
    }
    for client, count in lurking.items():
        if count > max_b:
            return BftCheckResult(
                ok=False,
                violation=(
                    f"client {client} has {count} lurking writes "
                    f"(bound max-b = {max_b})"
                ),
                lurking_writes=lurking,
                linearizability=report,
            )
    return BftCheckResult(ok=True, lurking_writes=lurking, linearizability=report)


def check_bft_linearizable_plus(
    history: History,
    *,
    k: int,
    bad_clients: frozenset[str] | set[str],
    attribution: Attribution = default_attribution,
    initial_value: Any = None,
) -> BftCheckResult:
    """Check the §7.1 strengthened condition.

    After the ``k``-th good-client write completed following a bad client's
    stop, no read may ever return one of that client's values again.
    """
    base = check_bft_linearizable(
        history,
        max_b=10**9,  # the plus-form bounds visibility, not the count
        bad_clients=bad_clients,
        attribution=attribution,
        initial_value=initial_value,
    )
    if not base.ok:
        return base
    records = history.operations()
    for bad in sorted(bad_clients):
        stop_time = history.stop_time(bad)
        if stop_time is None:
            continue
        overwrites = sorted(
            r.responded_at
            for r in records
            if r.op == "write"
            and r.complete
            and r.responded_at is not None
            and r.invoked_at > stop_time
        )
        if len(overwrites) < k:
            continue
        mask_time = overwrites[k - 1]
        for record, writer in _observations(history, attribution):
            if writer == bad and record.invoked_at > mask_time:
                return BftCheckResult(
                    ok=False,
                    violation=(
                        f"value by {bad} seen by a read invoked after the "
                        f"{k}-th post-stop overwrite (at {mask_time})"
                    ),
                    lurking_writes=base.lurking_writes,
                )
    return BftCheckResult(ok=True, lurking_writes=base.lurking_writes)
