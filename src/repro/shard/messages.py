"""Wire messages for directory maintenance and reconfiguration.

Four conversations, all request/reply:

* ``DIR-REQ``/``DIR-REPLY`` — a client (usually after an ``EPOCH-STALE``
  rebuff) fetches a shard's full entry chain from a replica and installs
  it through its verified :class:`~repro.shard.directory.ShardDirectory`.
* ``CFG-SIGN-REQ``/``CFG-SIGN-REPLY`` — the reconfigurator asks current
  members to endorse a successor configuration; each correct member signs
  at most one successor per epoch.
* ``EPOCH-INSTALL``/``EPOCH-ACK`` — the assembled quorum-signed entry is
  pushed to old and new members.
* ``XFER-REQ``/``XFER-REPLY`` — a bootstrapping replica pulls per-object
  durable state (snapshot + fingerprint + epoch) from peers.

None of these carry their own signatures beyond what the embedded
directory entries and per-object prepare certificates already have: the
authenticated artefacts are self-certifying, so transport-level origin is
irrelevant to safety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.core.messages import Message, register_message
from repro.errors import ProtocolError

__all__ = [
    "DirectoryRequest",
    "DirectoryReply",
    "ConfigSignRequest",
    "ConfigSignReply",
    "InstallEpochRequest",
    "InstallEpochAck",
    "StateTransferRequest",
    "StateTransferReply",
]


def _require(condition: bool, wire: Any) -> None:
    if not condition:
        raise ProtocolError(f"malformed shard message: {wire!r}")


@register_message
@dataclass(frozen=True)
class DirectoryRequest(Message):
    """Fetch one shard's configuration chain."""

    KIND: ClassVar[str] = "DIR-REQ"
    shard: str

    def to_wire(self) -> dict[str, Any]:
        return {"shard": self.shard}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "DirectoryRequest":
        _require(isinstance(wire.get("shard"), str), wire)
        return cls(shard=wire["shard"])


@register_message
@dataclass(frozen=True)
class DirectoryReply(Message):
    """The full entry chain (oldest first); genesis is implicit."""

    KIND: ClassVar[str] = "DIR-REPLY"
    shard: str
    entries: tuple[dict[str, Any], ...]

    def to_wire(self) -> dict[str, Any]:
        return {"shard": self.shard, "entries": self.entries}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "DirectoryReply":
        entries = wire.get("entries")
        _require(
            isinstance(wire.get("shard"), str)
            and isinstance(entries, (tuple, list))
            and all(isinstance(e, dict) for e in entries),
            wire,
        )
        return cls(shard=wire["shard"], entries=tuple(entries))


@register_message
@dataclass(frozen=True)
class ConfigSignRequest(Message):
    """Ask a current member to endorse a successor configuration."""

    KIND: ClassVar[str] = "CFG-SIGN-REQ"
    config: dict[str, Any]

    def to_wire(self) -> dict[str, Any]:
        return {"config": self.config}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ConfigSignRequest":
        _require(isinstance(wire.get("config"), dict), wire)
        return cls(config=wire["config"])


@register_message
@dataclass(frozen=True)
class ConfigSignReply(Message):
    """One member's signature over a successor config's statement."""

    KIND: ClassVar[str] = "CFG-SIGN-REPLY"
    shard: str
    epoch: int
    signature: Any

    def to_wire(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ConfigSignReply":
        _require(
            isinstance(wire.get("shard"), str)
            and isinstance(wire.get("epoch"), int),
            wire,
        )
        return cls(
            shard=wire["shard"], epoch=wire["epoch"], signature=wire["signature"]
        )


@register_message
@dataclass(frozen=True)
class InstallEpochRequest(Message):
    """Push a quorum-signed directory entry to a replica."""

    KIND: ClassVar[str] = "EPOCH-INSTALL"
    entry: dict[str, Any]

    def to_wire(self) -> dict[str, Any]:
        return {"entry": self.entry}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "InstallEpochRequest":
        _require(isinstance(wire.get("entry"), dict), wire)
        return cls(entry=wire["entry"])


@register_message
@dataclass(frozen=True)
class InstallEpochAck(Message):
    """A replica's acknowledgement that it now serves ``epoch``."""

    KIND: ClassVar[str] = "EPOCH-ACK"
    shard: str
    epoch: int

    def to_wire(self) -> dict[str, Any]:
        return {"shard": self.shard, "epoch": self.epoch}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "InstallEpochAck":
        _require(
            isinstance(wire.get("shard"), str)
            and isinstance(wire.get("epoch"), int),
            wire,
        )
        return cls(shard=wire["shard"], epoch=wire["epoch"])


@register_message
@dataclass(frozen=True)
class StateTransferRequest(Message):
    """A bootstrapping replica's pull for per-object durable state."""

    KIND: ClassVar[str] = "XFER-REQ"
    shard: str
    nonce: bytes

    def to_wire(self) -> dict[str, Any]:
        return {"shard": self.shard, "nonce": self.nonce}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "StateTransferRequest":
        _require(
            isinstance(wire.get("shard"), str)
            and isinstance(wire.get("nonce"), bytes),
            wire,
        )
        return cls(shard=wire["shard"], nonce=wire["nonce"])


@register_message
@dataclass(frozen=True)
class StateTransferReply(Message):
    """One peer's per-object snapshots.

    ``objects`` maps object id to ``{"snapshot": <snapshot_wire>,
    "fingerprint": <bytes>}``.  The receiver trusts neither field: it
    recomputes the fingerprint from the snapshot and validates the
    embedded prepare certificate before adopting anything.
    """

    KIND: ClassVar[str] = "XFER-REPLY"
    shard: str
    nonce: bytes
    epoch: int
    objects: dict[str, Any]

    def to_wire(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "nonce": self.nonce,
            "epoch": self.epoch,
            "objects": self.objects,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "StateTransferReply":
        _require(
            isinstance(wire.get("shard"), str)
            and isinstance(wire.get("nonce"), bytes)
            and isinstance(wire.get("epoch"), int)
            and isinstance(wire.get("objects"), dict),
            wire,
        )
        return cls(
            shard=wire["shard"],
            nonce=wire["nonce"],
            epoch=wire["epoch"],
            objects=wire["objects"],
        )
