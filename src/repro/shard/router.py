"""Client-side routing across shards with epoch-stale refresh.

A :class:`ShardRouter` owns one
:class:`~repro.core.multiobject.MultiObjectClient` per shard, built from
the router's verified :class:`~repro.shard.directory.ShardDirectory` and
tagged with the directory's epoch for that shard.  Operations route
through the consistent-hash ring; replies route back by object id.

When a replica answers ``EPOCH-STALE`` the router does not trust the
reply (it is unsigned): it merely starts a directory fetch from the
members it currently believes in.  The fetched entry chain *is*
authenticated — each link carries a quorum of the previous epoch's
signatures — and once the local directory advances the router *migrates*
that shard's client in place: certificate validation is rebound to the
new membership, outgoing envelopes are re-tagged with the new epoch, and
every in-flight operation resumes its current phase by retransmission.
Migration (not restart) matters: a write that already prepared a
timestamp at the continuing replicas must finish with that timestamp —
restarting it as a fresh operation would wedge against the replicas'
one-prepared-write-per-client rule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Optional

from repro.core.client import BftBcClient
from repro.core.config import SystemConfig
from repro.core.messages import Message
from repro.core.multiobject import EpochStaleReply, MultiObjectClient
from repro.core.operations import Send
from repro.errors import ProtocolError
from repro.shard.directory import DirectoryEntry, ShardDirectory
from repro.shard.messages import DirectoryReply, DirectoryRequest
from repro.shard.ring import HashRing

__all__ = ["ShardRouter"]


class ShardRouter:
    """Routes per-object operations to the owning shard's replica group."""

    def __init__(
        self,
        node_id: str,
        ring: HashRing,
        directory: ShardDirectory,
        template: SystemConfig,
        *,
        client_cls: type[BftBcClient] = BftBcClient,
    ) -> None:
        self.node_id = node_id
        self.ring = ring
        #: The router's own verified directory copy (refreshed on demand).
        self.directory = directory
        self._template = template
        self._client_cls = client_cls
        self._clients: dict[str, MultiObjectClient] = {}
        self._refreshing: set[str] = set()
        #: Called with the shard id after every epoch advance, once the
        #: shard's client has been migrated — an observation hook for
        #: drivers (the migration itself already resumes in-flight work).
        self.on_epoch_change: Optional[Callable[[str], None]] = None
        self.refreshes = 0
        self.stale_replies = 0

    # -- client plumbing ---------------------------------------------------

    def shard_of(self, obj: str) -> str:
        return self.ring.shard_for(obj)

    def shard_client(self, shard: str) -> MultiObjectClient:
        client = self._clients.get(shard)
        if client is None:
            client = self._build_client(shard)
            self._clients[shard] = client
        return client

    def _build_client(self, shard: str) -> MultiObjectClient:
        config = replace(
            self._template,
            quorums=self.directory.quorums(shard),
            verifier=None,
        )
        client = MultiObjectClient(
            self.node_id, config, client_cls=self._client_cls
        )
        client.epoch = self.directory.epoch(shard)
        client.on_epoch_stale = (
            lambda sender, reply, s=shard: self._on_stale(s, reply)
        )
        return client

    # -- operations --------------------------------------------------------

    def begin_write(self, obj: str, value: Any) -> list[Send]:
        return self.shard_client(self.shard_of(obj)).begin_write(obj, value)

    def begin_read(self, obj: str) -> list[Send]:
        return self.shard_client(self.shard_of(obj)).begin_read(obj)

    def deliver(self, sender: str, message: Message) -> list[Send]:
        if isinstance(message, DirectoryReply):
            return self._handle_directory_reply(message)
        shard = self._shard_for_message(message)
        if shard is None:
            return []
        return self.shard_client(shard).deliver(sender, message)

    def retransmit(self) -> list[Send]:
        sends: list[Send] = []
        for shard, client in self._clients.items():
            sends.extend(client.retransmit())
            if shard in self._refreshing:
                sends.extend(self._fetch_directory(shard))
        return sends

    def _shard_for_message(self, message: Message) -> Optional[str]:
        obj = getattr(message, "obj", None)
        if isinstance(obj, str):
            return self.shard_of(obj)
        return None

    # -- epoch refresh -----------------------------------------------------

    def _on_stale(self, shard: str, reply: EpochStaleReply) -> list[Send]:
        self.stale_replies += 1
        # A reply for an epoch we already hold is old news — an in-flight
        # message from before our own migration bouncing off a replica.
        # Refreshing on it would loop: the fetched chain adopts nothing.
        if reply.epoch <= self.directory.epoch(shard):
            return []
        if shard in self._refreshing:
            return []
        self._refreshing.add(shard)
        return self._fetch_directory(shard)

    def _fetch_directory(self, shard: str) -> list[Send]:
        request = DirectoryRequest(shard=shard)
        return [
            Send(dest=member, message=request)
            for member in self.directory.config(shard).members
        ]

    def _handle_directory_reply(self, message: DirectoryReply) -> list[Send]:
        shard = message.shard
        if shard not in self.directory.shard_ids:
            return []
        adopted = 0
        tip = self.directory.epoch(shard)
        for wire in message.entries:
            # A bad or stale link never poisons the directory; any prefix
            # that did verify is still kept.
            try:
                entry = DirectoryEntry.from_wire(wire)
                tip = max(tip, entry.config.epoch)
                if self.directory.install(shard, entry):
                    adopted += 1
            except ProtocolError:
                break
        if self.directory.epoch(shard) >= tip:
            # Caught up (possibly via a racing reply): stop re-fetching.
            self._refreshing.discard(shard)
        if adopted == 0:
            return []
        self.refreshes += 1
        # Migrate the shard's client in place: rebind certificate
        # validation to the new membership and re-tag the epoch.  In-flight
        # operations resume where they were — their prepared timestamps are
        # still prepared at the continuing replicas, so a retransmit under
        # the new tag completes them, where a restarted operation would
        # wedge against the one-prepared-write-per-client rule.
        client = self._clients.get(shard)
        if client is None:
            self._clients[shard] = self._build_client(shard)
        else:
            client.update_quorums(self.directory.quorums(shard))
            client.epoch = self.directory.epoch(shard)
        if self.on_epoch_change is not None:
            self.on_epoch_change(shard)
        # Push the current phase of every in-flight operation out under the
        # new epoch tag immediately rather than waiting a retransmit tick.
        return self.shard_client(shard).retransmit()

    # -- inspection --------------------------------------------------------

    def busy(self, obj: str) -> bool:
        return self.shard_client(self.shard_of(obj)).busy(obj)

    @property
    def any_busy(self) -> bool:
        return any(client.any_busy for client in self._clients.values())

    def result(self, obj: str) -> Any:
        return self.shard_client(self.shard_of(obj)).result(obj)

    def epoch(self, shard: str) -> int:
        return self.directory.epoch(shard)
