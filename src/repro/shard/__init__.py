"""Sharded scale-out for the BFT-BC register (ROADMAP item 1).

The paper (§3.2) generalises the single register to many objects; this
package generalises the single replica *group* to many.  Object ids map
onto shards through a consistent-hash ring (:mod:`repro.shard.ring`), each
shard is an independent 3f+1 replica group running the unchanged BFT-BC
state machines, and a versioned, quorum-signed :class:`ShardDirectory`
(:mod:`repro.shard.directory`) tells clients which replicas currently form
each group.

Online growth follows "Asynchronous Reconfiguration with Byzantine
Failures" (arXiv 2005.13499): there is no consensus on configurations —
a :class:`Reconfigurator` client collects a quorum of the *current*
members' signatures over the successor configuration and installs the
resulting directory entry at replicas and (lazily, via ``EPOCH-STALE``
replies) at clients.  New replicas bootstrap from 2f+1 peers with the
snapshot/WAL export of :mod:`repro.storage`, validated by recomputing
``DurableReplicaState.fingerprint()`` and the embedded prepare
certificate before any transferred state is adopted.
"""

from repro.shard.directory import ShardConfig, DirectoryEntry, ShardDirectory
from repro.shard.messages import (
    ConfigSignReply,
    ConfigSignRequest,
    DirectoryReply,
    DirectoryRequest,
    InstallEpochAck,
    InstallEpochRequest,
    StateTransferReply,
    StateTransferRequest,
)
from repro.shard.reconfig import Reconfigurator
from repro.shard.replica import ShardReplica
from repro.shard.ring import HashRing
from repro.shard.router import ShardRouter

__all__ = [
    "HashRing",
    "ShardConfig",
    "DirectoryEntry",
    "ShardDirectory",
    "ShardReplica",
    "ShardRouter",
    "Reconfigurator",
    "DirectoryRequest",
    "DirectoryReply",
    "ConfigSignRequest",
    "ConfigSignReply",
    "InstallEpochRequest",
    "InstallEpochAck",
    "StateTransferRequest",
    "StateTransferReply",
]
