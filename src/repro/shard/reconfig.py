"""Client-driven online reconfiguration (arXiv 2005.13499 style).

The :class:`Reconfigurator` is a *client* of the shard: it never runs
consensus.  To replace member ``remove`` with ``add`` in a shard at epoch
``e`` it:

1. registers ``add`` with the PKI and proposes the epoch ``e+1``
   configuration to the epoch-``e`` members (``CFG-SIGN-REQ``);
2. collects 2f+1 endorsement signatures — a quorum of the *old* epoch —
   into a :class:`~repro.shard.directory.DirectoryEntry`;
3. pushes the entry to every old and new member (``EPOCH-INSTALL``) and
   waits for acks from a quorum of the *new* members;
4. optionally revokes the removed member's key, so it can endorse no
   future configurations and sign no fresh certificates, while everything
   it legitimately signed in the past keeps verifying.

Because each correct member signs at most one successor per epoch, two
reconfigurators racing for epoch ``e+1`` with different member sets cannot
both assemble a quorum: their signer sets would intersect in a correct
replica.  The loser simply observes the winner's entry when refreshing and
retries against ``e+1``.

The class is sans-I/O like the protocol clients: ``begin()`` and
``deliver()`` return :class:`~repro.core.operations.Send` batches for the
caller's transport, and ``retransmit()`` re-issues the current phase.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import SystemConfig
from repro.core.messages import Message
from repro.core.operations import Send
from repro.crypto.signatures import Signature
from repro.errors import CryptoError, ProtocolError, UnknownSignerError
from repro.shard.directory import DirectoryEntry, ShardConfig, ShardDirectory
from repro.shard.messages import (
    ConfigSignReply,
    ConfigSignRequest,
    InstallEpochAck,
    InstallEpochRequest,
)

__all__ = ["Reconfigurator"]


class Reconfigurator:
    """Drives one membership change in one shard, under live traffic."""

    def __init__(
        self,
        node_id: str,
        shard: str,
        directory: ShardDirectory,
        template: SystemConfig,
        *,
        revoke_removed: bool = False,
    ) -> None:
        self.node_id = node_id
        self.shard = shard
        self.directory = directory
        self._template = template
        self._revoke_removed = revoke_removed
        self.phase = "idle"  # idle -> signing -> installing -> done
        self._old: Optional[ShardConfig] = None
        self._proposal: Optional[ShardConfig] = None
        self._remove: Optional[str] = None
        self._signatures: dict[str, Signature] = {}
        self._entry: Optional[DirectoryEntry] = None
        self._acks: set[str] = set()

    @property
    def done(self) -> bool:
        return self.phase == "done"

    @property
    def entry(self) -> Optional[DirectoryEntry]:
        """The installed entry once the run completed."""
        return self._entry

    # -- protocol ----------------------------------------------------------

    def begin_replace(self, remove: str, add: str) -> list[Send]:
        """Propose replacing ``remove`` with ``add``; returns sign requests.

        The proposal goes to every old member except the one being removed
        — it may well be dead, which is the usual reason for the change —
        leaving exactly 3f reachable candidates for the 2f+1 signatures.
        """
        if self.phase != "idle":
            raise ProtocolError(f"reconfigurator already {self.phase}")
        old = self.directory.config(self.shard)
        if remove not in old.members:
            raise ProtocolError(f"{remove!r} is not a member of {self.shard!r}")
        if add in old.members:
            raise ProtocolError(f"{add!r} is already a member of {self.shard!r}")
        members = tuple(add if m == remove else m for m in old.members)
        self._old = old
        self._remove = remove
        self._proposal = ShardConfig(
            shard=self.shard, epoch=old.epoch + 1, members=members, f=old.f
        )
        # Provision the joiner's key before anyone is asked to talk to it.
        self._template.registry.register(add)
        self.phase = "signing"
        return self._sign_requests()

    def deliver(self, sender: str, message: Message) -> list[Send]:
        if self.phase == "signing" and isinstance(message, ConfigSignReply):
            return self._on_sign_reply(sender, message)
        if self.phase == "installing" and isinstance(message, InstallEpochAck):
            return self._on_ack(sender, message)
        return []

    def retransmit(self) -> list[Send]:
        if self.phase == "signing":
            return self._sign_requests()
        if self.phase == "installing":
            return self._install_requests()
        return []

    # -- signing phase -----------------------------------------------------

    def _sign_requests(self) -> list[Send]:
        assert self._old is not None and self._proposal is not None
        request = ConfigSignRequest(config=self._proposal.to_wire())
        return [
            Send(dest=member, message=request)
            for member in self._old.members
            if member != self._remove and member not in self._signatures
        ]

    def _on_sign_reply(
        self, sender: str, message: ConfigSignReply
    ) -> list[Send]:
        assert self._old is not None and self._proposal is not None
        if (
            message.shard != self.shard
            or message.epoch != self._proposal.epoch
            or sender not in self._old.members
            or sender in self._signatures
        ):
            return []
        try:
            signature = Signature.from_wire(message.signature)
        except (CryptoError, TypeError, ValueError):
            return []
        if signature.signer != sender or not self._template.scheme.verify(
            signature, self._proposal.statement_bytes()
        ):
            return []
        self._signatures[sender] = signature
        if len(self._signatures) < self._old.quorum_size:
            return []
        self._entry = DirectoryEntry(
            config=self._proposal,
            signatures=tuple(
                self._signatures[m]
                for m in self._old.members
                if m in self._signatures
            ),
        )
        self.phase = "installing"
        return self._install_requests()

    # -- install phase -----------------------------------------------------

    def _install_requests(self) -> list[Send]:
        assert self._entry is not None and self._old is not None
        request = InstallEpochRequest(entry=self._entry.to_wire())
        targets = dict.fromkeys(
            tuple(self._old.members) + self._entry.config.members
        )
        return [
            Send(dest=member, message=request)
            for member in targets
            if member not in self._acks
        ]

    def _on_ack(self, sender: str, message: InstallEpochAck) -> list[Send]:
        assert self._entry is not None
        config = self._entry.config
        if (
            message.shard != self.shard
            or message.epoch < config.epoch
            or sender in self._acks
        ):
            return []
        self._acks.add(sender)
        new_acks = self._acks & set(config.members)
        if len(new_acks) < config.quorum_size:
            return []
        # A quorum of the new epoch serves it: the change is durable (any
        # later quorum intersects this one in a correct replica).
        self.directory.install(self.shard, self._entry)
        # Revocation is opt-in: right for a crashed or suspect member (it
        # can then endorse no future configs and sign no fresh statements,
        # while its past signatures keep verifying), wrong for a graceful
        # drain — a removed-but-running member must still sign replies to
        # old-epoch traffic until the handoff window closes.
        if self._revoke_removed and self._remove is not None:
            try:
                self._template.registry.revoke(self._remove)
            except UnknownSignerError:  # pragma: no cover - never registered
                pass
        self.phase = "done"
        return []
