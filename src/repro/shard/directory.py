"""Versioned, quorum-signed shard configurations.

A :class:`ShardConfig` names the replica group serving one shard at one
*epoch*.  Epoch 0 is genesis (trusted out of band, like the PKI seed);
every later epoch is carried by a :class:`DirectoryEntry` — the successor
configuration plus signatures from a quorum (2f+1) of the **previous**
epoch's members.  That is the forfeiting-consensus rule of arXiv
2005.13499: nobody runs agreement on configurations; a client that can
exhibit a correctly-chained sequence of quorum-signed entries is entitled
to act on the newest one, because any quorum of epoch ``e`` contains a
correct replica, and correct replicas sign at most one successor per
epoch (equivocation is refused, see
:meth:`repro.shard.replica.ShardReplica`).

:class:`ShardDirectory` is the verified cache of those chains that both
replicas and routing clients keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.core.quorum import QuorumSystem
from repro.crypto.signatures import Signature
from repro.encoding import canonical_encode
from repro.errors import CryptoError, ProtocolError

__all__ = ["ShardConfig", "DirectoryEntry", "ShardDirectory"]


@dataclass(frozen=True)
class ShardConfig:
    """One shard's replica group at one epoch."""

    shard: str
    epoch: int
    members: tuple[str, ...]
    f: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ProtocolError(f"negative epoch {self.epoch}")
        if len(self.members) != 3 * self.f + 1:
            raise ProtocolError(
                f"{len(self.members)} members cannot tolerate f={self.f} "
                f"(need 3f+1)"
            )
        if len(set(self.members)) != len(self.members):
            raise ProtocolError("duplicate members in shard config")

    @property
    def quorum_size(self) -> int:
        return 2 * self.f + 1

    def statement(self) -> tuple[Any, ...]:
        """The canonical statement members sign to endorse this config."""
        return ("shard-config", self.shard, self.epoch, self.f, self.members)

    def statement_bytes(self) -> bytes:
        return canonical_encode(self.statement())

    def quorums(self, extra_signers: Iterable[str] = ()) -> QuorumSystem:
        """The quorum system protocol traffic runs under at this epoch.

        ``extra_signers`` carries members of *earlier* epochs so stored
        certificates they signed keep validating after they leave the
        group; they receive no traffic (not in ``replica_ids``).
        """
        return QuorumSystem(
            n=len(self.members),
            f=self.f,
            quorum_size=self.quorum_size,
            members=self.members,
            extra_signers=frozenset(extra_signers) - set(self.members),
        )

    def to_wire(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "members": self.members,
            "f": self.f,
        }

    @classmethod
    def from_wire(cls, wire: Any) -> "ShardConfig":
        if not isinstance(wire, Mapping):
            raise ProtocolError(f"malformed shard config: {wire!r}")
        try:
            shard = wire["shard"]
            epoch = wire["epoch"]
            members = tuple(wire["members"])
            f = wire["f"]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed shard config: {wire!r}") from exc
        if (
            not isinstance(shard, str)
            or not isinstance(epoch, int)
            or not isinstance(f, int)
            or not all(isinstance(m, str) for m in members)
        ):
            raise ProtocolError(f"malformed shard config: {wire!r}")
        return cls(shard=shard, epoch=epoch, members=members, f=f)


@dataclass(frozen=True)
class DirectoryEntry:
    """A successor configuration endorsed by a quorum of its predecessor."""

    config: ShardConfig
    signatures: tuple[Signature, ...]

    @property
    def signers(self) -> frozenset[str]:
        return frozenset(sig.signer for sig in self.signatures)

    def validate(self, scheme: Any, previous: ShardConfig) -> None:
        """Check this entry legitimately succeeds ``previous``.

        ``scheme`` is anything exposing ``verify(signature, bytes)`` — the
        base (unscoped) signature scheme; configuration statements are
        shard-level, not object-level.

        Raises:
            ProtocolError: on any defect — wrong shard, non-consecutive
                epoch, excessive membership churn, or a signature set that
                is not a quorum of ``previous.members``.
        """
        cfg = self.config
        if cfg.shard != previous.shard:
            raise ProtocolError(
                f"entry for {cfg.shard!r} chained under {previous.shard!r}"
            )
        if cfg.epoch != previous.epoch + 1:
            raise ProtocolError(
                f"epoch {cfg.epoch} does not succeed {previous.epoch}"
            )
        if cfg.f != previous.f:
            raise ProtocolError("fault threshold may not change across epochs")
        # Churn bound: at most f members replaced per epoch, so the old and
        # new groups share >= 2f+1 replicas and state transfer always finds
        # a quorum of the old group inside the new one's read horizon.
        kept = len(set(previous.members) & set(cfg.members))
        if kept < len(previous.members) - previous.f:
            raise ProtocolError(
                f"{len(previous.members) - kept} members replaced in one "
                f"epoch; at most f={previous.f} allowed"
            )
        if len(self.signers) != len(self.signatures):
            raise ProtocolError("duplicate signers on directory entry")
        if not self.signers <= set(previous.members):
            raise ProtocolError("directory entry signed by non-members")
        if len(self.signers) < previous.quorum_size:
            raise ProtocolError(
                f"{len(self.signers)} signatures; need a quorum of "
                f"{previous.quorum_size} epoch-{previous.epoch} members"
            )
        statement = cfg.statement_bytes()
        for sig in self.signatures:
            if not scheme.verify(sig, statement):
                raise ProtocolError(
                    f"bad config signature from {sig.signer!r}"
                )

    def is_valid(self, scheme: Any, previous: ShardConfig) -> bool:
        try:
            self.validate(scheme, previous)
        except ProtocolError:
            return False
        return True

    def to_wire(self) -> dict[str, Any]:
        return {
            "config": self.config.to_wire(),
            "signatures": tuple(sig.to_wire() for sig in self.signatures),
        }

    @classmethod
    def from_wire(cls, wire: Any) -> "DirectoryEntry":
        if not isinstance(wire, Mapping) or "config" not in wire:
            raise ProtocolError(f"malformed directory entry: {wire!r}")
        try:
            signatures = tuple(
                Signature.from_wire(s) for s in wire["signatures"]
            )
        except (CryptoError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed directory entry: {wire!r}") from exc
        return cls(
            config=ShardConfig.from_wire(wire["config"]), signatures=signatures
        )


class ShardDirectory:
    """A verified cache of every shard's configuration chain.

    Seeded with the genesis (epoch-0) configuration of each shard; grows
    only through :meth:`install`, which re-validates the whole link, so
    everything readable from a directory is authenticated.
    """

    def __init__(self, genesis: Mapping[str, ShardConfig], scheme: Any) -> None:
        for shard, config in genesis.items():
            if config.shard != shard:
                raise ProtocolError(
                    f"genesis for {shard!r} names shard {config.shard!r}"
                )
            if config.epoch != 0:
                raise ProtocolError(
                    f"genesis epoch for {shard!r} is {config.epoch}, not 0"
                )
        self._genesis = dict(genesis)
        self._entries: dict[str, list[DirectoryEntry]] = {
            shard: [] for shard in genesis
        }
        self._scheme = scheme

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self._genesis)

    def config(self, shard: str) -> ShardConfig:
        """The newest verified configuration of ``shard``."""
        chain = self._entries[shard]
        return chain[-1].config if chain else self._genesis[shard]

    def epoch(self, shard: str) -> int:
        return self.config(shard).epoch

    def chain(self, shard: str) -> tuple[DirectoryEntry, ...]:
        """Every installed entry, oldest first (genesis is implicit)."""
        return tuple(self._entries[shard])

    def historical_signers(self, shard: str) -> frozenset[str]:
        """All node ids that were members at any epoch up to the current one.

        These feed ``QuorumSystem.extra_signers`` so certificates formed
        under superseded memberships keep validating.
        """
        signers = set(self._genesis[shard].members)
        for entry in self._entries[shard]:
            signers.update(entry.config.members)
        return frozenset(signers)

    def quorums(self, shard: str) -> QuorumSystem:
        """The current epoch's quorum system with historical extra signers."""
        return self.config(shard).quorums(self.historical_signers(shard))

    def install(self, shard: str, entry: DirectoryEntry) -> bool:
        """Verify and adopt ``entry``; True if the directory advanced.

        Entries for already-known epochs are ignored (idempotent); an entry
        that does not validate against the current tip raises.
        """
        if shard not in self._entries:
            raise ProtocolError(f"unknown shard {shard!r}")
        if entry.config.epoch <= self.epoch(shard):
            return False
        entry.validate(self._scheme, self.config(shard))
        self._entries[shard].append(entry)
        return True

    def install_chain(
        self, shard: str, entries: Iterable[DirectoryEntry]
    ) -> int:
        """Install a (possibly partial) chain; returns entries adopted."""
        adopted = 0
        for entry in entries:
            if self.install(shard, entry):
                adopted += 1
        return adopted
