"""Consistent-hash ring: object ids -> shard ids.

Classic fixed-point construction: every shard contributes ``vnodes``
pseudo-random points on a 2^64 ring (SHA-256 of ``"shard-ring", shard,
index``), and an object belongs to the shard owning the first point at or
after the object's own hash.  Virtual nodes smooth the load split, and
adding or removing one shard moves only the arcs adjacent to its points —
the property that makes incremental scale-out cheap.

The ring is deliberately independent of the directory: it answers *which
shard* owns an object, while :class:`repro.shard.directory.ShardDirectory`
answers *which replicas* currently form that shard.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable

from repro.encoding import canonical_encode

__all__ = ["HashRing"]


def _point(label: tuple) -> int:
    return int.from_bytes(
        hashlib.sha256(canonical_encode(label)).digest()[:8], "big"
    )


class HashRing:
    """Immutable consistent-hash ring over a set of shard ids."""

    def __init__(self, shard_ids: Iterable[str], *, vnodes: int = 64) -> None:
        shards = tuple(shard_ids)
        if not shards:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("duplicate shard ids")
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for shard in shards:
            for index in range(vnodes):
                points.append((_point(("shard-ring", shard, index)), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, obj: str) -> str:
        """The shard owning ``obj``."""
        where = bisect.bisect_right(
            self._points, _point(("shard-ring-key", obj))
        )
        if where == len(self._points):
            where = 0  # wrap past the highest point
        return self._owners[where]

    def distribution(self, objs: Iterable[str]) -> Counter:
        """How many of ``objs`` land on each shard (all shards listed)."""
        counts: Counter = Counter({shard: 0 for shard in self.shards})
        counts.update(self.shard_for(obj) for obj in objs)
        return counts
