"""One shard member: protocol traffic plus configuration duties.

:class:`ShardReplica` wraps a :class:`~repro.core.multiobject.MultiObjectReplica`
(the unchanged per-object BFT-BC state machines) and adds everything a
member of a reconfigurable group must do:

* pin protocol envelopes to the configuration epoch (stale tags get
  ``EPOCH-STALE`` replies via the wrapped replica);
* serve the shard's directory chain (``DIR-REQ``);
* endorse successor configurations (``CFG-SIGN-REQ``) — at most one
  member set per epoch, refusing equivocation;
* adopt quorum-signed epochs (``EPOCH-INSTALL``), keeping the previous
  epoch serviceable for a bounded *handoff window* so operations straddling
  the switch finish against the old tag;
* serve and perform state transfer (``XFER-REQ``/``XFER-REPLY``).

Bootstrap safety: a joining replica pulls from a quorum (2f+1) of the
previous members, so at least f+1 replies come from correct replicas and
every write that reached a quorum of the old epoch is present in at least
one reply.  Each candidate is revalidated locally — the snapshot's
fingerprint is recomputed through a scratch
:class:`~repro.core.persistence.DurableReplicaState` and the embedded
prepare certificate is checked against the old membership — and the
highest correctly-certified timestamp wins.  Until the transfer completes
the replica answers no protocol traffic at all, so an empty state machine
can never vouch for a stale (genesis) value.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Optional

from repro.core.batching import BatchEnvelope
from repro.core.config import SystemConfig
from repro.core.messages import Message
from repro.core.multiobject import (
    EpochStaleReply,
    MultiObjectReplica,
    ObjectMessage,
    ScopedSignatureScheme,
)
from repro.core.operations import Send
from repro.core.repair import validate_repair_candidate
from repro.core.replica import BftBcReplica
from repro.crypto.hashing import hash_value
from repro.errors import ProtocolError
from repro.obs import Instrumentation
from repro.shard.directory import DirectoryEntry, ShardConfig, ShardDirectory
from repro.shard.messages import (
    ConfigSignReply,
    ConfigSignRequest,
    DirectoryReply,
    DirectoryRequest,
    InstallEpochAck,
    InstallEpochRequest,
    StateTransferReply,
    StateTransferRequest,
)
from repro.storage.base import ReplicaStore

__all__ = ["ShardReplica"]


class ShardReplica:
    """A replica serving one shard of a sharded deployment."""

    def __init__(
        self,
        node_id: str,
        shard: str,
        directory: ShardDirectory,
        template: SystemConfig,
        *,
        replica_cls: type[BftBcReplica] = BftBcReplica,
        store_factory: Optional[Callable[[str], ReplicaStore]] = None,
        instrumentation: Optional[Instrumentation] = None,
        clock: Optional[Callable[[], float]] = None,
        handoff: float = 0.5,
        bootstrap_from: Optional[ShardConfig] = None,
    ) -> None:
        self.node_id = node_id
        self.shard = shard
        #: This replica's own verified view of the configuration chains.
        self.directory = directory
        # Simulations inject the virtual clock; real deployments get the
        # monotonic wall clock so handoff windows actually close.
        self._clock = clock if clock is not None else time.monotonic
        #: Seconds the superseded epoch stays serviceable after an install.
        self.handoff = handoff
        self.config: ShardConfig = directory.config(shard)
        self.system = replace(
            template, quorums=directory.quorums(shard), verifier=None
        )
        self.inner = MultiObjectReplica(
            node_id,
            self.system,
            replica_cls=replica_cls,
            store_factory=store_factory,
        )
        self.instrumentation = instrumentation
        self.inner.set_epoch(self.config.epoch)
        #: False while this replica is still pulling state from peers.
        self.ready = bootstrap_from is None
        #: True once a later epoch dropped this replica from the group.
        self.retired = False
        self._grace_deadline: Optional[float] = None
        self._boot_prev = bootstrap_from
        self._boot_nonce: Optional[bytes] = None
        self._boot_replies: dict[str, dict[str, Any]] = {}
        #: epoch -> member set this replica endorsed (equivocation guard).
        self._signed_configs: dict[int, tuple[str, ...]] = {}
        self.sign_conflicts = 0
        self.not_ready_drops = 0
        self.transfers_served = 0
        self.bootstrap_rejects = 0

    @property
    def epoch(self) -> int:
        return self.config.epoch

    @property
    def store(self) -> None:
        """Transport adapters probe ``.store``; shard state is per object."""
        return None

    # -- dispatch ----------------------------------------------------------

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        """Process one frame; replies (if any) go back to ``sender``."""
        self._maybe_close_handoff()
        if isinstance(message, (ObjectMessage, BatchEnvelope)):
            if self.retired:
                if isinstance(message, ObjectMessage):
                    return EpochStaleReply(obj=message.obj, epoch=self.epoch)
                return None
            if not self.ready:
                self.not_ready_drops += 1
                return None
            return self.inner.handle(sender, message)
        if isinstance(message, DirectoryRequest):
            return self._handle_directory(message)
        if isinstance(message, ConfigSignRequest):
            return self._handle_config_sign(message)
        if isinstance(message, InstallEpochRequest):
            return self._handle_install(message)
        if isinstance(message, StateTransferRequest):
            return self._handle_transfer(message)
        if isinstance(message, StateTransferReply):
            self._handle_transfer_reply(sender, message)
            return None
        return None

    # -- directory service -------------------------------------------------

    def _handle_directory(self, message: DirectoryRequest) -> Optional[Message]:
        if message.shard != self.shard:
            return None
        return DirectoryReply(
            shard=self.shard,
            entries=tuple(
                entry.to_wire() for entry in self.directory.chain(self.shard)
            ),
        )

    # -- configuration endorsement -----------------------------------------

    def _handle_config_sign(self, message: ConfigSignRequest) -> Optional[Message]:
        if self.retired or not self.ready:
            return None
        try:
            proposal = ShardConfig.from_wire(message.config)
        except ProtocolError:
            return None
        current = self.config
        if proposal.shard != self.shard or proposal.epoch != current.epoch + 1:
            return None
        if proposal.f != current.f:
            return None
        kept = len(set(current.members) & set(proposal.members))
        if kept < len(current.members) - current.f:
            return None  # more than f members replaced at once
        endorsed = self._signed_configs.get(proposal.epoch)
        if endorsed is not None and endorsed != proposal.members:
            # A correct member signs at most one successor per epoch; this
            # is the rule that makes quorum-signed entries unequivocal.
            self.sign_conflicts += 1
            return None
        self._signed_configs[proposal.epoch] = proposal.members
        signature = self.system.scheme.sign(
            self.node_id, proposal.statement_bytes()
        )
        return ConfigSignReply(
            shard=self.shard,
            epoch=proposal.epoch,
            signature=signature.to_wire(),
        )

    # -- epoch installation ------------------------------------------------

    def _handle_install(self, message: InstallEpochRequest) -> Optional[Message]:
        try:
            entry = DirectoryEntry.from_wire(message.entry)
        except ProtocolError:
            return None
        if entry.config.shard != self.shard:
            return None
        if entry.config.epoch <= self.epoch:
            # Idempotent: re-ack installs we already adopted.
            return InstallEpochAck(shard=self.shard, epoch=self.epoch)
        try:
            advanced = self.directory.install(self.shard, entry)
        except ProtocolError:
            return None
        if advanced:
            self._adopt(entry.config)
        return InstallEpochAck(shard=self.shard, epoch=self.epoch)

    def _adopt(self, config: ShardConfig) -> None:
        previous = self.config
        self.config = config
        # Certificates formed under earlier memberships must keep
        # validating, so the new quorum system carries every historical
        # member as an extra signer.
        self.inner.update_quorums(self.directory.quorums(self.shard))
        if self.node_id not in config.members:
            self.retired = True
            self.inner.set_epoch(config.epoch)
            self._grace_deadline = None
            return
        # Bounded handoff: the superseded epoch stays acceptable until the
        # window closes, so an operation that started under the old tag can
        # still assemble its quorum.
        self.inner.set_epoch(config.epoch, also_accept=(previous.epoch,))
        self._grace_deadline = self._clock() + self.handoff

    def _maybe_close_handoff(self) -> None:
        if (
            self._grace_deadline is not None
            and self._clock() >= self._grace_deadline
        ):
            self.inner.set_epoch(self.epoch)
            self._grace_deadline = None

    # -- state transfer: serving side --------------------------------------

    def _handle_transfer(self, message: StateTransferRequest) -> Optional[Message]:
        if message.shard != self.shard or not self.ready or self.retired:
            return None
        objects = {}
        for obj in sorted(self.inner.objects):
            state = self.inner.object_state(obj)
            objects[obj] = {
                "snapshot": state.snapshot_wire(),
                "fingerprint": state.state_fingerprint(),
            }
        self.transfers_served += 1
        return StateTransferReply(
            shard=self.shard,
            nonce=message.nonce,
            epoch=self.epoch,
            objects=objects,
        )

    # -- state transfer: bootstrapping side --------------------------------

    def begin_bootstrap(self) -> list[Send]:
        """Start pulling state from the previous configuration's members.

        Returns the transfer requests to send; call again (or
        :meth:`bootstrap_retransmit`) to re-issue them on a lossy network.
        """
        if self._boot_prev is None:
            raise ProtocolError(f"{self.node_id} was not created as a joiner")
        if self._boot_nonce is None:
            # Deterministic per (replica, shard): replays in the simulator
            # reproduce byte-identical transfers.
            self._boot_nonce = hash_value(
                ("shard-bootstrap", self.node_id, self.shard)
            )[:16]
        return [
            Send(
                dest=peer,
                message=StateTransferRequest(
                    shard=self.shard, nonce=self._boot_nonce
                ),
            )
            for peer in self._boot_prev.members
            if peer != self.node_id and peer not in self._boot_replies
        ]

    def bootstrap_retransmit(self) -> list[Send]:
        """Re-request transfer from peers that have not answered yet."""
        if self.ready or self._boot_prev is None:
            return []
        return self.begin_bootstrap()

    def _handle_transfer_reply(
        self, sender: str, message: StateTransferReply
    ) -> None:
        if (
            self.ready
            or self._boot_prev is None
            or message.shard != self.shard
            or message.nonce != self._boot_nonce
            or sender not in self._boot_prev.members
            or sender in self._boot_replies
        ):
            return
        self._boot_replies[sender] = message.objects
        if len(self._boot_replies) >= self._boot_prev.quorum_size:
            self._finish_bootstrap()

    def _finish_bootstrap(self) -> None:
        assert self._boot_prev is not None
        validation_quorums = self.system.quorums
        every_obj = sorted(
            {obj for objects in self._boot_replies.values() for obj in objects}
        )
        for obj in every_obj:
            best = None
            for objects in self._boot_replies.values():
                candidate = objects.get(obj)
                if not isinstance(candidate, dict):
                    continue
                checked = self._validate_candidate(
                    obj, candidate, validation_quorums
                )
                if checked is None:
                    self.bootstrap_rejects += 1
                    continue
                ts, snapshot = checked
                if best is None or best[0] < ts:
                    best = (ts, snapshot)
            if best is None:
                continue  # nothing certifiable for this object
            state = self.inner.object_state(obj)
            state.store.write_snapshot(best[1])
            state.recover()
        self.ready = True
        self._boot_replies.clear()

    def _validate_candidate(
        self, obj: str, candidate: dict[str, Any], quorums: Any
    ):
        """Revalidate one peer's snapshot; ``(write ts, snapshot)`` or None.

        Delegates to the shared :func:`validate_repair_candidate` (also the
        core of whole-state quarantine repair), scoping the signature
        scheme to this object the way every other per-object check does.
        """
        return validate_repair_candidate(
            candidate.get("snapshot"),
            candidate.get("fingerprint"),
            ScopedSignatureScheme(self.system.scheme, obj),
            quorums,
        )
