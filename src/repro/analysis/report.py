"""Plain-text table rendering for the benchmark harness.

Every experiment prints its results as an aligned monospace table (the shape
of the paper's analytical claims), via :func:`format_table`.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = [
    "format_table",
    "format_cell",
    "format_phase_breakdown",
    "format_campaign",
    "fit_power_law",
]


def format_cell(value: Any) -> str:
    """Render one table cell: floats sensibly rounded, big numbers grouped."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_phase_breakdown(
    source: Any, *, title: str | None = "per-phase latency breakdown"
) -> str:
    """Render the observability layer's latency series as an aligned table.

    ``source`` is either an :class:`~repro.obs.Instrumentation` handle or a
    plain ``{series: LatencyHistogram}`` mapping; series are the ``kind.name``
    histogram keys, so a strong write shows up as ``phase.READ-TS`` /
    ``phase.PREPARE`` / ``phase.WRITE`` rows — the paper's §3.3 per-phase
    cost model as measured.
    """
    histograms: Mapping[str, Any] = (
        source if isinstance(source, Mapping) else source.histograms
    )
    rows = [
        [
            series,
            hist.count,
            hist.mean,
            hist.quantile(0.5),
            hist.quantile(0.95),
            hist.maximum if hist.maximum is not None else 0.0,
        ]
        for series, hist in sorted(histograms.items())
    ]
    return format_table(
        ["series", "count", "mean", "p50", "p95", "max"], rows, title=title
    )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares exponent ``k`` of ``y ~ c * x^k`` (log-log fit).

    Used by the complexity experiments to verify that messages grow ~ |Q|^1
    and bytes ~ |Q|^2.
    """
    import math

    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    var = sum((a - mean_x) ** 2 for a in lx)
    return cov / var


def format_campaign(summary: Mapping[str, Any]) -> str:
    """Render a chaos campaign summary (sim or TCP) as aligned tables.

    Accepts the deterministic dicts produced by
    :meth:`repro.chaos.engine.CampaignResult.summary` and
    :func:`repro.chaos.tcp.run_tcp_campaign`; the rendering introduces no
    wall-clock or path content, so identical summaries format identically.
    """
    if summary.get("format") == "repro-chaos-tcp/1":
        rows = [
            [
                ep["variant"],
                "ok" if ep["ok"] else ",".join(ep["violations"]),
                ep["operations"],
                ep["reconnects"],
                sum(s.get("chunks_dropped", 0) for s in ep["proxy"].values()),
                sum(s.get("chunks_truncated", 0) for s in ep["proxy"].values()),
                sum(s.get("garbage_injected", 0) for s in ep["proxy"].values()),
                sum(s.get("resets", 0) for s in ep["proxy"].values()),
            ]
            for ep in summary["episodes"]
        ]
        return format_table(
            ["variant", "verdict", "ops", "redials", "dropped", "truncated",
             "garbage", "resets"],
            rows,
            title=f"TCP chaos campaign (seed {summary['seed']})",
        )

    rows = [
        [
            ep["episode"],
            ep["variant"],
            ep["store"],
            ep["attack"] or "-",
            ",".join(ep["byzantine"]) or "-",
            ep["faults"],
            ep["clients"],
            "ok" if ep["ok"] else ",".join(ep["violated"]),
            ep["operations"],
            ep["messages_dropped"],
            ep["messages_reordered"],
        ]
        for ep in summary["episodes_detail"]
    ]
    lines = [
        format_table(
            ["ep", "variant", "store", "attack", "byzantine", "faults",
             "clients", "verdict", "ops", "dropped", "reordered"],
            rows,
            title=(
                f"chaos campaign (seed {summary['seed']}, "
                f"{summary['episodes']} episodes)"
            ),
        )
    ]
    totals = summary["totals"]
    lines.append(
        f"totals: {totals['operations']} operations, "
        f"{totals['messages_sent']} messages "
        f"({totals['messages_dropped']} dropped, "
        f"{totals['messages_reordered']} reordered), "
        f"{totals['replica_crashes']} replica crashes"
    )
    if summary["violations"]:
        by_oracle = ", ".join(
            f"{name}={count}"
            for name, count in summary["violations_by_oracle"].items()
        )
        lines.append(
            f"VIOLATIONS: {summary['violations']} episodes ({by_oracle})"
        )
        for entry in summary["minimized"]:
            failed = [k for k, ok in entry["verdicts"].items() if not ok]
            lines.append(
                f"  minimized episode {entry['episode']}: "
                f"{entry['faults']} faults, violates {','.join(failed)}"
            )
    else:
        lines.append("violations: none")
    return "\n".join(lines)
