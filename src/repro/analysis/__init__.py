"""Analytical cost model (§3.3) and report formatting for experiments."""

from repro.analysis.costs import READ_PHASES, WRITE_PHASES, CostModel
from repro.analysis.report import (
    fit_power_law,
    format_campaign,
    format_phase_breakdown,
    format_table,
)

__all__ = [
    "CostModel",
    "WRITE_PHASES",
    "READ_PHASES",
    "format_table",
    "format_phase_breakdown",
    "format_campaign",
    "fit_power_law",
]
