"""Closed-form cost model of §3.3, used to cross-check measured numbers.

§3.3.1: an operation is O(|Q|) messages and O(|Q|^2) total bytes (some
messages carry certificates of size O(|Q|)); replica state is O(|C|) prepare
list entries plus an O(|Q|) certificate.  §3.3.2: each write costs two
public-key signatures per replica (phase-2 and phase-3 replies), and the
phase-3 signature can be produced in the background.

The model's absolute byte numbers are parameterised by measured constants
(signature size, value size) so experiments fit only the *shape*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quorum import QuorumSystem

__all__ = ["CostModel", "WRITE_PHASES", "READ_PHASES"]

#: Phases per operation by variant (normal case / worst case).  The
#: fastpath worst case is the verified fallback: two fast phases spent
#: before demotion never count (the client abandons them), but the signed
#: protocol it demotes to is a full 4-phase READ-TS / PREPARE / WRITE run
#: preceded by the failed FAST-PREP round.
WRITE_PHASES = {
    "base": (3, 3),
    "optimized": (2, 3),
    "strong": (3, 5),
    "fastpath": (2, 4),
}
READ_PHASES = (1, 2)


@dataclass(frozen=True)
class CostModel:
    """Analytical message/byte/signature counts for one configuration.

    Attributes:
        quorums: the deployment shape.
        signature_bytes: wire size of one signature (measured).
        header_bytes: fixed per-message overhead (measured).
        value_bytes: size of the application value (workload parameter).
    """

    quorums: QuorumSystem
    signature_bytes: int = 80
    header_bytes: int = 64
    value_bytes: int = 32

    @property
    def certificate_bytes(self) -> int:
        """A certificate is a quorum of signatures: O(|Q|)."""
        return self.quorums.quorum_size * self.signature_bytes + self.header_bytes

    # -- message counts (reliable network, no retransmissions) -----------------

    def write_messages(self, variant: str = "base") -> int:
        """Messages for one write: one RPC (request+reply to all n) per phase."""
        phases = WRITE_PHASES[variant][0]
        return 2 * phases * self.quorums.n

    def read_messages(self, *, write_back: bool = False) -> int:
        messages = 2 * self.quorums.n
        if write_back:
            # Write-back goes only to replicas that are behind; bound by n.
            messages += 2 * self.quorums.n
        return messages

    # -- byte counts -----------------------------------------------------------

    def write_bytes(self, variant: str = "base") -> int:
        """Total bytes for one write; certificate-bearing messages dominate.

        Phase-1 replies, the phase-2 request, and the phase-3 request all
        carry certificates, each O(|Q|), to O(|Q|) replicas: O(|Q|^2) total.
        """
        n = self.quorums.n
        cert = self.certificate_bytes
        hdr = self.header_bytes
        if variant == "fastpath":
            # The fast path trades signatures for MAC vectors: requests
            # carry an n-entry MAC row, replies an ack row + envelope, and
            # the FAST-WRITE ships the proof of writing — commitment,
            # opening, and >= 2f+1 ack rows of n MACs each, O(|Q|^2) bytes
            # (vs. the signed certificate's O(|Q|)).  Bigger frames, zero
            # signatures: E20 measures the trade.
            mac_row = n * 32
            proof = 64 + n * mac_row
            return (
                n * (cert + mac_row + hdr)  # FAST-PREP: prev Wcert + MACs
                + n * (mac_row + 32 + hdr)  # replies: ack row + envelope
                + n * (proof + self.value_bytes + mac_row + hdr)  # FAST-WRITE
                + n * (mac_row + 32 + hdr)  # write replies
            )
        if variant == "optimized":
            # READ-TS-PREP req/replies (replies carry certificate), then
            # WRITE request with certificate + value, and small replies.
            return (
                n * hdr  # merged phase-1 requests
                + n * (cert + hdr)  # replies with stored certificate
                + n * (cert + self.value_bytes + hdr)  # phase-3 requests
                + n * hdr  # write replies
            )
        return (
            n * hdr  # READ-TS requests
            + n * (cert + hdr)  # READ-TS replies with certificate
            + n * (cert + hdr)  # PREPARE requests carry Pmax (+ Wcert)
            + n * hdr  # PREPARE replies
            + n * (cert + self.value_bytes + hdr)  # WRITE requests
            + n * hdr  # WRITE replies
        )

    def read_bytes(self, *, write_back: bool = False) -> int:
        n = self.quorums.n
        total = n * self.header_bytes + n * (
            self.certificate_bytes + self.value_bytes + self.header_bytes
        )
        if write_back:
            total += n * (
                self.certificate_bytes + self.value_bytes + self.header_bytes
            ) + n * self.header_bytes
        return total

    # -- state sizes ------------------------------------------------------------

    def replica_state_bytes(self, writers: int) -> int:
        """data + certificate + prepare list: O(1) + O(|Q|) + O(|C|)."""
        plist_entry = 16 + 32  # timestamp + hash
        return (
            self.value_bytes
            + self.certificate_bytes
            + writers * plist_entry
        )

    # -- signature counts --------------------------------------------------------

    def write_signatures_per_replica(self) -> dict[str, int]:
        """Public-key signatures a replica performs for one write (§3.3.2)."""
        return {"foreground": 1, "background_eligible": 1}

    def write_signatures_client(self) -> int:
        """Client signatures per write: PREPARE and WRITE requests."""
        return 2

    def write_signature_ops(self, variant: str = "base") -> int:
        """Total public-key signature *creations* for one write, both sides,
        steady state on a reliable network.

        Base and optimized: the client signs its two mutating requests
        (PREPARE + WRITE, or the merged READ-TS-PREP + WRITE) and every
        replica signs three replies — the phase-1 envelope (base READ-TS
        reply; optimized envelope + embedded prep signature count as two of
        the three), the prepare acknowledgement, and the write
        acknowledgement — ``2 + 3n`` in total.

        Fastpath: the common case carries commitments and MAC vectors only;
        *zero* signatures, which the E20 benchmark asserts exactly.  (Lazy
        FAST-VOUCH signatures for certificate transfer are produced off the
        write path and accounted separately in
        :attr:`~repro.core.replica.ReplicaStats.vouch_signs`.)
        """
        if variant == "fastpath":
            return 0
        return 2 + 3 * self.quorums.n

    def fast_write_macs_computed(self) -> int:
        """MAC computations for one fastpath write, both sides.

        The client MACs its two request fan-outs for every replica
        (``2n``); each replica answers both rounds with an ``n``-entry
        acknowledgement row plus one reply envelope (``n + 1`` each, and
        every replica computes its full reply even when the client already
        has its quorum): ``2n + 2n(n + 1) = 2n(n + 2)``.

        MAC *checks* are not closed-form: stragglers whose replies arrive
        after the client's quorum completes are never verified, so the
        check count depends on delivery timing.  The computation count is
        deterministic and is what the tests pin against
        :attr:`~repro.crypto.authenticators.MacAuthenticator.macs_computed`.
        """
        n = self.quorums.n
        return 2 * n * (n + 2)

    # -- verification counts ------------------------------------------------

    def write_verifications_uncached(self) -> int:
        """Backend signature verifications per base write, no memoization.

        Counting both sides on a reliable network (no retransmissions):

        * client, phase 1: n reply envelopes + n certificates of |Q| sigs;
        * replicas, phase 2: n client signatures + n prev certificates;
        * client, phase 2: n PREPARE-REPLY signatures;
        * replicas, phase 3: n client signatures + n prepare certificates;
        * client, phase 3: n WRITE-REPLY signatures.
        """
        n = self.quorums.n
        q = self.quorums.quorum_size
        client = n * (1 + q) + n + n
        replicas = n * (1 + q) + n * (1 + q)
        return client + replicas

    def write_verifications_cached(self) -> int:
        """Backend verifications per base write through the memo (steady state).

        Each *distinct* (statement, signer, signature) triple costs one
        backend call; every repeat — the same certificate revalidated at
        another replica or role, every retransmission — is a memo hit.  Per
        write the distinct triples are: n phase-1 reply envelopes, the |Q|
        signatures inside the (shared) prev certificate, the client's two
        request signatures, n PREPARE-REPLY and n WRITE-REPLY signatures.

        Note this counts the whole deployment sharing one verifier (the
        in-process simulator); with per-node verifiers each node pays for
        its own distinct triples but still never re-verifies a repeat.
        """
        n = self.quorums.n
        q = self.quorums.quorum_size
        return n + q + 2 + n + n

    def verification_speedup(self) -> float:
        """Uncached / cached backend-verification ratio for one base write."""
        return self.write_verifications_uncached() / self.write_verifications_cached()

    # -- verification passes (batch prevalidation, E22) -----------------------

    def write_verify_calls_unbatched(self) -> int:
        """Verification *passes* per base write without batch prevalidation.

        A pass (:attr:`~repro.core.verification.VerificationStats.verify_calls`)
        is one trip into the verifier that performs non-memoized backend
        work, however many signatures it covers.  Handling messages one at
        a time, the client pays one pass per reply it examines before its
        quorum completes — ``q`` per round, three rounds — and the replicas
        pay one pass per signed request round (PREPARE and WRITE): the
        first replica reaches the backend, the shared memo absorbs the
        other ``n - 1`` and every certificate the client already validated.
        ``3q + 2`` in total.
        """
        return 3 * self.quorums.quorum_size + 2

    def write_verify_calls_batched(self, in_flight: int = 1) -> float:
        """Verification passes per write with batch prevalidation.

        :meth:`~repro.core.verification.Verifier.verify_batch` collapses a
        whole batch of signatures into one amortized pass, so each reply
        round costs the client a single pass regardless of quorum size
        (three passes) and the two signed request rounds cost one
        prevalidation pass each at the first replica (the memo again
        absorbs the rest).  With ``in_flight`` concurrent writes coalesced
        onto shared frames, same-round messages share each pass, dividing
        the per-write cost: ``(3 + 2) / in_flight``.
        """
        if in_flight < 1:
            raise ValueError(f"in_flight {in_flight} must be >= 1")
        return (3 + 2) / in_flight

    def batch_verify_reduction(self, in_flight: int = 1) -> float:
        """Unbatched / batched verification-pass ratio for one base write.

        ``(3q + 2) · in_flight / 5`` — 2.2x for f=1 with a single write in
        flight, which is the floor the E22 benchmark asserts (>= 2x), and
        growing linearly with pipeline depth.
        """
        return self.write_verify_calls_unbatched() / self.write_verify_calls_batched(
            in_flight
        )

    # -- encode counts (wire fast path) --------------------------------------

    def write_encode_calls_uncached(self) -> int:
        """Canonical wire encodes per base write with no encode-once cache.

        Every frame is serialised at the sender: 3 request fan-outs of n
        frames each, plus n replies per phase — ``2 * 3 * n`` total.
        """
        return 2 * 3 * self.quorums.n

    def write_encode_calls_cached(self) -> int:
        """Wire encodes per base write with the encode-once cache.

        Each request round is one message *instance* fanned out to n
        replicas: the first send encodes, the remaining ``n - 1`` (and all
        retransmissions) reuse the cached bytes.  Replies are distinct
        per-replica instances and still cost one encode each.
        """
        return 3 * 1 + 3 * self.quorums.n

    def encode_speedup(self) -> float:
        """Uncached / cached wire-encode ratio for one base write.

        ``2n / (1 + n)`` — approaches 2x from below as n grows, and the
        measured ratio is higher still because statement interning also
        removes the per-signature re-encodes this model does not count.
        """
        return self.write_encode_calls_uncached() / self.write_encode_calls_cached()

    # -- durability counts (write-ahead logging, E16) -------------------------

    def write_log_records(self, variant: str = "base") -> int:
        """WAL records one replica appends for one write, steady state.

        Per write: an ``spr`` signing-log entry and a ``plist-set`` at
        prepare time, the ``install`` and ``swr`` at write time, plus — once
        the *next* write's certificate arrives — a ``write-ts`` advance and
        the ``plist-del`` GC of the entry the certificate subsumed.  The
        optimized fast path logs the same set (optlist instead of plist on
        the contention-free path).  The fastpath variant adds the
        ``fastc-set`` commitment record at FAST-PREP time and its
        ``fastc-del`` GC: 8 records.
        """
        if variant == "fastpath":
            return 8
        return 6

    def write_log_bytes(self, variant: str = "base") -> int:
        """WAL bytes per write per replica; the install record dominates.

        The install record carries the value and a full certificate —
        O(|Q|) — while the other five records are O(1) timestamps, hashes
        and ids (~``header_bytes`` each framed).
        """
        small = self.header_bytes
        install = self.certificate_bytes + self.value_bytes + self.header_bytes
        return (self.write_log_records(variant) - 1) * small + install

    def fsyncs_per_write(self, *, fsync: str = "always") -> int:
        """fsync calls per write per replica under the given policy."""
        if fsync == "never":
            return 0
        return self.write_log_records()

    # -- reconfiguration counts (repro.shard, E19 companion) ------------------

    def reconfigure_messages(self) -> int:
        """Messages for one replace-one-member epoch change, reliable net.

        Sign round: ``CFG-SIGN-REQ`` to every old member except the one
        being removed and a ``CFG-SIGN-REPLY`` from each — ``2(n-1)``.
        Install round: ``EPOCH-INSTALL`` to the old ∪ new member union
        (``n+1`` nodes for a one-for-one swap) and an ``EPOCH-ACK`` from
        each — ``2(n+1)``.  Total ``4n``, independent of f beyond n=3f+1.
        """
        n = self.quorums.n
        return 2 * (n - 1) + 2 * (n + 1)

    def reconfigure_signatures(self) -> int:
        """Endorsement signatures produced for one epoch change.

        Every reachable old member (``n-1``) signs the successor statement
        once; the directory entry then carries a quorum's worth
        (:meth:`reconfigure_entry_signatures`) of them.
        """
        return self.quorums.n - 1

    def reconfigure_entry_signatures(self) -> int:
        """Signatures a directory entry carries: a quorum of the old epoch."""
        return self.quorums.quorum_size

    def reconfigure_verifications(self) -> int:
        """Backend signature verifications for one epoch change.

        The reconfigurator verifies each endorsement until it has a quorum
        (``q``) and validates its own entry at install (``q``); each of the
        ``n+1`` old ∪ new members validates the entry once on install
        (``q`` each).  Entry validation calls the scheme directly — these
        are *statement* signatures, not certificates, so the certificate
        memo never absorbs them: ``q(n+3)`` total.
        """
        q = self.quorums.quorum_size
        return q * (self.quorums.n + 3)

    def reconfigure_bytes(self) -> int:
        """Total bytes for one epoch change; install frames dominate.

        Sign requests/replies are O(1) (a member list and one signature);
        each install request carries the full entry — a quorum of
        signatures, O(|Q|) — to ``n+1`` nodes: O(|Q|^2) overall, the same
        asymptotic shape as a write.
        """
        n = self.quorums.n
        hdr = self.header_bytes
        entry = self.certificate_bytes + hdr  # config + quorum of sigs
        return (
            (n - 1) * hdr  # sign requests (config statement)
            + (n - 1) * (self.signature_bytes + hdr)  # sign replies
            + (n + 1) * (entry + hdr)  # install requests carry the entry
            + (n + 1) * hdr  # acks
        )

    def state_transfer_messages(self) -> int:
        """Messages for one joining replica's bootstrap, reliable net.

        One ``XFER-REQ`` to each of the n previous members and one
        ``XFER-REPLY`` back — ``2n``.  The joiner only *needs* 2f+1
        replies, but on a reliable network every request lands and every
        member answers.
        """
        return 2 * self.quorums.n

    def state_transfer_bytes(self, objects: int) -> int:
        """Bytes for one bootstrap carrying ``objects`` object snapshots.

        Each reply ships, per object, the durable state (value, prepare
        certificate, timestamps — O(|Q|)) plus a 32-byte fingerprint; all
        n members send the full set, so the transfer is ``O(n · objects ·
        |Q|)`` and the 2f+1-of-n validation overlap is pure redundancy
        bought for Byzantine tolerance.
        """
        n = self.quorums.n
        snapshot = self.certificate_bytes + self.value_bytes + self.header_bytes
        return n * self.header_bytes + n * objects * (snapshot + 32)

    def state_transfer_verifications(self, objects: int) -> int:
        """Certificate verifications a joining replica performs.

        Per object it validates every distinct candidate's embedded
        prepare certificate (``q`` signatures each) — but the certificate
        memo collapses identical candidates from different members, so the
        steady-state cost is one certificate per object: ``objects · q``.
        """
        return objects * self.quorums.quorum_size

    def directory_fetch_messages(self) -> int:
        """Messages for one stale client's refresh: ``DIR-REQ`` to all n
        members of the believed configuration plus n replies."""
        return 2 * self.quorums.n

    def repair_messages(self) -> int:
        """Messages for one quarantined replica's rebuild, reliable net.

        One ``REPAIR-REQ`` to each of its ``n - 1`` peers and one
        ``REPAIR-REPLY`` back — ``2(n - 1)``: the same shape as a joining
        replica's bootstrap (:meth:`state_transfer_messages`) minus the
        request a joiner would address to the slot it is filling.
        Completion needs only ``2f + 1`` replies, but on a reliable
        network every peer answers one pull.
        """
        return 2 * (self.quorums.n - 1)

    def repair_verifications(self) -> int:
        """Certificate verifications one repair performs, steady state.

        Every collected candidate's embedded prepare certificate is
        re-validated (``q`` signatures each), but identical candidates
        from different peers collapse in the verification memo — with all
        correct peers agreeing, that is one certificate: ``q`` checks.
        """
        return self.quorums.quorum_size

    # -- frame counts (cross-object batching) --------------------------------

    def workload_frames_unbatched(self, objects: int, phases: int = 3) -> int:
        """Wire frames for one write per object, no batching.

        Each object's write is ``phases`` request fan-outs and ``phases``
        reply fan-ins of n frames each.
        """
        return objects * 2 * phases * self.quorums.n

    def workload_frames_batched(
        self, objects: int, in_flight: int, phases: int = 3
    ) -> int:
        """Wire frames with ``in_flight`` concurrent objects coalesced.

        Concurrent same-round requests to a replica merge into one frame
        (and the replica's replies merge symmetrically), so each group of
        ``in_flight`` objects shares its frames.
        """
        groups = -(-objects // in_flight)  # ceil
        return groups * 2 * phases * self.quorums.n

    def batching_frame_reduction(self, objects: int, in_flight: int) -> float:
        """Unbatched / batched frame ratio; ``in_flight`` in the ideal case."""
        return self.workload_frames_unbatched(objects) / self.workload_frames_batched(
            objects, in_flight
        )

    # -- open-loop capacity (E21) ------------------------------------------

    def request_frames_per_replica(
        self, variant: str = "base", *, write_fraction: float = 1.0
    ) -> float:
        """Request frames each replica serves per operation, normal case.

        Every phase of an operation is one client request fan-out, and each
        replica processes exactly one inbound frame per phase (replies are
        sends, not served work).  A write costs the variant's normal-case
        phase count; a read costs its single phase-1 request.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"write_fraction {write_fraction} out of range")
        write_frames = WRITE_PHASES[variant][0]
        read_frames = READ_PHASES[0]
        return write_fraction * write_frames + (1.0 - write_fraction) * read_frames

    def open_loop_capacity(
        self,
        service_delay: float,
        variant: str = "base",
        *,
        write_fraction: float = 1.0,
    ) -> float:
        """Saturation throughput (ops/s) of an open-loop arrival stream.

        Each replica is a single-server queue spending ``service_delay``
        per inbound request frame, and every replica sees every frame (the
        client broadcasts each phase), so the group saturates together at

            capacity = 1 / (frames_per_op_per_replica × service_delay).

        Offered load above this diverges (queues grow without bound — the
        open-loop meltdown the E21 curve shows); below it, throughput
        tracks the offered rate.
        """
        if service_delay <= 0:
            return float("inf")
        frames = self.request_frames_per_replica(
            variant, write_fraction=write_fraction
        )
        return 1.0 / (frames * service_delay)

    def open_loop_utilization(
        self,
        offered_rate: float,
        service_delay: float,
        variant: str = "base",
        *,
        write_fraction: float = 1.0,
    ) -> float:
        """Replica utilisation ρ at the offered rate (ρ ≥ 1 ⇒ unstable)."""
        capacity = self.open_loop_capacity(
            service_delay, variant, write_fraction=write_fraction
        )
        if capacity == float("inf"):
            return 0.0
        return offered_rate / capacity
