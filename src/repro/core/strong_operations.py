"""The §7 strong-variant write operation (BFT-linearizable+).

The modification: the client's PREPARE must carry a *justify* write
certificate proving that the proposed timestamp is the successor of a write
that actually completed.  The client assembles it as follows:

* If all phase-1 (``READ-TS``) replies in the quorum report the same
  timestamp, their attached timestamp vouches (signatures over
  ``<WRITE-REPLY, ts>``) already form the certificate.
* Otherwise, it "redoes phase 1 as a normal read" to fetch the value, writes
  it back to the replicas that are behind, and combines the read replies'
  vouches with the write-back's ``WRITE-REPLY`` signatures into the
  certificate.

This bounds the lurking-write timestamp to the successor of a value stored
at ≥ f+1 correct replicas when the bad client stopped, so two subsequent
good-client writes mask it (§7.2).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    Message,
    ReadReply,
    ReadRequest,
    ReadTsReply,
    WriteReply,
    WriteRequest,
)
from repro.core.operations import Send, WriteOperation
from repro.core.statements import (
    read_reply_statement,
    write_reply_statement,
    write_request_statement,
)
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature

__all__ = ["StrongWriteOperation"]

_PHASE_FETCH = 11
_PHASE_WRITE_BACK = 12


class StrongWriteOperation(WriteOperation):
    """Write with a justify certificate in PREPARE (§7.2)."""

    op_name = "write"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        value: Any,
        nonce: bytes,
        write_cert: Optional[WriteCertificate],
    ) -> None:
        super().__init__(client_id, config, value, nonce, write_cert)
        self._justify: Optional[WriteCertificate] = None
        self._fetch_best: Optional[ReadReply] = None

    def _justify_cert(self) -> Optional[WriteCertificate]:
        return self._justify

    # -- phase 1: READ-TS with vouch validation -----------------------------

    def _validate_read_ts_reply(
        self, sender: str, message: Message
    ) -> Optional[ReadTsReply]:
        reply = super()._validate_read_ts_reply(sender, message)
        if reply is None:
            return None
        if not self._check_vouch(sender, reply.ts_vouch, reply.cert):
            return None
        return reply

    def _check_vouch(
        self, sender: str, vouch: Optional[Signature], cert: PrepareCertificate
    ) -> bool:
        if vouch is None or vouch.signer != sender:
            return False
        statement = write_reply_statement(cert.ts)
        return self.config.verifier.verify_statement(vouch, statement)

    # -- transitions --------------------------------------------------------

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if self._phase == 1:
            if not self._collector.have_quorum:
                return []
            replies: list[ReadTsReply] = list(self._collector.replies.values())
            timestamps = {r.cert.ts for r in replies}
            if len(timestamps) == 1:
                # All agree: the vouches are the justify certificate.
                ts = timestamps.pop()
                signatures = tuple(
                    r.ts_vouch
                    for r in replies
                    if r.ts_vouch is not None and r.cert.ts == ts
                )
                self._justify = WriteCertificate(ts=ts, signatures=signatures)
                p_max = max((r.cert for r in replies), key=lambda c: c.ts)
                return self._begin_prepare(p_max)
            return self._begin_fetch()
        if self._phase == _PHASE_FETCH:
            if not self._collector.have_quorum:
                return []
            return self._after_fetch()
        if self._phase == _PHASE_WRITE_BACK:
            if self._collector.have_quorum:
                assert self._fetch_best is not None
                return self._make_justify(
                    self._fetch_best, dict(self._collector.replies)
                )
            return []
        return super()._advance()

    # -- value fetch (redo phase 1 as a normal read, §7.2) -------------------

    def _begin_fetch(self) -> list[Send]:
        self._phase = _PHASE_FETCH
        return self._broadcast(
            ReadRequest(nonce=self.nonce), self._validate_fetch_reply
        )

    def _validate_fetch_reply(self, sender: str, message: Message) -> Optional[ReadReply]:
        if not isinstance(message, ReadReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = read_reply_statement(
            message.value, message.cert.to_wire(), message.nonce
        )
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        if not self.config.verifier.certificate_valid(message.cert):
            return None
        if message.cert.h != hash_value(message.value):
            return None
        if not self._check_vouch(sender, message.ts_vouch, message.cert):
            return None
        return message

    def _after_fetch(self) -> list[Send]:
        assert self._collector is not None
        replies: list[ReadReply] = list(self._collector.replies.values())
        best = max(replies, key=lambda r: (r.cert.ts, r.cert.h))
        self._fetch_best = best
        vouches = {
            sender: r.ts_vouch
            for sender, r in self._collector.replies.items()
            if r.cert.ts == best.cert.ts and r.ts_vouch is not None
        }
        if len(vouches) >= self.config.quorum_size:
            return self._make_justify(best, vouches)
        return self._begin_write_back(best, vouches)

    # -- write-back of the highest value ------------------------------------

    def _begin_write_back(
        self, best: ReadReply, vouches: dict[str, Signature]
    ) -> list[Send]:
        self._phase = _PHASE_WRITE_BACK
        statement = write_request_statement(best.value, best.cert.to_wire())
        request = WriteRequest(
            value=best.value,
            prepare_cert=best.cert,
            signature=self._sign(statement),
        )
        targets = tuple(
            r for r in self.config.quorums.replica_ids if r not in vouches
        )
        # The vouch holders are credited into the round: they count toward
        # the quorum and are excluded from retransmission, and the combined
        # replies (vouches + WRITE-REPLY signatures) form the justify
        # certificate once a quorum is reached.
        return self._broadcast(
            request, self._validate_write_back_reply, targets, prefill=vouches
        )

    def _validate_write_back_reply(
        self, sender: str, message: Message
    ) -> Optional[Signature]:
        assert self._fetch_best is not None
        if not isinstance(message, WriteReply):
            return None
        if message.ts != self._fetch_best.cert.ts:
            return None
        if message.signature.signer != sender:
            return None
        statement = write_reply_statement(message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    def _make_justify(
        self, best: ReadReply, vouches: dict[str, Signature]
    ) -> list[Send]:
        signatures = tuple(vouches.values())[: self.config.n]
        self._justify = WriteCertificate(ts=best.cert.ts, signatures=signatures)
        return self._begin_prepare(best.cert)
