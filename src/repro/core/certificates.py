"""Prepare and write certificates (§3.2).

A certificate is "a collection of 2f + 1 authenticated messages from
different replicas that vouch for some fact".  Certificates are the paper's
central mechanism: they let a client prove to replicas (and to *other*
clients, via phase-1 replies) that a fact holds without those replicas having
to hear it from a quorum directly.

* A **prepare certificate** for ``(ts, h)`` is a quorum of
  ``<PREPARE-REPLY, ts, h>_sigma_r`` statements: it proves the write of a
  value with hash ``h`` at timestamp ``ts`` was approved.
* A **write certificate** for ``ts`` is a quorum of
  ``<WRITE-REPLY, ts>_sigma_r`` statements: it proves a write with
  timestamp ``ts`` completed at a quorum.

The genesis prepare certificate bootstraps the system: every replica starts
with ``data = None`` at the zero timestamp, and validators accept the (empty)
genesis certificate for exactly that state and no other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.quorum import QuorumSystem
from repro.core.statements import prepare_reply_statement, write_reply_statement
from repro.core.timestamp import ZERO_TS, Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature, SignatureScheme
from repro.errors import CertificateError

__all__ = [
    "PrepareCertificate",
    "WriteCertificate",
    "GENESIS_VALUE",
    "genesis_prepare_certificate",
]

#: The value every replica holds before the first write.
GENESIS_VALUE = None


def _signatures_from_wire(wire: Any) -> tuple[Signature, ...]:
    if not isinstance(wire, tuple):
        raise CertificateError(f"malformed signature list: {wire!r}")
    return tuple(Signature.from_wire(item) for item in wire)


@dataclass(frozen=True)
class PrepareCertificate:
    """A quorum of ``PREPARE-REPLY`` statements for one ``(ts, h)`` pair."""

    ts: Timestamp
    value_hash: bytes
    signatures: tuple[Signature, ...]

    @property
    def h(self) -> bytes:
        """The paper's ``c.h`` accessor."""
        return self.value_hash

    @property
    def is_genesis(self) -> bool:
        return self.ts == ZERO_TS and not self.signatures

    def signers(self) -> frozenset[str]:
        """The distinct replica identities that signed this certificate."""
        return frozenset(sig.signer for sig in self.signatures)

    def to_wire(self) -> tuple[Any, ...]:
        """Canonical wire representation (nested in messages)."""
        return (
            self.ts.to_wire(),
            self.value_hash,
            tuple(sig.to_wire() for sig in self.signatures),
        )

    @classmethod
    def from_wire(cls, wire: Any) -> "PrepareCertificate":
        """Parse the wire form; raises CertificateError when malformed."""
        if not isinstance(wire, tuple) or len(wire) != 3:
            raise CertificateError(f"malformed prepare certificate: {wire!r}")
        ts_wire, value_hash, sigs_wire = wire
        if not isinstance(value_hash, bytes):
            raise CertificateError("prepare certificate hash is not bytes")
        return cls(
            ts=Timestamp.from_wire(ts_wire),
            value_hash=value_hash,
            signatures=_signatures_from_wire(sigs_wire),
        )

    def validate(self, scheme: SignatureScheme, quorums: QuorumSystem) -> None:
        """Check well-formedness and all signatures.

        ``scheme`` may be any object exposing ``verify_statement`` — protocol
        code passes the memoizing :class:`~repro.core.verification.Verifier`
        so per-signature checks hit its cache.

        Raises:
            CertificateError: if the certificate does not contain a quorum of
                valid, distinct replica signatures over the same statement
                (or is a non-genuine genesis certificate).
        """
        if self.is_genesis:
            if self.value_hash != hash_value(GENESIS_VALUE):
                raise CertificateError("genesis certificate with wrong value hash")
            return
        if self.ts == ZERO_TS:
            raise CertificateError("non-genesis certificate with zero timestamp")
        signers = self.signers()
        if len(signers) != len(self.signatures):
            raise CertificateError("duplicate signer in prepare certificate")
        if not quorums.is_quorum(signers):
            raise CertificateError(
                f"prepare certificate signers {sorted(signers)} do not form a quorum"
            )
        statement = prepare_reply_statement(self.ts, self.value_hash)
        for sig in self.signatures:
            if not scheme.verify_statement(sig, statement):
                raise CertificateError(
                    f"invalid prepare-certificate signature from {sig.signer}"
                )

    def is_valid(self, scheme: SignatureScheme, quorums: QuorumSystem) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(scheme, quorums)
        except CertificateError:
            return False
        return True


@dataclass(frozen=True)
class WriteCertificate:
    """A quorum of ``WRITE-REPLY`` statements for one timestamp."""

    ts: Timestamp
    signatures: tuple[Signature, ...]

    def signers(self) -> frozenset[str]:
        """The distinct replica identities that signed this certificate."""
        return frozenset(sig.signer for sig in self.signatures)

    def to_wire(self) -> tuple[Any, ...]:
        """Canonical wire representation (nested in messages)."""
        return (self.ts.to_wire(), tuple(sig.to_wire() for sig in self.signatures))

    @classmethod
    def from_wire(cls, wire: Any) -> "WriteCertificate":
        """Parse the wire form; raises CertificateError when malformed."""
        if not isinstance(wire, tuple) or len(wire) != 2:
            raise CertificateError(f"malformed write certificate: {wire!r}")
        ts_wire, sigs_wire = wire
        return cls(
            ts=Timestamp.from_wire(ts_wire),
            signatures=_signatures_from_wire(sigs_wire),
        )

    def validate(self, scheme: SignatureScheme, quorums: QuorumSystem) -> None:
        """Check well-formedness and all signatures (see PrepareCertificate).

        As there, ``scheme`` may be the memoizing verifier.
        """
        signers = self.signers()
        if len(signers) != len(self.signatures):
            raise CertificateError("duplicate signer in write certificate")
        if not quorums.is_quorum(signers):
            raise CertificateError(
                f"write certificate signers {sorted(signers)} do not form a quorum"
            )
        statement = write_reply_statement(self.ts)
        for sig in self.signatures:
            if not scheme.verify_statement(sig, statement):
                raise CertificateError(
                    f"invalid write-certificate signature from {sig.signer}"
                )

    def is_valid(self, scheme: SignatureScheme, quorums: QuorumSystem) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(scheme, quorums)
        except CertificateError:
            return False
        return True


def genesis_prepare_certificate() -> PrepareCertificate:
    """The certificate every replica's state starts from."""
    return PrepareCertificate(
        ts=ZERO_TS, value_hash=hash_value(GENESIS_VALUE), signatures=()
    )
