"""Prepare and write certificates (§3.2).

A certificate is "a collection of 2f + 1 authenticated messages from
different replicas that vouch for some fact".  Certificates are the paper's
central mechanism: they let a client prove to replicas (and to *other*
clients, via phase-1 replies) that a fact holds without those replicas having
to hear it from a quorum directly.

* A **prepare certificate** for ``(ts, h)`` is a quorum of
  ``<PREPARE-REPLY, ts, h>_sigma_r`` statements: it proves the write of a
  value with hash ``h`` at timestamp ``ts`` was approved.
* A **write certificate** for ``ts`` is a quorum of
  ``<WRITE-REPLY, ts>_sigma_r`` statements: it proves a write with
  timestamp ``ts`` completed at a quorum.

The genesis prepare certificate bootstraps the system: every replica starts
with ``data = None`` at the zero timestamp, and validators accept the (empty)
genesis certificate for exactly that state and no other.

The fast path (``repro.core.fast_replica``) extends both certificate kinds
with alternative **evidence**:

* ``evidence="proof"`` — the signature-free form: a
  :class:`~repro.crypto.commitments.ProofOfWriting` (commit/reveal plus a
  quorum of MAC rows).  MAC rows are only checkable by the replicas they
  address, so :meth:`PrepareCertificate.validate` *refuses* proof evidence;
  replicas validate their own column through a dedicated hook instead, and
  proof certificates never convince third parties directly.
* ``evidence="vouch"`` — the transferable upgrade: ``f+1`` replica
  signatures over ``<FAST-VOUCH, ts, h>``, each vouching that the signer
  installed that fast write after checking its own proof column.  At least
  one signer is correct, so a vouch certificate is as convincing as a
  quorum one — and it *is* third-party verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.quorum import QuorumSystem
from repro.core.statements import (
    fast_vouch_statement,
    prepare_reply_statement,
    write_reply_statement,
)
from repro.core.timestamp import ZERO_TS, Timestamp
from repro.crypto.commitments import ProofOfWriting
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature, SignatureScheme
from repro.errors import CertificateError

__all__ = [
    "PrepareCertificate",
    "WriteCertificate",
    "GENESIS_VALUE",
    "genesis_prepare_certificate",
]

#: The value every replica holds before the first write.
GENESIS_VALUE = None


def _signatures_from_wire(wire: Any) -> tuple[Signature, ...]:
    if not isinstance(wire, tuple):
        raise CertificateError(f"malformed signature list: {wire!r}")
    return tuple(Signature.from_wire(item) for item in wire)


@dataclass(frozen=True)
class PrepareCertificate:
    """Evidence that the write of ``(ts, h)`` was approved.

    ``evidence`` selects the form: ``"quorum"`` (a quorum of signed
    ``PREPARE-REPLY`` statements — the paper's certificate), ``"vouch"``
    (``f+1`` signed fast vouches), or ``"proof"`` (a signature-free
    :class:`~repro.crypto.commitments.ProofOfWriting`, checkable only by
    the replicas its MAC rows address).
    """

    ts: Timestamp
    value_hash: bytes
    signatures: tuple[Signature, ...]
    evidence: str = "quorum"
    proof: Optional[ProofOfWriting] = field(default=None)

    @property
    def h(self) -> bytes:
        """The paper's ``c.h`` accessor."""
        return self.value_hash

    @property
    def is_genesis(self) -> bool:
        return (
            self.ts == ZERO_TS
            and not self.signatures
            and self.evidence == "quorum"
        )

    def signers(self) -> frozenset[str]:
        """The distinct replica identities that signed this certificate."""
        return frozenset(sig.signer for sig in self.signatures)

    def to_wire(self) -> tuple[Any, ...]:
        """Canonical wire representation (nested in messages).

        Quorum evidence keeps the original 3-tuple so pre-fast-path wire
        artifacts still parse; the other forms are tagged 4-tuples.
        """
        if self.evidence == "quorum":
            return (
                self.ts.to_wire(),
                self.value_hash,
                tuple(sig.to_wire() for sig in self.signatures),
            )
        if self.evidence == "vouch":
            return (
                "vouch",
                self.ts.to_wire(),
                self.value_hash,
                tuple(sig.to_wire() for sig in self.signatures),
            )
        assert self.proof is not None
        return ("proof", self.ts.to_wire(), self.value_hash, self.proof.to_wire())

    @classmethod
    def from_wire(cls, wire: Any) -> "PrepareCertificate":
        """Parse the wire form; raises CertificateError when malformed."""
        if isinstance(wire, tuple) and len(wire) == 4:
            tag, ts_wire, value_hash, payload = wire
            if not isinstance(value_hash, bytes):
                raise CertificateError("prepare certificate hash is not bytes")
            if tag == "vouch":
                return cls(
                    ts=Timestamp.from_wire(ts_wire),
                    value_hash=value_hash,
                    signatures=_signatures_from_wire(payload),
                    evidence="vouch",
                )
            if tag == "proof":
                return cls(
                    ts=Timestamp.from_wire(ts_wire),
                    value_hash=value_hash,
                    signatures=(),
                    evidence="proof",
                    proof=ProofOfWriting.from_wire(payload),
                )
            raise CertificateError(f"unknown certificate evidence tag {tag!r}")
        if not isinstance(wire, tuple) or len(wire) != 3:
            raise CertificateError(f"malformed prepare certificate: {wire!r}")
        ts_wire, value_hash, sigs_wire = wire
        if not isinstance(value_hash, bytes):
            raise CertificateError("prepare certificate hash is not bytes")
        return cls(
            ts=Timestamp.from_wire(ts_wire),
            value_hash=value_hash,
            signatures=_signatures_from_wire(sigs_wire),
        )

    def validate(self, scheme: SignatureScheme, quorums: QuorumSystem) -> None:
        """Check well-formedness and all signatures.

        ``scheme`` may be any object exposing ``verify_statement`` — protocol
        code passes the memoizing :class:`~repro.core.verification.Verifier`
        so per-signature checks hit its cache.

        Raises:
            CertificateError: if the certificate does not contain a quorum of
                valid, distinct replica signatures over the same statement
                (or is a non-genuine genesis certificate).  Proof evidence
                always raises here — it is never third-party verifiable;
                only the fast replica's own-column hook can accept it.
        """
        if self.evidence == "proof":
            raise CertificateError(
                "proof-evidence certificate is not third-party verifiable"
            )
        if self.evidence == "vouch":
            self._validate_vouch(scheme, quorums)
            return
        if self.is_genesis:
            if self.value_hash != hash_value(GENESIS_VALUE):
                raise CertificateError("genesis certificate with wrong value hash")
            return
        if self.ts == ZERO_TS:
            raise CertificateError("non-genesis certificate with zero timestamp")
        signers = self.signers()
        if len(signers) != len(self.signatures):
            raise CertificateError("duplicate signer in prepare certificate")
        if not quorums.is_quorum(signers):
            raise CertificateError(
                f"prepare certificate signers {sorted(signers)} do not form a quorum"
            )
        statement = prepare_reply_statement(self.ts, self.value_hash)
        for sig in self.signatures:
            if not scheme.verify_statement(sig, statement):
                raise CertificateError(
                    f"invalid prepare-certificate signature from {sig.signer}"
                )

    def _validate_vouch(
        self, scheme: SignatureScheme, quorums: QuorumSystem
    ) -> None:
        """``f+1`` distinct replica signatures over ``<FAST-VOUCH, ts, h>``.

        One of any ``f+1`` replicas is correct, and a correct replica only
        vouches for fast writes it fully validated and installed — so the
        threshold is ``f+1``, not a quorum.
        """
        if self.ts == ZERO_TS:
            raise CertificateError("vouch certificate with zero timestamp")
        signers = self.signers()
        if len(signers) != len(self.signatures):
            raise CertificateError("duplicate signer in vouch certificate")
        replicas = set(quorums.replica_ids)
        if not signers <= replicas:
            raise CertificateError("vouch certificate signer is not a replica")
        if len(signers) < quorums.f + 1:
            raise CertificateError(
                f"vouch certificate has {len(signers)} signers; needs f+1"
            )
        statement = fast_vouch_statement(self.ts.to_wire(), self.value_hash)
        for sig in self.signatures:
            if not scheme.verify_statement(sig, statement):
                raise CertificateError(
                    f"invalid vouch signature from {sig.signer}"
                )

    def is_valid(self, scheme: SignatureScheme, quorums: QuorumSystem) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(scheme, quorums)
        except CertificateError:
            return False
        return True


@dataclass(frozen=True)
class WriteCertificate:
    """A quorum of ``WRITE-REPLY`` statements for one timestamp.

    With ``evidence="proof"`` the certificate instead carries the fast
    write's MAC rows (one per acking replica, over
    ``<FAST-WRITE-ACK, ts>``).  Like proof prepare certificates these are
    only checkable by the replicas the rows address; clients keep them for
    their own bookkeeping and piggyback them so fast replicas can prune
    prepare state, but :meth:`validate` refuses them.
    """

    ts: Timestamp
    signatures: tuple[Signature, ...]
    evidence: str = "quorum"
    rows: tuple[tuple[str, tuple[tuple[str, bytes], ...]], ...] = ()

    def signers(self) -> frozenset[str]:
        """The distinct replica identities that signed this certificate."""
        return frozenset(sig.signer for sig in self.signatures)

    def ackers(self) -> frozenset[str]:
        """Distinct replicas contributing MAC rows (proof evidence)."""
        return frozenset(acker for acker, _row in self.rows)

    def to_wire(self) -> tuple[Any, ...]:
        """Canonical wire representation (nested in messages)."""
        if self.evidence == "proof":
            return ("proof", self.ts.to_wire(), self.rows)
        return (self.ts.to_wire(), tuple(sig.to_wire() for sig in self.signatures))

    @classmethod
    def from_wire(cls, wire: Any) -> "WriteCertificate":
        """Parse the wire form; raises CertificateError when malformed."""
        if isinstance(wire, tuple) and len(wire) == 3 and wire[0] == "proof":
            _tag, ts_wire, rows = wire
            if not isinstance(rows, tuple):
                raise CertificateError("proof write certificate rows not a tuple")
            return cls(
                ts=Timestamp.from_wire(ts_wire),
                signatures=(),
                evidence="proof",
                rows=rows,
            )
        if not isinstance(wire, tuple) or len(wire) != 2:
            raise CertificateError(f"malformed write certificate: {wire!r}")
        ts_wire, sigs_wire = wire
        return cls(
            ts=Timestamp.from_wire(ts_wire),
            signatures=_signatures_from_wire(sigs_wire),
        )

    def validate(self, scheme: SignatureScheme, quorums: QuorumSystem) -> None:
        """Check well-formedness and all signatures (see PrepareCertificate).

        As there, ``scheme`` may be the memoizing verifier; proof evidence
        always raises (own-column checks live in the fast replica).
        """
        if self.evidence == "proof":
            raise CertificateError(
                "proof-evidence certificate is not third-party verifiable"
            )
        signers = self.signers()
        if len(signers) != len(self.signatures):
            raise CertificateError("duplicate signer in write certificate")
        if not quorums.is_quorum(signers):
            raise CertificateError(
                f"write certificate signers {sorted(signers)} do not form a quorum"
            )
        statement = write_reply_statement(self.ts)
        for sig in self.signatures:
            if not scheme.verify_statement(sig, statement):
                raise CertificateError(
                    f"invalid write-certificate signature from {sig.signer}"
                )

    def is_valid(self, scheme: SignatureScheme, quorums: QuorumSystem) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(scheme, quorums)
        except CertificateError:
            return False
        return True


def genesis_prepare_certificate() -> PrepareCertificate:
    """The certificate every replica's state starts from."""
    return PrepareCertificate(
        ts=ZERO_TS, value_hash=hash_value(GENESIS_VALUE), signatures=()
    )
