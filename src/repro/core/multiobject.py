"""Multi-object deployments (§3.2).

The paper presents a single object for clarity but notes that "our system
can deal with multiple objects; each object would have a distinct identifier
and each read and write would identify the object of interest".  This module
supplies that generalisation without perturbing the verified single-object
state machines:

* every request/reply is wrapped in an :class:`ObjectMessage` envelope that
  carries the object identifier;
* each object gets its own replica state machine and client operation
  driver, created lazily;
* **signatures are scoped per object**: a :class:`ScopedSignatureScheme`
  prefixes every signed statement with the object id, so a certificate or
  signed request for object A can never be replayed against object B;
* envelopes may carry a configuration **epoch** tag (``repro.shard``):
  a replica pinned to an epoch rejects envelopes tagged with any other
  epoch (outside an explicit handoff allowance) by answering with an
  :class:`EpochStaleReply`, which tells the client to refresh its shard
  directory before retrying.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, ClassVar, Optional

from repro.core.batching import (
    BatchEnvelope,
    BatchStats,
    expand_message,
    prevalidate_batch,
)
from repro.core.client import BftBcClient
from repro.core.config import SystemConfig
from repro.core.messages import (
    Message,
    message_from_wire,
    message_to_wire,
    message_wire_bytes,
    register_message,
)
from repro.core.operations import Send
from repro.core.replica import BftBcReplica
from repro.crypto.signatures import Signature, SignatureScheme
from repro.encoding import canonical_encode
from repro.errors import ProtocolError
from repro.storage.base import ReplicaStore

__all__ = [
    "ObjectMessage",
    "EpochStaleReply",
    "ScopedSignatureScheme",
    "MultiObjectReplica",
    "MultiObjectClient",
]


@register_message
@dataclass(frozen=True)
class ObjectMessage(Message):
    """Envelope: ``payload`` is the wire form of a single-object message.

    ``epoch`` is ``None`` for single-group deployments; sharded clients tag
    every envelope with the configuration epoch they believe governs the
    object's group so replicas can detect stale routing.
    """

    KIND: ClassVar[str] = "OBJ"
    obj: str
    payload: dict[str, Any]
    epoch: Optional[int] = None

    def to_wire(self) -> dict[str, Any]:
        return {"obj": self.obj, "payload": self.payload, "epoch": self.epoch}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ObjectMessage":
        obj = wire["obj"]
        payload = wire["payload"]
        epoch = wire.get("epoch")
        if (
            not isinstance(obj, str)
            or not isinstance(payload, dict)
            or not (epoch is None or isinstance(epoch, int))
        ):
            raise ProtocolError(f"malformed object envelope: {wire!r}")
        return cls(obj=obj, payload=payload, epoch=epoch)


@register_message
@dataclass(frozen=True)
class EpochStaleReply(Message):
    """Replica's answer to an envelope tagged with the wrong epoch.

    Carries the epoch the replica currently serves.  The reply is unsigned
    — it only *prompts* a directory refresh, and the refreshed directory
    entries themselves are quorum-signed, so forging it can waste a fetch
    but never misroute an operation.
    """

    KIND: ClassVar[str] = "EPOCH-STALE"
    obj: str
    epoch: int

    def to_wire(self) -> dict[str, Any]:
        return {"obj": self.obj, "epoch": self.epoch}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "EpochStaleReply":
        obj = wire["obj"]
        epoch = wire["epoch"]
        if not isinstance(obj, str) or not isinstance(epoch, int):
            raise ProtocolError(f"malformed epoch-stale reply: {wire!r}")
        return cls(obj=obj, epoch=epoch)


class ScopedSignatureScheme(SignatureScheme):
    """Binds every signature to one object's namespace.

    Shares the base scheme's registry and stats; only the signed bytes are
    namespaced.  Without this, a Byzantine client could take a prepare
    certificate earned on a throwaway object and replay it against a
    valuable one.
    """

    def __init__(self, base: SignatureScheme, scope: str) -> None:
        self._base = base
        self._prefix = canonical_encode(("object-scope", scope))
        self.registry = base.registry
        self.stats = base.stats
        self.scope = scope

    def sign(self, node_id: str, message: bytes) -> Signature:
        return self._base.sign(node_id, self._prefix + message)

    def verify(self, signature: Signature, message: bytes) -> bool:
        return self._base.verify(signature, self._prefix + message)

    def _sign(self, node_id: str, message: bytes) -> bytes:  # pragma: no cover
        raise NotImplementedError("scoped schemes delegate whole-signature calls")

    def _verify(self, signature: Signature, message: bytes) -> bool:  # pragma: no cover
        raise NotImplementedError("scoped schemes delegate whole-signature calls")


def _scoped_config(config: SystemConfig, obj: str) -> SystemConfig:
    return replace(config, scheme=ScopedSignatureScheme(config.scheme, obj))


def _decode_payload(message: ObjectMessage) -> Optional[Message]:
    """Decode an envelope's payload once, caching the result on the instance.

    Both the batch prevalidation pass and the per-message handler need the
    decoded inner message; caching it on the (frozen) envelope keeps decode
    work at one pass per frame.  ``False`` marks a payload that failed to
    decode, so the failure is also computed only once.
    """
    cached = message.__dict__.get("_decoded_payload")
    if cached is None:
        try:
            cached = message_from_wire(message.payload)
        except ProtocolError:
            cached = False
        object.__setattr__(message, "_decoded_payload", cached)
    return None if cached is False else cached


class MultiObjectReplica:
    """A replica hosting one protocol state machine per object id."""

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        replica_cls: type[BftBcReplica] = BftBcReplica,
        *,
        store_factory: Optional[Callable[[str], ReplicaStore]] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self._replica_cls = replica_cls
        #: Optional per-object store provider (``obj -> ReplicaStore``);
        #: ``None`` keeps each state machine on its default in-memory store.
        self._store_factory = store_factory
        self._objects: dict[str, BftBcReplica] = {}
        self.envelope_discards = 0
        self.batch_stats = BatchStats()
        #: When set, envelopes tagged with a different epoch are refused.
        self.epoch: Optional[int] = None
        self._also_accept: frozenset[int] = frozenset()
        self.stale_epoch_discards = 0

    def object_state(self, obj: str) -> BftBcReplica:
        """The per-object state machine (created on first use)."""
        state = self._objects.get(obj)
        if state is None:
            kwargs: dict[str, Any] = {}
            if self._store_factory is not None:
                kwargs["store"] = self._store_factory(obj)
            state = self._replica_cls(
                self.node_id, _scoped_config(self.config, obj), **kwargs
            )
            self._objects[obj] = state
        return state

    @property
    def objects(self) -> frozenset[str]:
        return frozenset(self._objects)

    # -- epoch pinning (repro.shard) ---------------------------------------

    def set_epoch(self, epoch: int, also_accept: tuple[int, ...] = ()) -> None:
        """Pin this replica to a configuration epoch.

        Envelopes tagged with any epoch outside ``{epoch} | also_accept``
        are answered with :class:`EpochStaleReply` instead of being
        processed.  ``also_accept`` is the bounded handoff allowance: during
        a reconfiguration the previous epoch stays serviceable until the
        window closes (a later ``set_epoch(epoch)`` call with no allowance).
        Untagged envelopes are always served — single-group deployments
        never tag.
        """
        self.epoch = epoch
        self._also_accept = frozenset(also_accept)

    def update_quorums(self, quorums: Any) -> None:
        """Swap the quorum system governing every object's certificates.

        Used at epoch installation: membership changed, so certificate
        validation (and its memo) must follow.  Mutates the shared config
        and each existing per-object config in place — per-object configs
        are copies made by :func:`_scoped_config`, so the shared object
        alone is not enough.
        """
        self.config.quorums = quorums
        self.config.verifier.rebind_quorums(quorums)
        for state in self._objects.values():
            state.config.quorums = quorums
            state.config.verifier.rebind_quorums(quorums)

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        """Process one frame; batches are unpacked and answered in one frame.

        A :class:`~repro.core.batching.BatchEnvelope` of object messages is
        expanded, each inner message handled in order, and the replies (all
        addressed to ``sender``) coalesced back into a single envelope —
        one reply frame per request frame.
        """
        if isinstance(message, BatchEnvelope):
            inners = expand_message(message, self.batch_stats)
            self.prevalidate(inners)
            replies = [
                reply
                for inner in inners
                if (reply := self._handle_one(sender, inner)) is not None
            ]
            if not replies:
                return None
            if len(replies) == 1:
                return replies[0]
            self.batch_stats.sends_in += len(replies)
            self.batch_stats.frames_out += 1
            self.batch_stats.batches += 1
            self.batch_stats.messages_batched += len(replies)
            self.batch_stats.batch_sizes[len(replies)] += 1
            return BatchEnvelope(
                payloads=tuple(message_wire_bytes(r) for r in replies)
            )
        return self._handle_one(sender, message)

    def prevalidate(self, messages: list[Message]) -> int:
        """Warm each object's verification memo for a batch, in one pass per
        object group.

        Signatures are scoped per object, so the batch is partitioned by
        object id and each group prevalidates through that object's own
        verifier.  Stale-epoch and malformed envelopes are skipped — they
        will be refused (and counted) by :meth:`_handle_one` without ever
        touching crypto.
        """
        groups: dict[str, list[Message]] = {}
        for message in messages:
            if not isinstance(message, ObjectMessage):
                continue
            if (
                self.epoch is not None
                and message.epoch is not None
                and message.epoch != self.epoch
                and message.epoch not in self._also_accept
            ):
                continue
            inner = _decode_payload(message)
            if inner is not None:
                groups.setdefault(message.obj, []).append(inner)
        return sum(
            self.object_state(obj).prevalidate(inners)
            for obj, inners in groups.items()
        )

    def _handle_one(self, sender: str, message: Message) -> Optional[Message]:
        if not isinstance(message, ObjectMessage):
            self.envelope_discards += 1
            return None
        if (
            self.epoch is not None
            and message.epoch is not None
            and message.epoch != self.epoch
            and message.epoch not in self._also_accept
        ):
            self.stale_epoch_discards += 1
            return EpochStaleReply(obj=message.obj, epoch=self.epoch)
        inner = _decode_payload(message)
        if inner is None:
            self.envelope_discards += 1
            return None
        reply = self.object_state(message.obj).handle(sender, inner)
        if reply is None:
            return None
        return ObjectMessage(
            obj=message.obj, payload=message_to_wire(reply), epoch=message.epoch
        )


class MultiObjectClient:
    """A client holding one protocol driver per object.

    Operations on *different* objects may be in flight concurrently; each
    object's operations remain sequential (the §4.1 model is per-client
    per-object sequential histories).
    """

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        client_cls: type[BftBcClient] = BftBcClient,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self._client_cls = client_cls
        self._objects: dict[str, BftBcClient] = {}
        #: Counters for reply batches this client unpacks.
        self.batch_stats = BatchStats()
        #: Epoch tag stamped on every outgoing envelope (``None`` = untagged).
        self.epoch: Optional[int] = None
        #: Callback ``(sender, reply) -> list[Send]`` invoked on an
        #: :class:`EpochStaleReply`; the shard router uses it to kick off a
        #: directory refresh.  Unset, stale replies are counted and dropped.
        self.on_epoch_stale: Optional[
            Callable[[str, EpochStaleReply], list[Send]]
        ] = None
        self.stale_epoch_replies = 0
        config.registry.register(node_id)

    def object_client(self, obj: str) -> BftBcClient:
        client = self._objects.get(obj)
        if client is None:
            client = self._client_cls(self.node_id, _scoped_config(self.config, obj))
            self._objects[obj] = client
        return client

    # -- operations -----------------------------------------------------------

    def begin_write(self, obj: str, value: Any) -> list[Send]:
        return self._wrap(obj, self.object_client(obj).begin_write(value))

    def begin_read(self, obj: str) -> list[Send]:
        return self._wrap(obj, self.object_client(obj).begin_read())

    def prevalidate(self, messages: list[Message]) -> int:
        """Warm each known object's verification memo for a reply batch.

        Mirrors :meth:`MultiObjectReplica.prevalidate` on the client side:
        replies are grouped by object id and each group runs one amortized
        pass through that object's scoped verifier.  Envelopes for objects
        this client never opened are left alone — ``deliver`` drops them
        without verifying anything.
        """
        groups: dict[str, list[Message]] = {}
        for message in messages:
            if not isinstance(message, ObjectMessage):
                continue
            if message.obj not in self._objects:
                continue
            inner = _decode_payload(message)
            if inner is not None:
                groups.setdefault(message.obj, []).append(inner)
        return sum(
            prevalidate_batch(self._objects[obj].config.verifier, inners)
            for obj, inners in groups.items()
        )

    def deliver(self, sender: str, message: Message) -> list[Send]:
        if isinstance(message, BatchEnvelope):
            inners = expand_message(message, self.batch_stats)
            self.prevalidate(inners)
            sends: list[Send] = []
            for inner in inners:
                sends.extend(self.deliver(sender, inner))
            return sends
        if isinstance(message, EpochStaleReply):
            self.stale_epoch_replies += 1
            if self.on_epoch_stale is not None:
                return self.on_epoch_stale(sender, message)
            return []
        if not isinstance(message, ObjectMessage):
            return []
        client = self._objects.get(message.obj)
        if client is None:
            return []
        inner = _decode_payload(message)
        if inner is None:
            return []
        return self._wrap(message.obj, client.deliver(sender, inner))

    def retransmit(self) -> list[Send]:
        sends: list[Send] = []
        for obj, client in self._objects.items():
            sends.extend(self._wrap(obj, client.retransmit()))
        return sends

    def update_quorums(self, quorums: Any) -> None:
        """Swap the quorum system governing every object's certificates.

        The client-side half of epoch migration: in-flight operations keep
        their protocol state (prepared timestamps stay prepared at the
        continuing replicas — restarting them under a fresh client would
        wedge against the replicas' one-prepared-write-per-client rule) and
        simply resume against the new membership.  Per-object configs are
        copies, so each one is rebound alongside the shared config.
        """
        self.config.quorums = quorums
        self.config.verifier.rebind_quorums(quorums)
        for state in self._objects.values():
            state.config.quorums = quorums
            state.config.verifier.rebind_quorums(quorums)

    def _wrap(self, obj: str, sends: list[Send]) -> list[Send]:
        """Wrap inner sends in :class:`ObjectMessage` envelopes.

        The envelope for a given inner message instance is built once and
        cached on the instance, so a request fanned out to 3f+1 replicas is
        wrapped once, and every retransmission of it (the phase engine
        resends the *same* frozen request object) reuses the envelope — and
        with it the envelope's cached wire bytes.  No per-retransmit
        re-encoding of the payload remains.
        """
        wrapped: list[Send] = []
        for send in sends:
            envelope = send.message.__dict__.get("_cached_envelope")
            if envelope is None or envelope.obj != obj or envelope.epoch != self.epoch:
                envelope = ObjectMessage(
                    obj=obj, payload=message_to_wire(send.message), epoch=self.epoch
                )
                object.__setattr__(send.message, "_cached_envelope", envelope)
            wrapped.append(Send(dest=send.dest, message=envelope))
        return wrapped

    # -- inspection --------------------------------------------------------------

    def busy(self, obj: str) -> bool:
        client = self._objects.get(obj)
        return client is not None and client.busy

    @property
    def any_busy(self) -> bool:
        return any(c.busy for c in self._objects.values())

    def result(self, obj: str) -> Any:
        client = self._objects.get(obj)
        return None if client is None else client.last_result

    @property
    def objects(self) -> frozenset[str]:
        return frozenset(self._objects)
