"""Memoizing verification pipeline shared by every protocol role.

BFT-BC's dominant cost is signature and certificate checking: every PREPARE
and WRITE carries a quorum certificate of 2f+1 signatures, and the paper
(§3, §6) counts these verifications as the protocol's main overhead.  The
same certificate is routinely verified many times — on retransmission, during
a read's write-back, when validating phase-1 replies, and once per role when
a client and a replica share a process in the simulator.

:class:`Verifier` wraps a :class:`~repro.crypto.signatures.SignatureScheme`
with two bounded LRU memos:

* a **signature memo** keyed by ``(statement_bytes, signer, signature)``, and
* a **certificate memo** keyed by a digest of the certificate's wire form,

so a certificate seen twice verifies in O(1) instead of O(|Q|) backend calls.

Caching cannot weaken the §4 safety argument: a verdict is a pure function of
the signed bytes, the signer's key material, and the signature value — all of
which are part of the memo key or immutable once the signer is registered
(:class:`~repro.crypto.keys.KeyRegistry` derives keys deterministically and
never changes a secret after registration; revocation deliberately does not
affect verification, per §4.1.1's lurking-write semantics).  The only mutable
input is *whether* the signer is registered, and registration only grows —
so the memo declines to cache verdicts for unregistered signers, the one case
where a later registration could flip the answer.

This module sits between ``repro.crypto`` and the rest of ``repro.core`` in
the layering (``crypto`` → ``core.verification`` → ``core.*`` → ``net``/
``sim``); it must not import other ``repro.core`` modules.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.crypto.hashing import digest_bytes
from repro.crypto.signatures import Signature, SignatureScheme
from repro.encoding import intern_encode
from repro.errors import CertificateError

__all__ = ["VerificationStats", "Verifier"]


@runtime_checkable
class _Certificate(Protocol):
    """Structural type for certificates (avoids importing ``core.certificates``)."""

    def to_wire(self) -> tuple:  # pragma: no cover - protocol declaration
        ...

    def validate(self, scheme: Any, quorums: Any) -> None:  # pragma: no cover
        ...


@dataclass
class VerificationStats:
    """Hit/miss counters for the verification pipeline.

    Attributes:
        signature_checks: calls answered at the signature layer (cached or
            not), including those made while validating certificates.
        signature_hits: signature checks answered from the memo.
        backend_verifies: calls that reached the wrapped scheme's ``verify``.
        certificate_checks: certificate validations requested.
        certificate_hits: certificate validations answered from the memo.
        signature_evictions: signature-memo entries dropped by the global
            LRU capacity.
        signer_evictions: signature-memo entries dropped because one signer
            exceeded its per-identity budget (E21 memory accounting).
        certificate_evictions: certificate-memo entries dropped by capacity.
        verify_calls: verification *passes* that did non-memoized work — each
            individual check that reached the backend counts one, while a
            whole :meth:`Verifier.verify_batch` pass counts one regardless of
            how many of its signatures missed the memo.  The batched/unbatched
            ratio of this counter is E22's amortization metric.
        batch_calls: :meth:`Verifier.verify_batch` invocations.
        batched_signatures: signatures submitted across all batch passes.
        batch_pool_tasks: backend verifications fanned out to the optional
            ``concurrent.futures`` executor instead of run inline.
    """

    signature_checks: int = 0
    signature_hits: int = 0
    backend_verifies: int = 0
    certificate_checks: int = 0
    certificate_hits: int = 0
    signature_evictions: int = 0
    signer_evictions: int = 0
    certificate_evictions: int = 0
    verify_calls: int = 0
    batch_calls: int = 0
    batched_signatures: int = 0
    batch_pool_tasks: int = 0

    @property
    def signature_hit_rate(self) -> float:
        """Fraction of signature checks served from the memo (0 when idle)."""
        if not self.signature_checks:
            return 0.0
        return self.signature_hits / self.signature_checks

    @property
    def certificate_hit_rate(self) -> float:
        """Fraction of certificate checks served from the memo (0 when idle)."""
        if not self.certificate_checks:
            return 0.0
        return self.certificate_hits / self.certificate_checks

    def reset(self) -> None:
        """Zero every counter (used between benchmark runs)."""
        self.signature_checks = 0
        self.signature_hits = 0
        self.backend_verifies = 0
        self.certificate_checks = 0
        self.certificate_hits = 0
        self.signature_evictions = 0
        self.signer_evictions = 0
        self.certificate_evictions = 0
        self.verify_calls = 0
        self.batch_calls = 0
        self.batched_signatures = 0
        self.batch_pool_tasks = 0


class Verifier:
    """Bounded-LRU memoizing front-end over a signature scheme.

    All protocol code verifies through one of these instead of calling the
    scheme directly; signing is unaffected.  The verifier deliberately
    mirrors the scheme's ``verify_statement`` interface so certificate
    ``validate`` implementations accept either (duck typing), which routes a
    certificate's per-signature loop through the signature memo on a
    certificate-level miss.

    Args:
        scheme: the wrapped signature backend.
        quorums: quorum system certificates are validated against.
        max_signatures: signature-memo capacity (LRU eviction beyond it).
        max_certificates: certificate-memo capacity.
        max_signatures_per_signer: per-identity budget within the signature
            memo; one chatty (or Byzantine) client cannot monopolise the
            memo by churning distinct statements.  ``None`` disables the
            per-signer budget, leaving only the global capacity.
        enabled: when False, every check passes straight through to the
            backend (the ablation arm of experiment E4d).
    """

    def __init__(
        self,
        scheme: SignatureScheme,
        quorums: Any,
        *,
        max_signatures: int = 8192,
        max_certificates: int = 2048,
        max_signatures_per_signer: "int | None" = 512,
        enabled: bool = True,
    ) -> None:
        self.scheme = scheme
        self.quorums = quorums
        self.enabled = enabled
        self.stats = VerificationStats()
        self._max_signatures = max_signatures
        self._max_certificates = max_certificates
        self._max_per_signer = max_signatures_per_signer
        self._signature_memo: OrderedDict[tuple[bytes, str, bytes], bool] = (
            OrderedDict()
        )
        self._certificate_memo: OrderedDict[bytes, bool] = OrderedDict()
        # Per-signer index into the signature memo: signer -> its memo keys
        # in insertion order.  Lets the per-identity budget evict that
        # signer's oldest entry in O(1) instead of scanning the whole memo.
        self._by_signer: dict[str, "OrderedDict[tuple[bytes, str, bytes], None]"] = {}
        # Batch-pass state: while a verify_batch (or the certificate
        # validations it triggers) is running, individual backend hits do not
        # count as separate verification passes — the batch is the pass.
        self._in_batch = False
        self._batch_executor: Any = None
        self._batch_executor_min = 4

    # -- signature layer ---------------------------------------------------

    def verify_statement(self, signature: Signature, statement: Any) -> bool:
        """Memoized equivalent of ``scheme.verify_statement``.

        Statement bytes come from the interning cache shared with
        ``sign_statement``, so a statement signed once and verified at many
        roles is canonically encoded once per process.
        """
        return self.verify(signature, intern_encode(statement))

    def verify(self, signature: Signature, message: bytes) -> bool:
        """Memoized equivalent of ``scheme.verify`` over raw bytes."""
        self.stats.signature_checks += 1
        if not self.enabled:
            self.stats.backend_verifies += 1
            if not self._in_batch:
                self.stats.verify_calls += 1
            return self.scheme.verify(signature, message)
        key = (message, signature.signer, signature.value)
        cached = self._signature_memo.get(key)
        if cached is not None:
            self._signature_memo.move_to_end(key)
            self.stats.signature_hits += 1
            return cached
        self.stats.backend_verifies += 1
        if not self._in_batch:
            self.stats.verify_calls += 1
        verdict = self.scheme.verify(signature, message)
        # A verdict for an unregistered signer is the one non-pure case:
        # registering the signer later would flip False to the real answer,
        # so never memoize it.
        if self.scheme.registry.is_registered(signature.signer):
            self._remember_signature(key, verdict)
        return verdict

    # -- batch layer -------------------------------------------------------

    def set_batch_executor(self, executor: Any, *, min_misses: int = 4) -> None:
        """Fan batch misses out to a ``concurrent.futures`` executor.

        Only :meth:`verify_batch` uses the executor, and only when a pass
        holds at least ``min_misses`` non-memoized signatures — below that
        the submission overhead outweighs the work.  Pass a
        ``ThreadPoolExecutor``: the backend objects are shared, not
        pickled, and on CPython the win is bounded by how much of the
        backend's work releases the GIL (``hashlib``/``hmac`` do for large
        inputs).  ``None`` restores inline verification.
        """
        self._batch_executor = executor
        self._batch_executor_min = min_misses

    def verify_batch(
        self,
        checks: "list[tuple[Signature, Any]]",
        certificates: "tuple | list" = (),
    ) -> list[bool]:
        """Verify many ``(signature, statement)`` checks in one amortized pass.

        The entry point for batch prevalidation: a replica (or client) that
        just unpacked a :class:`~repro.core.batching.BatchEnvelope` submits
        every inner message's signature checks — and the certificates those
        messages carry — here before handling them one by one.  The pass
        dedups identical checks, answers what it can from the memo, verifies
        the rest against the backend (optionally across the worker pool),
        and memoizes the verdicts, so the handlers' subsequent individual
        ``verify_statement`` / ``validate_certificate`` calls are all memo
        hits.  The whole pass counts as **one** ``verify_calls`` entry —
        that is the amortization E22 measures.

        Certificate validation failures are swallowed: prevalidation only
        warms the memo, and the handler's own ``validate_certificate`` call
        re-raises (or re-checks) with full fidelity.

        Returns the verdict for each check, in order.
        """
        self.stats.batch_calls += 1
        self.stats.batched_signatures += len(checks)
        verdicts = [False] * len(checks)
        backend_before = self.stats.backend_verifies
        self._in_batch = True
        try:
            # indices of checks awaiting a backend verdict, keyed by the
            # deduped (bytes, signer, value) memo key.
            misses: "OrderedDict[tuple[bytes, str, bytes], list[int]]" = (
                OrderedDict()
            )
            miss_args: list[tuple[Signature, bytes]] = []
            for index, (signature, statement) in enumerate(checks):
                self.stats.signature_checks += 1
                message = (
                    statement
                    if isinstance(statement, bytes)
                    else intern_encode(statement)
                )
                key = (message, signature.signer, signature.value)
                if self.enabled:
                    cached = self._signature_memo.get(key)
                    if cached is not None:
                        self._signature_memo.move_to_end(key)
                        self.stats.signature_hits += 1
                        verdicts[index] = cached
                        continue
                waiting = misses.get(key)
                if waiting is not None:
                    waiting.append(index)
                    self.stats.signature_hits += 1
                    continue
                misses[key] = [index]
                miss_args.append((signature, message))
            if miss_args:
                self.stats.backend_verifies += len(miss_args)
                executor = self._batch_executor
                if executor is not None and len(miss_args) >= (
                    self._batch_executor_min
                ):
                    self.stats.batch_pool_tasks += len(miss_args)
                    results = list(
                        executor.map(
                            self.scheme.verify,
                            [sig for sig, _ in miss_args],
                            [msg for _, msg in miss_args],
                        )
                    )
                else:
                    results = [
                        self.scheme.verify(sig, msg) for sig, msg in miss_args
                    ]
                for (key, indices), verdict in zip(misses.items(), results):
                    for index in indices:
                        verdicts[index] = verdict
                    if self.enabled and self.scheme.registry.is_registered(
                        key[1]
                    ):
                        self._remember_signature(key, verdict)
            for cert in certificates:
                try:
                    self.validate_certificate(cert)
                except CertificateError:
                    pass
        finally:
            self._in_batch = False
        if self.stats.backend_verifies > backend_before:
            self.stats.verify_calls += 1
        return verdicts

    # -- certificate layer -------------------------------------------------

    def validate_certificate(self, cert: _Certificate) -> None:
        """Memoized certificate validation.

        Raises:
            CertificateError: exactly when ``cert.validate`` would — the memo
                only short-circuits certificates previously proven valid.
        """
        self.stats.certificate_checks += 1
        if not self.enabled:
            cert.validate(self, self.quorums)
            return
        key = digest_bytes(
            intern_encode((type(cert).__name__, cert.to_wire()))
        )
        if self._certificate_memo.get(key):
            self._certificate_memo.move_to_end(key)
            self.stats.certificate_hits += 1
            return
        cert.validate(self, self.quorums)
        # Only positive verdicts are cached: an invalid certificate can
        # become valid once its signers register, and revalidating garbage
        # is cheap because its signature checks still hit the memo.
        self._certificate_memo[key] = True
        self._certificate_memo.move_to_end(key)
        while len(self._certificate_memo) > self._max_certificates:
            self._certificate_memo.popitem(last=False)
            self.stats.certificate_evictions += 1

    def certificate_valid(self, cert: _Certificate) -> bool:
        """Boolean form of :meth:`validate_certificate`."""
        try:
            self.validate_certificate(cert)
        except CertificateError:
            return False
        return True

    def rebind_quorums(self, quorums: Any) -> None:
        """Point certificate validation at a new quorum system.

        Called when a reconfiguration changes group membership.  Verdicts
        memoized under the previous membership stay memoized: only positive
        verdicts are ever cached, they were legitimately earned then, and a
        reconfigured quorum system keeps prior members acceptable as
        ``extra_signers`` precisely so those certificates remain valid.
        """
        self.quorums = quorums

    # -- internals ---------------------------------------------------------

    def _remember_signature(
        self, key: tuple[bytes, str, bytes], verdict: bool
    ) -> None:
        memo = self._signature_memo
        memo[key] = verdict
        memo.move_to_end(key)
        signer = key[1]
        per_signer = self._by_signer.setdefault(signer, OrderedDict())
        per_signer[key] = None
        per_signer.move_to_end(key)
        if self._max_per_signer is not None:
            while len(per_signer) > self._max_per_signer:
                old_key, _ = per_signer.popitem(last=False)
                memo.pop(old_key, None)
                self.stats.signer_evictions += 1
        while len(memo) > self._max_signatures:
            old_key, _ = memo.popitem(last=False)
            self.stats.signature_evictions += 1
            index = self._by_signer.get(old_key[1])
            if index is not None:
                index.pop(old_key, None)
                if not index:
                    del self._by_signer[old_key[1]]

    @property
    def resident_signature_entries(self) -> int:
        """How many signature verdicts are currently memoized."""
        return len(self._signature_memo)

    def clear(self) -> None:
        """Drop both memos (counters are kept; use ``stats.reset()`` too)."""
        self._signature_memo.clear()
        self._certificate_memo.clear()
        self._by_signer.clear()
