"""Memoizing verification pipeline shared by every protocol role.

BFT-BC's dominant cost is signature and certificate checking: every PREPARE
and WRITE carries a quorum certificate of 2f+1 signatures, and the paper
(§3, §6) counts these verifications as the protocol's main overhead.  The
same certificate is routinely verified many times — on retransmission, during
a read's write-back, when validating phase-1 replies, and once per role when
a client and a replica share a process in the simulator.

:class:`Verifier` wraps a :class:`~repro.crypto.signatures.SignatureScheme`
with two bounded LRU memos:

* a **signature memo** keyed by ``(statement_bytes, signer, signature)``, and
* a **certificate memo** keyed by a digest of the certificate's wire form,

so a certificate seen twice verifies in O(1) instead of O(|Q|) backend calls.

Caching cannot weaken the §4 safety argument: a verdict is a pure function of
the signed bytes, the signer's key material, and the signature value — all of
which are part of the memo key or immutable once the signer is registered
(:class:`~repro.crypto.keys.KeyRegistry` derives keys deterministically and
never changes a secret after registration; revocation deliberately does not
affect verification, per §4.1.1's lurking-write semantics).  The only mutable
input is *whether* the signer is registered, and registration only grows —
so the memo declines to cache verdicts for unregistered signers, the one case
where a later registration could flip the answer.

This module sits between ``repro.crypto`` and the rest of ``repro.core`` in
the layering (``crypto`` → ``core.verification`` → ``core.*`` → ``net``/
``sim``); it must not import other ``repro.core`` modules.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.crypto.hashing import digest_bytes
from repro.crypto.signatures import Signature, SignatureScheme
from repro.encoding import intern_encode
from repro.errors import CertificateError

__all__ = ["VerificationStats", "Verifier"]


@runtime_checkable
class _Certificate(Protocol):
    """Structural type for certificates (avoids importing ``core.certificates``)."""

    def to_wire(self) -> tuple:  # pragma: no cover - protocol declaration
        ...

    def validate(self, scheme: Any, quorums: Any) -> None:  # pragma: no cover
        ...


@dataclass
class VerificationStats:
    """Hit/miss counters for the verification pipeline.

    Attributes:
        signature_checks: calls answered at the signature layer (cached or
            not), including those made while validating certificates.
        signature_hits: signature checks answered from the memo.
        backend_verifies: calls that reached the wrapped scheme's ``verify``.
        certificate_checks: certificate validations requested.
        certificate_hits: certificate validations answered from the memo.
        signature_evictions: signature-memo entries dropped by the global
            LRU capacity.
        signer_evictions: signature-memo entries dropped because one signer
            exceeded its per-identity budget (E21 memory accounting).
        certificate_evictions: certificate-memo entries dropped by capacity.
    """

    signature_checks: int = 0
    signature_hits: int = 0
    backend_verifies: int = 0
    certificate_checks: int = 0
    certificate_hits: int = 0
    signature_evictions: int = 0
    signer_evictions: int = 0
    certificate_evictions: int = 0

    @property
    def signature_hit_rate(self) -> float:
        """Fraction of signature checks served from the memo (0 when idle)."""
        if not self.signature_checks:
            return 0.0
        return self.signature_hits / self.signature_checks

    @property
    def certificate_hit_rate(self) -> float:
        """Fraction of certificate checks served from the memo (0 when idle)."""
        if not self.certificate_checks:
            return 0.0
        return self.certificate_hits / self.certificate_checks

    def reset(self) -> None:
        """Zero every counter (used between benchmark runs)."""
        self.signature_checks = 0
        self.signature_hits = 0
        self.backend_verifies = 0
        self.certificate_checks = 0
        self.certificate_hits = 0
        self.signature_evictions = 0
        self.signer_evictions = 0
        self.certificate_evictions = 0


class Verifier:
    """Bounded-LRU memoizing front-end over a signature scheme.

    All protocol code verifies through one of these instead of calling the
    scheme directly; signing is unaffected.  The verifier deliberately
    mirrors the scheme's ``verify_statement`` interface so certificate
    ``validate`` implementations accept either (duck typing), which routes a
    certificate's per-signature loop through the signature memo on a
    certificate-level miss.

    Args:
        scheme: the wrapped signature backend.
        quorums: quorum system certificates are validated against.
        max_signatures: signature-memo capacity (LRU eviction beyond it).
        max_certificates: certificate-memo capacity.
        max_signatures_per_signer: per-identity budget within the signature
            memo; one chatty (or Byzantine) client cannot monopolise the
            memo by churning distinct statements.  ``None`` disables the
            per-signer budget, leaving only the global capacity.
        enabled: when False, every check passes straight through to the
            backend (the ablation arm of experiment E4d).
    """

    def __init__(
        self,
        scheme: SignatureScheme,
        quorums: Any,
        *,
        max_signatures: int = 8192,
        max_certificates: int = 2048,
        max_signatures_per_signer: "int | None" = 512,
        enabled: bool = True,
    ) -> None:
        self.scheme = scheme
        self.quorums = quorums
        self.enabled = enabled
        self.stats = VerificationStats()
        self._max_signatures = max_signatures
        self._max_certificates = max_certificates
        self._max_per_signer = max_signatures_per_signer
        self._signature_memo: OrderedDict[tuple[bytes, str, bytes], bool] = (
            OrderedDict()
        )
        self._certificate_memo: OrderedDict[bytes, bool] = OrderedDict()
        # Per-signer index into the signature memo: signer -> its memo keys
        # in insertion order.  Lets the per-identity budget evict that
        # signer's oldest entry in O(1) instead of scanning the whole memo.
        self._by_signer: dict[str, "OrderedDict[tuple[bytes, str, bytes], None]"] = {}

    # -- signature layer ---------------------------------------------------

    def verify_statement(self, signature: Signature, statement: Any) -> bool:
        """Memoized equivalent of ``scheme.verify_statement``.

        Statement bytes come from the interning cache shared with
        ``sign_statement``, so a statement signed once and verified at many
        roles is canonically encoded once per process.
        """
        return self.verify(signature, intern_encode(statement))

    def verify(self, signature: Signature, message: bytes) -> bool:
        """Memoized equivalent of ``scheme.verify`` over raw bytes."""
        self.stats.signature_checks += 1
        if not self.enabled:
            self.stats.backend_verifies += 1
            return self.scheme.verify(signature, message)
        key = (message, signature.signer, signature.value)
        cached = self._signature_memo.get(key)
        if cached is not None:
            self._signature_memo.move_to_end(key)
            self.stats.signature_hits += 1
            return cached
        self.stats.backend_verifies += 1
        verdict = self.scheme.verify(signature, message)
        # A verdict for an unregistered signer is the one non-pure case:
        # registering the signer later would flip False to the real answer,
        # so never memoize it.
        if self.scheme.registry.is_registered(signature.signer):
            self._remember_signature(key, verdict)
        return verdict

    # -- certificate layer -------------------------------------------------

    def validate_certificate(self, cert: _Certificate) -> None:
        """Memoized certificate validation.

        Raises:
            CertificateError: exactly when ``cert.validate`` would — the memo
                only short-circuits certificates previously proven valid.
        """
        self.stats.certificate_checks += 1
        if not self.enabled:
            cert.validate(self, self.quorums)
            return
        key = digest_bytes(
            intern_encode((type(cert).__name__, cert.to_wire()))
        )
        if self._certificate_memo.get(key):
            self._certificate_memo.move_to_end(key)
            self.stats.certificate_hits += 1
            return
        cert.validate(self, self.quorums)
        # Only positive verdicts are cached: an invalid certificate can
        # become valid once its signers register, and revalidating garbage
        # is cheap because its signature checks still hit the memo.
        self._certificate_memo[key] = True
        self._certificate_memo.move_to_end(key)
        while len(self._certificate_memo) > self._max_certificates:
            self._certificate_memo.popitem(last=False)
            self.stats.certificate_evictions += 1

    def certificate_valid(self, cert: _Certificate) -> bool:
        """Boolean form of :meth:`validate_certificate`."""
        try:
            self.validate_certificate(cert)
        except CertificateError:
            return False
        return True

    def rebind_quorums(self, quorums: Any) -> None:
        """Point certificate validation at a new quorum system.

        Called when a reconfiguration changes group membership.  Verdicts
        memoized under the previous membership stay memoized: only positive
        verdicts are ever cached, they were legitimately earned then, and a
        reconfigured quorum system keeps prior members acceptable as
        ``extra_signers`` precisely so those certificates remain valid.
        """
        self.quorums = quorums

    # -- internals ---------------------------------------------------------

    def _remember_signature(
        self, key: tuple[bytes, str, bytes], verdict: bool
    ) -> None:
        memo = self._signature_memo
        memo[key] = verdict
        memo.move_to_end(key)
        signer = key[1]
        per_signer = self._by_signer.setdefault(signer, OrderedDict())
        per_signer[key] = None
        per_signer.move_to_end(key)
        if self._max_per_signer is not None:
            while len(per_signer) > self._max_per_signer:
                old_key, _ = per_signer.popitem(last=False)
                memo.pop(old_key, None)
                self.stats.signer_evictions += 1
        while len(memo) > self._max_signatures:
            old_key, _ = memo.popitem(last=False)
            self.stats.signature_evictions += 1
            index = self._by_signer.get(old_key[1])
            if index is not None:
                index.pop(old_key, None)
                if not index:
                    del self._by_signer[old_key[1]]

    @property
    def resident_signature_entries(self) -> int:
        """How many signature verdicts are currently memoized."""
        return len(self._signature_memo)

    def clear(self) -> None:
        """Drop both memos (counters are kept; use ``stats.reset()`` too)."""
        self._signature_memo.clear()
        self._certificate_memo.clear()
        self._by_signer.clear()
