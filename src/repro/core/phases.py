"""The quorum-round phase engine shared by every protocol variant.

Each phase of every BFT-BC operation — base three-phase writes, the §6
optimized fast path and its fallback, the §7 strong variant's fetch and
write-back, plain reads, and the §3.2.2 read write-back — has the same shape:
send a request batch, validate at most one reply per replica, stop at a
quorum, and retransmit to the silent set.  :class:`QuorumRound` captures that
shape once so the variant modules keep only their genuinely variant logic,
and so the one-valid-vote-per-replica guard lives in exactly one place (a
Byzantine replica can never get two votes in any phase of any variant).

The engine is sans-I/O: it emits :class:`Send` batches and consumes replies,
so identical code runs under the deterministic simulator and the asyncio TCP
transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from repro.core.messages import Message
from repro.obs.spans import NULL_SPAN, SpanHandle

if TYPE_CHECKING:  # avoid an import cycle: config imports nothing from here
    from repro.core.config import SystemConfig

__all__ = ["Send", "QuorumRound", "ReplyCollector"]

Validator = Callable[[str, Message], Optional[Any]]


@dataclass(frozen=True)
class Send:
    """An outgoing message addressed to one node."""

    dest: str
    message: Message


class QuorumRound:
    """One request/reply round against the replica group.

    A round owns the four ingredients every phase repeats: the request to
    (re)send, the validator that derives a vote from a reply, the quorum
    predicate, and the retransmit set.  The validator receives
    ``(sender, message)`` and returns the value to record (possibly a derived
    object, e.g. a signature) or ``None`` to reject.  Senders that are not
    replicas, or that already voted, are ignored — one valid vote per replica
    per round, enforced here for every variant.

    Args:
        config: the deployment configuration (quorum system, options).
        request: the message retransmitted to silent replicas; ``None`` for
            collector-only use (no send side).
        validator: per-reply validation returning the vote or ``None``.
        targets: initial recipients; defaults to every replica, trimmed to a
            preferred quorum when ``config.prefer_quorum`` is set (§3.3.1's
            O(|Q|) message discipline — retransmission widens naturally).
        threshold: votes needed for :attr:`have_quorum`; defaults to
            ``config.quorum_size`` (2f+1).
        prefill: votes credited before any reply arrives — e.g. replicas a
            read already knows are up to date (§3.2.2), or phase-1 prepare
            signatures seeding the §6 fallback.
        span: the open phase span this round reports into (retransmit and
            vote counters); defaults to the no-op :data:`NULL_SPAN`.
    """

    def __init__(
        self,
        config: "SystemConfig",
        request: Optional[Message],
        validator: Validator,
        *,
        targets: Optional[tuple[str, ...]] = None,
        threshold: Optional[int] = None,
        prefill: Optional[Mapping[str, Any]] = None,
        span: SpanHandle = NULL_SPAN,
    ) -> None:
        self._config = config
        self._validator = validator
        self.request = request
        self.span = span
        self.threshold = (
            config.quorum_size if threshold is None else threshold
        )
        if targets is None:
            targets = config.quorums.replica_ids
            if config.prefer_quorum:
                targets = targets[: config.quorum_size]
        self.targets = targets
        self.replies: dict[str, Any] = {}
        if prefill:
            for sender, vote in prefill.items():
                self.credit(sender, vote)

    # -- sending -----------------------------------------------------------

    def begin(self) -> list[Send]:
        """The initial request batch for this round."""
        if self.request is None:
            return []
        return [Send(dest, self.request) for dest in self.targets]

    def retransmit(self) -> list[Send]:
        """Resend the request to every replica that has not validly voted."""
        if self.request is None:
            return []
        sends = [Send(dest, self.request) for dest in self.missing()]
        if sends:
            self.span.incr("retransmits")
        return sends

    # -- vote collection ---------------------------------------------------

    def add(self, sender: str, message: Message) -> bool:
        """Record ``message`` if valid and novel; return True on acceptance."""
        if sender in self.replies:
            return False
        if not self._config.quorums.is_replica(sender):
            return False
        accepted = self._validator(sender, message)
        if accepted is None:
            return False
        self.replies[sender] = accepted
        return True

    def credit(self, sender: str, vote: Any) -> bool:
        """Record a vote obtained outside this round (no message to validate).

        Subject to the same guards as :meth:`add` — an unknown sender is
        rejected and a replica can never end up with two votes.
        """
        if sender in self.replies:
            return False
        if not self._config.quorums.is_replica(sender):
            return False
        self.replies[sender] = vote
        return True

    @property
    def count(self) -> int:
        """Number of distinct valid votes collected so far."""
        return len(self.replies)

    @property
    def have_quorum(self) -> bool:
        """True once the vote count reaches the round's threshold."""
        return self.count >= self.threshold

    def responders(self) -> frozenset[str]:
        """The replicas whose votes were accepted."""
        return frozenset(self.replies)

    def missing(self) -> tuple[str, ...]:
        """Replicas that have not yet validly replied (retransmit targets)."""
        return tuple(
            r for r in self._config.quorums.replica_ids if r not in self.replies
        )


class ReplyCollector(QuorumRound):
    """Backwards-compatible collector facade over :class:`QuorumRound`.

    The original seed code exposed a bare collector (no send side); some
    tests and baseline protocols still construct one directly.  It is now a
    thin alias so every variant shares the same one-vote-per-replica guard.
    """

    def __init__(self, config: "SystemConfig", validator: Validator) -> None:
        super().__init__(config, None, validator)
