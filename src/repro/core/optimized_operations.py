"""The optimized write operation (§6): two phases in the common case.

Phase 1 sends ``READ-TS-PREP`` carrying the hash of the proposed value; each
replica predicts the next timestamp and prepares on the client's behalf.  If
a quorum of replicas predicted the *same* timestamp, their inner
``PREPARE-REPLY`` signatures already form a prepare certificate and the
client jumps straight to phase 3.  Otherwise it falls back to an explicit
phase 2, seeding the collection with any phase-1 prepare signatures that
match the chosen timestamp ("obtained either in phase 1 or phase 2").

Fallback trigger: the fast path is abandoned as soon as no timestamp can
still reach a quorum (counting silent replicas as potential agreers), or on
the first retransmission tick after a quorum of replies — waiting longer
cannot be relied on in an asynchronous system.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import Message, ReadTsPrepReply, ReadTsPrepRequest
from repro.core.operations import Send, WriteOperation
from repro.core.statements import (
    prepare_reply_statement,
    read_ts_prep_reply_statement,
    read_ts_prep_request_statement,
)
from repro.core.timestamp import Timestamp
from repro.crypto.signatures import Signature

__all__ = ["OptimizedWriteOperation"]


class OptimizedWriteOperation(WriteOperation):
    """Write via the merged phase-1/2 fast path, with explicit fallback."""

    op_name = "write"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        value: Any,
        nonce: bytes,
        write_cert: Optional[WriteCertificate],
    ) -> None:
        super().__init__(client_id, config, value, nonce, write_cert)
        #: True when phase 3 was reached without an explicit phase 2.
        self.fast_path = False
        self._opt_prep_sigs: dict[str, tuple[Timestamp, Signature]] = {}

    # -- merged phase 1/2 ---------------------------------------------------

    def start(self) -> list[Send]:
        self._phase = 1
        statement = read_ts_prep_request_statement(
            self.value_hash,
            None if self.prev_write_cert is None else self.prev_write_cert.to_wire(),
            self.nonce,
        )
        request = ReadTsPrepRequest(
            value_hash=self.value_hash,
            write_cert=self.prev_write_cert,
            nonce=self.nonce,
            signature=self._sign(statement),
        )
        return self._broadcast(request, self._validate_read_ts_prep_reply)

    def _validate_read_ts_prep_reply(
        self, sender: str, message: Message
    ) -> Optional[ReadTsPrepReply]:
        if not isinstance(message, ReadTsPrepReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        envelope = read_ts_prep_reply_statement(
            message.cert.to_wire(),
            None if message.prepared_ts is None else message.prepared_ts.to_wire(),
            message.nonce,
        )
        if not self.config.verifier.verify_statement(message.signature, envelope):
            return None
        if not self.config.verifier.certificate_valid(message.cert):
            return None
        if message.prepared_ts is not None:
            if message.prep_sig is None or message.prep_sig.signer != sender:
                return None
            inner = prepare_reply_statement(message.prepared_ts, self.value_hash)
            if not self.config.verifier.verify_statement(message.prep_sig, inner):
                return None
            self._opt_prep_sigs[sender] = (message.prepared_ts, message.prep_sig)
        return message

    def _advance(self) -> list[Send]:
        if self._phase != 1:
            return super()._advance()
        assert self._collector is not None
        quorum = self.config.quorum_size
        counts = Counter(ts for ts, _sig in self._opt_prep_sigs.values())
        for ts, count in counts.items():
            if count >= quorum:
                return self._take_fast_path(ts)
        if not self._collector.have_quorum:
            return []
        # Can any timestamp still reach a quorum if every silent replica
        # agreed with the current leader?
        top = max(counts.values(), default=0)
        silent = self.config.n - self._collector.count
        if top + silent < quorum:
            return self._fall_back()
        return []

    def on_retransmit(self) -> list[Send]:
        # A quorum replied but the fast path has not converged: stop waiting
        # for stragglers and run the explicit phase 2.
        if (
            not self.done
            and self._phase == 1
            and self._collector is not None
            and self._collector.have_quorum
        ):
            return self._fall_back()
        return super().on_retransmit()

    def _take_fast_path(self, ts: Timestamp) -> list[Send]:
        self.fast_path = True
        self._obs_op.set("fast_path", True)
        self._target_ts = ts
        signatures = tuple(
            sig for (sts, sig) in self._opt_prep_sigs.values() if sts == ts
        )
        prepare_cert = PrepareCertificate(
            ts=ts, value_hash=self.value_hash, signatures=signatures
        )
        return self._begin_write(prepare_cert)

    def _fall_back(self) -> list[Send]:
        assert self._collector is not None
        replies: list[ReadTsPrepReply] = list(self._collector.replies.values())
        p_max = max((r.cert for r in replies), key=lambda c: c.ts)
        opt_sigs = dict(self._opt_prep_sigs)
        sends = self._begin_prepare(p_max)
        # Seed the phase-2 round with matching phase-1 signatures ("obtained
        # either in phase 1 or phase 2"); the round's one-vote guard applies.
        assert self._collector is not None and self._target_ts is not None
        for sender, (ts, sig) in opt_sigs.items():
            if ts == self._target_ts:
                self._collector.credit(sender, sig)
        if self._collector.have_quorum:
            return self._advance()
        return sends
