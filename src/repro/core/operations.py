"""Sans-I/O client operation state machines for the base protocol.

Each operation (write, read) is a little state machine: it emits request
batches (:class:`Send` lists), consumes replies via :meth:`Operation.on_message`,
and retransmits to non-responders via :meth:`Operation.on_retransmit` — the
paper's only liveness mechanism ("clients retransmit their requests ...; they
stop retransmitting once they collect a quorum of valid replies").

Every phase is a :class:`~repro.core.phases.QuorumRound`; this module keeps
only the transitions and per-phase validators.  Keeping operations sans-I/O
lets exactly the same protocol logic run on the deterministic simulator and
on the asyncio TCP transport.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    Message,
    PrepareReply,
    PrepareRequest,
    ReadReply,
    ReadRequest,
    ReadTsReply,
    ReadTsRequest,
    WriteReply,
    WriteRequest,
)
from repro.core.phases import QuorumRound, ReplyCollector, Send
from repro.core.statements import (
    prepare_reply_statement,
    prepare_request_statement,
    read_reply_statement,
    read_ts_reply_statement,
    write_reply_statement,
    write_request_statement,
)
from repro.core.timestamp import Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature
from repro.obs.instrumentation import NULL_INSTRUMENTATION, Instrumentation
from repro.obs.spans import NULL_SPAN

__all__ = [
    "Send",
    "ReplyCollector",
    "Operation",
    "WriteOperation",
    "ReadOperation",
]


class Operation:
    """Base class for client operations.

    Subclasses drive the phases; the surrounding client (or transport
    adapter) delivers messages and retransmission ticks.  ``phases`` counts
    distinct protocol phases actually executed — the quantity experiment E1
    reports.
    """

    op_name = "op"

    def __init__(self, client_id: str, config: SystemConfig) -> None:
        self.client_id = client_id
        self.config = config
        self.done = False
        self.result: Any = None
        self.phases = 0
        self._collector: Optional[QuorumRound] = None
        self._instr = NULL_INSTRUMENTATION
        self._obs_op = NULL_SPAN
        self._obs_phase = NULL_SPAN

    def instrument(self, instr: Optional[Instrumentation]) -> None:
        """Bind an instrumentation handle; opens the operation's root span.

        Must be called before :meth:`start` (the client does).  With no
        handle, or a disabled one, every span below is the no-op
        :data:`~repro.obs.spans.NULL_SPAN`.
        """
        if instr is None:
            return
        self._instr = instr
        self._obs_op = instr.op_span(self.op_name, client=self.client_id)

    # -- protocol driver interface ----------------------------------------

    def start(self) -> list[Send]:
        """Send the first phase's requests."""
        raise NotImplementedError

    def on_message(self, sender: str, message: Message) -> list[Send]:
        """Deliver a reply; returns any next-phase requests to send."""
        if self.done or self._collector is None:
            return []
        if not self._collector.add(sender, message):
            return []
        return self._advance()

    def on_retransmit(self) -> list[Send]:
        """Periodic tick: resend the current request to non-responders."""
        if self.done or self._collector is None:
            return []
        return self._collector.retransmit()

    # -- helpers for subclasses --------------------------------------------

    def _advance(self) -> list[Send]:
        """Called after each accepted reply; subclass decides transitions."""
        raise NotImplementedError

    def _broadcast(
        self,
        message: Message,
        validator: Callable[[str, Message], Optional[Any]],
        targets: Optional[tuple[str, ...]] = None,
        *,
        prefill: Optional[Mapping[str, Any]] = None,
    ) -> list[Send]:
        """Begin a phase: install a :class:`QuorumRound`, emit its batch.

        With ``config.prefer_quorum`` the initial batch goes to a preferred
        quorum of 2f+1 replicas only (§3.3.1's O(|Q|) message discipline);
        retransmission naturally widens to every silent replica.  ``prefill``
        credits votes known before the round starts (write-back paths).
        """
        self.phases += 1
        self._obs_phase.end()
        self._obs_phase = self._instr.phase_span(
            message.KIND, parent=self._obs_op
        )
        self._collector = QuorumRound(
            self.config,
            message,
            validator,
            targets=targets,
            prefill=prefill,
            span=self._obs_phase,
        )
        return self._collector.begin()

    def _finish(self, result: Any) -> list[Send]:
        self.done = True
        self.result = result
        self._collector = None
        self._obs_phase.end()
        self._obs_op.set("phases", self.phases)
        self._obs_op.end()
        return []

    def _sign(self, statement: Any) -> Signature:
        return self.config.scheme.sign_statement(self.client_id, statement)


class WriteOperation(Operation):
    """The three-phase base write protocol (Figure 1)."""

    op_name = "write"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        value: Any,
        nonce: bytes,
        write_cert: Optional[WriteCertificate],
    ) -> None:
        super().__init__(client_id, config)
        self.value = value
        self.value_hash = hash_value(value)
        self.nonce = nonce
        self.prev_write_cert = write_cert
        #: The write certificate assembled in phase 3, for the client to
        #: retain for its next write.
        self.new_write_cert: Optional[WriteCertificate] = None
        self._phase = 0
        self._p_max: Optional[PrepareCertificate] = None
        self._target_ts: Optional[Timestamp] = None
        self._prepare_cert: Optional[PrepareCertificate] = None

    # -- phase 1: READ-TS ----------------------------------------------------

    def start(self) -> list[Send]:
        self._phase = 1
        piggyback = (
            self.prev_write_cert if self.config.piggyback_write_certs else None
        )
        return self._broadcast(
            ReadTsRequest(nonce=self.nonce, write_cert=piggyback),
            self._validate_read_ts_reply,
        )

    def _validate_read_ts_reply(
        self, sender: str, message: Message
    ) -> Optional[ReadTsReply]:
        if not isinstance(message, ReadTsReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = read_ts_reply_statement(message.cert.to_wire(), message.nonce)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        if not self.config.verifier.certificate_valid(message.cert):
            return None
        return message

    # -- phase 2: PREPARE ------------------------------------------------------

    def _begin_prepare(self, p_max: PrepareCertificate) -> list[Send]:
        self._phase = 2
        self._p_max = p_max
        self._target_ts = p_max.ts.succ(self.client_id)
        justify = self._justify_cert()
        request = self._make_prepare_request(p_max, self._target_ts, justify)
        return self._broadcast(request, self._validate_prepare_reply)

    def _justify_cert(self) -> Optional[WriteCertificate]:
        """Hook for the §7 strong variant; the base protocol sends none."""
        return None

    def _make_prepare_request(
        self,
        prev: PrepareCertificate,
        ts: Timestamp,
        justify: Optional[WriteCertificate],
    ) -> PrepareRequest:
        statement = prepare_request_statement(
            prev.to_wire(),
            ts,
            self.value_hash,
            None if self.prev_write_cert is None else self.prev_write_cert.to_wire(),
            None if justify is None else justify.to_wire(),
        )
        return PrepareRequest(
            prev_cert=prev,
            ts=ts,
            value_hash=self.value_hash,
            write_cert=self.prev_write_cert,
            justify_cert=justify,
            signature=self._sign(statement),
        )

    def _validate_prepare_reply(
        self, sender: str, message: Message
    ) -> Optional[Signature]:
        if not isinstance(message, PrepareReply):
            return None
        if message.ts != self._target_ts or message.value_hash != self.value_hash:
            return None
        if message.signature.signer != sender:
            return None
        statement = prepare_reply_statement(message.ts, message.value_hash)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    # -- phase 3: WRITE ----------------------------------------------------------

    def _begin_write(self, prepare_cert: PrepareCertificate) -> list[Send]:
        self._phase = 3
        self._prepare_cert = prepare_cert
        statement = write_request_statement(self.value, prepare_cert.to_wire())
        request = WriteRequest(
            value=self.value,
            prepare_cert=prepare_cert,
            signature=self._sign(statement),
        )
        return self._broadcast(request, self._validate_write_reply)

    def _validate_write_reply(
        self, sender: str, message: Message
    ) -> Optional[Signature]:
        if not isinstance(message, WriteReply) or message.ts != self._target_ts:
            return None
        if message.signature.signer != sender:
            return None
        statement = write_reply_statement(message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature

    # -- transitions ----------------------------------------------------------

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if not self._collector.have_quorum:
            return []
        if self._phase == 1:
            replies: list[ReadTsReply] = list(self._collector.replies.values())
            p_max = max((r.cert for r in replies), key=lambda c: c.ts)
            return self._begin_prepare(p_max)
        if self._phase == 2:
            signatures = tuple(self._collector.replies.values())
            assert self._target_ts is not None
            prepare_cert = PrepareCertificate(
                ts=self._target_ts,
                value_hash=self.value_hash,
                signatures=signatures,
            )
            return self._begin_write(prepare_cert)
        if self._phase == 3:
            signatures = tuple(self._collector.replies.values())
            assert self._target_ts is not None
            self.new_write_cert = WriteCertificate(
                ts=self._target_ts, signatures=signatures
            )
            return self._finish(self._target_ts)
        raise AssertionError(f"unexpected phase {self._phase}")


class ReadOperation(Operation):
    """One-phase read with the §3.2.2 write-back second phase when needed."""

    op_name = "read"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        nonce: bytes,
        *,
        hash_tie_break: bool = False,
        write_cert: Optional[WriteCertificate] = None,
    ) -> None:
        super().__init__(client_id, config)
        self.nonce = nonce
        #: §6.3: the optimized protocol can yield equal timestamps with
        #: different values; ties are broken by the larger hash.
        self.hash_tie_break = hash_tie_break
        #: §3.3.1 piggyback payload (the reader's last write certificate).
        self.piggyback_cert = write_cert
        self._phase = 0
        self._best: Optional[ReadReply] = None

    def start(self) -> list[Send]:
        self._phase = 1
        piggyback = (
            self.piggyback_cert if self.config.piggyback_write_certs else None
        )
        return self._broadcast(
            ReadRequest(nonce=self.nonce, write_cert=piggyback),
            self._validate_read_reply,
        )

    def _validate_read_reply(self, sender: str, message: Message) -> Optional[ReadReply]:
        if not isinstance(message, ReadReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = read_reply_statement(
            message.value, message.cert.to_wire(), message.nonce
        )
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        if not self.config.verifier.certificate_valid(message.cert):
            return None
        # The certificate vouches for h(data): a Byzantine replica cannot
        # return a fabricated value under a genuine certificate.
        if message.cert.h != hash_value(message.value):
            return None
        return message

    def _rank(self, reply: ReadReply) -> tuple:
        if self.hash_tie_break:
            return (reply.cert.ts, reply.cert.h)
        return (reply.cert.ts,)

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if self._phase == 1:
            if not self._collector.have_quorum:
                return []
            replies: list[ReadReply] = list(self._collector.replies.values())
            best = max(replies, key=self._rank)
            self._best = best
            best_key = (best.cert.ts, best.cert.h)
            up_to_date = frozenset(
                sender
                for sender, r in self._collector.replies.items()
                if (r.cert.ts, r.cert.h) == best_key
            )
            if len(up_to_date) >= self.config.quorum_size:
                return self._finish(best.value)
            return self._begin_write_back(best, up_to_date)
        if self._phase == 2:
            if self._collector.have_quorum:
                assert self._best is not None
                return self._finish(self._best.value)
            return []
        raise AssertionError(f"unexpected phase {self._phase}")

    def _begin_write_back(
        self, best: ReadReply, up_to_date: frozenset[str]
    ) -> list[Send]:
        """§3.2.2 phase 2: push the winning value to replicas that are behind.

        Identical to phase 3 of writing, "except that the client needs to
        send only to replicas that are behind, and it must wait only for
        enough responses to ensure that 2f + 1 replicas now have the new
        information".  The up-to-date replicas are credited into the round,
        so both the quorum predicate and the retransmit set count only the
        laggards.
        """
        self._phase = 2
        statement = write_request_statement(best.value, best.cert.to_wire())
        request = WriteRequest(
            value=best.value,
            prepare_cert=best.cert,
            signature=self._sign(statement),
        )
        targets = tuple(
            r for r in self.config.quorums.replica_ids if r not in up_to_date
        )
        return self._broadcast(
            request,
            self._validate_write_back_reply,
            targets,
            prefill={r: None for r in up_to_date},
        )

    def _validate_write_back_reply(
        self, sender: str, message: Message
    ) -> Optional[Signature]:
        assert self._best is not None
        if not isinstance(message, WriteReply) or message.ts != self._best.cert.ts:
            return None
        if message.signature.signer != sender:
            return None
        statement = write_reply_statement(message.ts)
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        return message.signature
