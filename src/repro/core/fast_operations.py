"""Fast-path client operations: MAC-only writes with a verified fallback.

:class:`FastWriteOperation` attempts the two-round signature-free write
(FAST-PREP then FAST-WRITE, see ``repro.core.fast_replica``).  The common
case costs the client zero signature operations: requests carry pairwise MAC
vectors, replies carry MAC rows, and the assembled
:class:`~repro.crypto.commitments.ProofOfWriting` plus the quorum of
write-ack rows replace the prepare and write certificates.

When the fast path cannot converge — predicted timestamps disagree beyond
repair, a quorum of acks cannot be assembled, or progress stalls across
retransmission ticks — the operation **falls back** to the signed base
protocol it inherits from :class:`~repro.core.operations.WriteOperation`.
Fallback begins with a signed READ-TS round whose replies may legitimately
carry *non-transferable* proof-evidence certificates; the choice of
``p_max`` therefore follows three rules, applied to candidate groups
``G = (ts, h)`` in descending order:

1. **Eligible wins** — a group backed by third-party-verifiable evidence
   (a quorum or vouch certificate) or by ``f+1`` distinct ``pvouch``
   signatures (which the client assembles into a transferable
   ``vouch``-evidence certificate) is chosen as ``p_max``.
2. **Provably-safe demotion** — a group is skipped when at least ``2f+1``
   valid replies do *not* carry it: a completed fast write is installed at
   ``f+1`` correct replicas, so at most ``2f`` valid replies can omit it —
   ``2f+1`` omissions prove the write never completed, and ordering below
   it cannot violate atomicity.
3. **Tick-bounded demotion** — after :data:`DEMOTION_TICKS` retransmission
   ticks with a quorum of replies, remaining unverifiable groups are
   skipped.  This is a liveness escape, not a safety proof: in a fully
   asynchronous run a completed-but-unvouchable write could in principle be
   ordered below (the same window §6.3 accepts for the optimized read
   tie-break); replicas re-converge via the write-back path.

:class:`FastReadOperation` applies the same eligibility and demotion rules
to reads, since fast replicas return proof-evidence certificates there too,
and uses the assembled vouch certificate for the §3.2.2 write-back.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace as dataclass_replace
from typing import Any, Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    FastPrepReply,
    FastPrepRequest,
    FastWriteReply,
    FastWriteRequest,
    Message,
    ReadReply,
    ReadTsReply,
    ReadTsRequest,
)
from repro.core.operations import ReadOperation, Send, WriteOperation
from repro.core.statements import (
    fast_prep_reply_statement,
    fast_prep_request_statement,
    fast_vouch_statement,
    fast_write_reply_statement,
    fast_write_request_statement,
    read_reply_statement,
    read_ts_reply_statement,
    statement_bytes,
)
from repro.core.timestamp import Timestamp
from repro.crypto.commitments import (
    ProofOfWriting,
    make_commitment,
    make_mac_row,
    make_opening,
)
from repro.crypto.hashing import digest, hash_value
from repro.crypto.signatures import Signature

__all__ = ["FastWriteOperation", "FastReadOperation", "DEMOTION_TICKS"]

#: Retransmission ticks (with a quorum of replies) before rule 3 demotes
#: unverifiable fallback candidates, and before a stalled fast phase gives
#: up and falls back to the signed protocol.
DEMOTION_TICKS = 3


def _vouch_sig_valid(
    config: SystemConfig, sig: Signature, sender: str, ts: Timestamp, h: bytes
) -> bool:
    """Is ``sig`` ``sender``'s signature over ``<FAST-VOUCH, ts, h>``?"""
    if sig.signer != sender:
        return False
    return config.verifier.verify_statement(
        sig, fast_vouch_statement(ts.to_wire(), h)
    )


class FastWriteOperation(WriteOperation):
    """Write via proofs of writing, falling back to the signed protocol.

    ``fast_path`` is True when the write completed signature-free;
    ``fell_back`` when it re-ran through the signed phases (a fallback write
    executes up to four phases: the two fast rounds it abandoned count).
    """

    op_name = "write"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        value: Any,
        nonce: bytes,
        write_cert: Optional[WriteCertificate],
    ) -> None:
        super().__init__(client_id, config, value, nonce, write_cert)
        self.fast_path = False
        self.fell_back = False
        self.opening = make_opening(client_id, self.value_hash, nonce)
        self.commitment = make_commitment(self.opening)
        #: 1 = FAST-PREP, 2 = FAST-WRITE, None = fallen back to signed.
        self._fast_phase: Optional[int] = 0
        self._auth = config.authenticator
        self._fast_pts: dict[str, Timestamp] = {}
        self._fast_rows: dict[str, tuple[tuple[str, bytes], ...]] = {}
        self._write_nonce = digest(b"fast-write", nonce)
        self._fb_nonce = digest(b"fast-fallback", nonce)
        self._fast_ticks = 0
        self._demote_ticks = 0
        # Fallback phase-1 bookkeeping: per candidate (ts, h) group, the
        # best transferable certificate seen and the pvouches collected.
        self._fb_certs: dict[tuple[Timestamp, bytes], PrepareCertificate] = {}
        self._pvouches: dict[tuple[Timestamp, bytes], dict[str, Signature]] = {}

    # -- fast phase 1: FAST-PREP -------------------------------------------

    def start(self) -> list[Send]:
        self._fast_phase = 1
        # Like PREPARE and READ-TS-PREP, the fast prepare always carries the
        # previous write certificate — it is what clears this client's
        # prepare-list entries (Figure 1 phase 2, not the §3.3.1 option).
        wcert = self.prev_write_cert
        request_stmt = statement_bytes(
            fast_prep_request_statement(
                self.client_id,
                self.value_hash,
                self.commitment,
                None if wcert is None else wcert.to_wire(),
                self.nonce,
            )
        )
        request = FastPrepRequest(
            client=self.client_id,
            value_hash=self.value_hash,
            commitment=self.commitment,
            nonce=self.nonce,
            write_cert=wcert,
            macs=make_mac_row(
                self._auth,
                self.client_id,
                self.config.quorums.replica_ids,
                request_stmt,
            ),
        )
        return self._broadcast(request, self._validate_fast_prep_reply)

    def _validate_fast_prep_reply(
        self, sender: str, message: Message
    ) -> Optional[FastPrepReply]:
        if not isinstance(message, FastPrepReply) or message.nonce != self.nonce:
            return None
        if message.replica != sender:
            return None
        envelope = statement_bytes(
            fast_prep_reply_statement(
                sender,
                self.client_id,
                None
                if message.prepared_ts is None
                else message.prepared_ts.to_wire(),
                self.value_hash,
                self.commitment,
                self.nonce,
            )
        )
        if not self._auth.check(sender, self.client_id, envelope, message.mac):
            return None
        if message.prepared_ts is not None:
            self._fast_pts[sender] = message.prepared_ts
            self._fast_rows[sender] = message.row
        # A MAC-authenticated refusal still counts as a vote: enough of
        # them trigger fallback, mirroring the §6 optimistic phase.
        return message

    # -- fast phase 2: FAST-WRITE ------------------------------------------

    def _begin_fast_write(self, ts: Timestamp) -> list[Send]:
        self.fast_path = True
        self._obs_op.set("fast_path", True)
        self._fast_phase = 2
        self._target_ts = ts
        rows = tuple(
            sorted(
                (sender, row)
                for sender, row in self._fast_rows.items()
                if self._fast_pts.get(sender) == ts
            )
        )
        proof = ProofOfWriting(
            commitment=self.commitment, opening=self.opening, rows=rows
        )
        request_stmt = statement_bytes(
            fast_write_request_statement(
                self.client_id,
                ts.to_wire(),
                self.value_hash,
                self.commitment,
                self._write_nonce,
            )
        )
        request = FastWriteRequest(
            client=self.client_id,
            ts=ts,
            value=self.value,
            proof=proof,
            nonce=self._write_nonce,
            macs=make_mac_row(
                self._auth,
                self.client_id,
                self.config.quorums.replica_ids,
                request_stmt,
            ),
        )
        return self._broadcast(request, self._validate_fast_write_reply)

    def _validate_fast_write_reply(
        self, sender: str, message: Message
    ) -> Optional[FastWriteReply]:
        if not isinstance(message, FastWriteReply):
            return None
        if message.nonce != self._write_nonce or message.replica != sender:
            return None
        if message.ts != self._target_ts:
            return None
        envelope = statement_bytes(
            fast_write_reply_statement(
                sender, self.client_id, message.ts.to_wire(), self._write_nonce
            )
        )
        if not self._auth.check(sender, self.client_id, envelope, message.mac):
            return None
        return message

    # -- fallback: the signed protocol -------------------------------------

    def _fall_back(self) -> list[Send]:
        """Abandon the fast rounds; restart through signed READ-TS."""
        self.fell_back = True
        self.fast_path = False
        self._obs_op.set("fell_back", True)
        self._fast_phase = None
        self._demote_ticks = 0
        self._phase = 1
        piggyback = (
            self.prev_write_cert if self.config.piggyback_write_certs else None
        )
        return self._broadcast(
            ReadTsRequest(nonce=self._fb_nonce, write_cert=piggyback),
            self._validate_fallback_read_ts_reply,
        )

    def _validate_fallback_read_ts_reply(
        self, sender: str, message: Message
    ) -> Optional[ReadTsReply]:
        if not isinstance(message, ReadTsReply) or message.nonce != self._fb_nonce:
            return None
        if message.signature.signer != sender:
            return None
        envelope = read_ts_reply_statement(message.cert.to_wire(), message.nonce)
        if not self.config.verifier.verify_statement(message.signature, envelope):
            return None
        cert = message.cert
        key = (cert.ts, cert.value_hash)
        if cert.evidence == "proof":
            # Not third-party verifiable; the reply is kept (the envelope
            # authenticates it) and the group becomes eligible only through
            # pvouches or a transferable certificate from another replica.
            pass
        else:
            if not self.config.verifier.certificate_valid(cert):
                return None
            self._fb_certs.setdefault(key, cert)
        if message.pvouch is not None and _vouch_sig_valid(
            self.config, message.pvouch, sender, cert.ts, cert.value_hash
        ):
            self._pvouches.setdefault(key, {})[sender] = message.pvouch
        return message

    def _choose_fallback_pmax(self) -> Optional[PrepareCertificate]:
        """Apply the three ordering rules to the fallback candidates."""
        assert self._collector is not None
        replies: dict[str, ReadTsReply] = self._collector.replies
        carriers: Counter = Counter(
            (r.cert.ts, r.cert.value_hash) for r in replies.values()
        )
        count = len(replies)
        need = self.config.quorum_size  # 2f+1 omissions prove non-completion
        f = self.config.f
        for key in sorted(carriers, reverse=True):
            cert = self._fb_certs.get(key)
            if cert is not None:
                return cert
            vouches = self._pvouches.get(key, {})
            if len(vouches) >= f + 1:
                ts, value_hash = key
                return PrepareCertificate(
                    ts=ts,
                    value_hash=value_hash,
                    signatures=tuple(
                        vouches[s] for s in sorted(vouches)
                    ),
                    evidence="vouch",
                )
            if count - carriers[key] >= need:
                continue  # rule 2: provably never completed
            if self._demote_ticks >= DEMOTION_TICKS:
                continue  # rule 3: liveness escape
            return None  # keep waiting for vouches or more replies
        return None

    # -- transitions --------------------------------------------------------

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if self._fast_phase == 1:
            quorum = self.config.quorum_size
            counts = Counter(self._fast_pts.values())
            for ts, count in counts.items():
                if count >= quorum:
                    return self._begin_fast_write(ts)
            if not self._collector.have_quorum:
                return []
            top = max(counts.values(), default=0)
            silent = self.config.n - self._collector.count
            if top + silent < quorum:
                return self._fall_back()
            return []
        if self._fast_phase == 2:
            if not self._collector.have_quorum:
                return []
            assert self._target_ts is not None
            rows = tuple(
                sorted(
                    (sender, reply.row)
                    for sender, reply in self._collector.replies.items()
                )
            )
            self.new_write_cert = WriteCertificate(
                ts=self._target_ts,
                signatures=(),
                evidence="proof",
                rows=rows,
            )
            return self._finish(self._target_ts)
        if self._phase == 1:
            if not self._collector.have_quorum:
                return []
            p_max = self._choose_fallback_pmax()
            if p_max is None:
                return []
            return self._begin_prepare(p_max)
        return super()._advance()

    def on_retransmit(self) -> list[Send]:
        if self.done:
            return []
        if self._fast_phase in (1, 2):
            self._fast_ticks += 1
            if self._fast_phase == 1 and self._collector is not None:
                # Mirror the §6 rule: a quorum replied without converging —
                # stop waiting for stragglers.
                if self._collector.have_quorum:
                    return self._fall_back()
            if self._fast_ticks >= DEMOTION_TICKS:
                # Stalled below quorum (e.g. fast requests are being
                # dropped): the signed protocol is the liveness path.
                return self._fall_back()
            return super().on_retransmit()
        if self._phase == 1 and self._collector is not None:
            if self._collector.have_quorum:
                self._demote_ticks += 1
                sends = self._advance()
                if sends or self.done:
                    return sends
        return super().on_retransmit()


class FastReadOperation(ReadOperation):
    """Read that understands proof-evidence certificates.

    Groups replies by ``(ts, h)`` exactly like the base read, but a group
    whose only evidence is non-transferable must earn eligibility through
    ``f+1`` pvouches (assembled into a vouch certificate used for any
    write-back) or be demoted by the same two rules the write fallback uses.
    """

    op_name = "read"

    def __init__(
        self,
        client_id: str,
        config: SystemConfig,
        nonce: bytes,
        *,
        hash_tie_break: bool = True,
        write_cert: Optional[WriteCertificate] = None,
    ) -> None:
        super().__init__(
            client_id,
            config,
            nonce,
            hash_tie_break=hash_tie_break,
            write_cert=write_cert,
        )
        self._group_certs: dict[tuple[Timestamp, bytes], PrepareCertificate] = {}
        self._pvouches: dict[tuple[Timestamp, bytes], dict[str, Signature]] = {}
        self._demote_ticks = 0

    def _validate_read_reply(
        self, sender: str, message: Message
    ) -> Optional[ReadReply]:
        if not isinstance(message, ReadReply) or message.nonce != self.nonce:
            return None
        if message.signature.signer != sender:
            return None
        statement = read_reply_statement(
            message.value, message.cert.to_wire(), message.nonce
        )
        if not self.config.verifier.verify_statement(message.signature, statement):
            return None
        cert = message.cert
        if cert.h != hash_value(message.value):
            return None
        key = (cert.ts, cert.value_hash)
        if cert.evidence != "proof":
            if not self.config.verifier.certificate_valid(cert):
                return None
            self._group_certs.setdefault(key, cert)
        if message.pvouch is not None and _vouch_sig_valid(
            self.config, message.pvouch, sender, cert.ts, cert.value_hash
        ):
            self._pvouches.setdefault(key, {})[sender] = message.pvouch
        return message

    def _transferable_cert(
        self, key: tuple[Timestamp, bytes]
    ) -> Optional[PrepareCertificate]:
        cert = self._group_certs.get(key)
        if cert is not None:
            return cert
        vouches = self._pvouches.get(key, {})
        if len(vouches) >= self.config.f + 1:
            ts, value_hash = key
            return PrepareCertificate(
                ts=ts,
                value_hash=value_hash,
                signatures=tuple(vouches[s] for s in sorted(vouches)),
                evidence="vouch",
            )
        return None

    def _advance(self) -> list[Send]:
        assert self._collector is not None
        if self._phase != 1:
            return super()._advance()
        if not self._collector.have_quorum:
            return []
        replies: dict[str, ReadReply] = self._collector.replies
        carriers: Counter = Counter(
            (r.cert.ts, r.cert.value_hash) for r in replies.values()
        )
        count = len(replies)
        need = self.config.quorum_size
        for key in sorted(carriers, reverse=True):
            cert = self._transferable_cert(key)
            if cert is not None:
                up_to_date = frozenset(
                    sender
                    for sender, r in replies.items()
                    if (r.cert.ts, r.cert.value_hash) == key
                )
                best = next(
                    r
                    for r in replies.values()
                    if (r.cert.ts, r.cert.value_hash) == key
                )
                # Write-back must present transferable evidence, so the
                # chosen certificate replaces a proof-evidence one.
                best = dataclass_replace(best, cert=cert)
                self._best = best
                if len(up_to_date) >= self.config.quorum_size:
                    return self._finish(best.value)
                return self._begin_write_back(best, up_to_date)
            if count - carriers[key] >= need:
                continue  # provably never completed
            if self._demote_ticks >= DEMOTION_TICKS:
                continue  # liveness escape (see module docstring)
            return []  # wait for vouches or more replies
        return []

    def on_retransmit(self) -> list[Send]:
        if (
            not self.done
            and self._phase == 1
            and self._collector is not None
            and self._collector.have_quorum
        ):
            self._demote_ticks += 1
            sends = self._advance()
            if sends or self.done:
                return sends
        return super().on_retransmit()
