"""Fast-path replica: signature-free writes via proofs of writing.

:class:`FastBftBcReplica` extends the §6 optimized replica with a two-round
MAC-only write protocol in the style of PoWerStore (arXiv 1212.3555),
adapted to BFT-BC's multi-writer, Byzantine-client setting:

* **FAST-PREP** — the client sends the value hash plus a fresh hash
  commitment; the replica predicts ``succ(pcert.ts, client)`` exactly like
  the §6 merged phase, records the proposal in the *same* ``optlist`` (so
  Lemma 1's at-most-two-prepared-timestamps bound is unchanged) plus a
  durable ``fastc`` commitment entry, and answers with a **MAC row** — one
  MAC per replica over the acknowledged ``(ts, h, C)`` statement — instead
  of a signature.
* **FAST-WRITE** — the client reveals the commitment's opening and presents
  a quorum of rows (:class:`~repro.crypto.commitments.ProofOfWriting`).
  Each replica checks *its own column* of the rows; a quorum of valid MACs
  to itself proves a quorum acknowledged the prepare, so it installs the
  value under a ``proof``-evidence certificate and acks with another row.

No digital signature is computed or verified anywhere on this path.  The
price is transferability: a Byzantine acker can craft a row that validates
for one receiver and not another, so proof evidence convinces only the
replica that checked it.  Every point where fast evidence must convince a
third party — phase-1 replies during fallback or reads — is bridged by
**vouches**: a replica whose stored certificate carries proof evidence
lazily signs ``<FAST-VOUCH, ts, h>`` (off the write path, cached), and
``f+1`` such signatures form a transferable ``vouch``-evidence certificate
(at least one signer is correct and only vouches for writes it verified).

Safety is otherwise the base protocol's: the fast prepare performs the same
conflict checks as the §6 opt-prepare against *both* prepare lists, the
``fastc`` map additionally pins the commitment so a recovered replica never
acks two different commitments for one predicted timestamp, and the signing
logs record MAC-acknowledged statements exactly as they record signed ones,
so the executable Lemma 1 invariants keep watching the fast path.
"""

from __future__ import annotations

from typing import Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    FastPrepReply,
    FastPrepRequest,
    FastWriteReply,
    FastWriteRequest,
    Message,
)
from repro.core.persistence import FastCommitment, PlistEntry
from repro.core.replica import OptimizedBftBcReplica
from repro.core.statements import (
    fast_prep_ack_statement,
    fast_prep_reply_statement,
    fast_prep_request_statement,
    fast_vouch_statement,
    fast_write_ack_statement,
    fast_write_reply_statement,
    fast_write_request_statement,
    statement_bytes,
)
from repro.core.timestamp import Timestamp
from repro.crypto.commitments import make_mac_row, row_mac_for
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature
from repro.obs.instrumentation import Instrumentation
from repro.storage import ReplicaStore

__all__ = ["FastBftBcReplica"]


class FastBftBcReplica(OptimizedBftBcReplica):
    """Replica speaking the signature-free fast path (plus all signed paths).

    The signed handlers are fully inherited — a fast cluster degrades to the
    plain optimized protocol whenever clients fall back — and the
    certificate-acceptance hooks are widened so certificates carrying proof
    evidence are accepted *iff* this replica's own MAC column checks out.
    """

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        store: Optional[ReplicaStore] = None,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        super().__init__(node_id, config, store, instrumentation=instrumentation)
        self._state.ensure_fastc()
        self._auth = config.authenticator
        self._replica_ids = tuple(config.quorums.replica_ids)
        # Volatile caches: positive own-column verdicts (content-addressed,
        # so stale entries are impossible) and lazily signed vouches.
        self._proof_ok: set[bytes] = set()
        self._pvouch_cache: dict[tuple[Timestamp, bytes], Signature] = {}

    @property
    def fastc(self):
        """Durable ``client -> (ts, h, C)`` fast-prepare commitments."""
        return self._state.fastc

    def recover(self) -> None:
        super().recover()
        self._proof_ok.clear()
        self._pvouch_cache.clear()

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, sender: str, message: Message) -> Optional[Message]:
        if isinstance(message, (FastPrepRequest, FastWriteRequest)):
            self.stats.handled[message.KIND] += 1
            if isinstance(message, FastPrepRequest):
                reply: Optional[Message] = self._handle_fast_prep(message)
            else:
                reply = self._handle_fast_write(message)
            if reply is not None:
                self.stats.replies += 1
            return reply
        return super()._dispatch(sender, message)

    # -- helpers -----------------------------------------------------------

    def _fast_client_ok(self, client: str) -> bool:
        """The ACL half of ``_client_request_ok`` (there is no signature)."""
        if not self.config.is_authorized_writer(client):
            self.stats.discard("unauthorized")
            return False
        if self.config.strict_stop and self.config.registry.is_revoked(client):
            self.stats.discard("revoked")
            return False
        return True

    def _request_mac_ok(
        self, client: str, macs: tuple[tuple[str, bytes], ...], message: bytes
    ) -> bool:
        """Check the MAC addressed to this replica in a client's vector.

        Keys are looked up by the request's *embedded* client identity, so a
        replayed request authenticates as its original author — mirroring
        how a replayed signed request verifies under the original signer.
        """
        mac = row_mac_for(macs, self.node_id)
        if mac is None or not self._auth.check(
            client, self.node_id, message, mac
        ):
            self.stats.discard("bad-mac")
            return False
        return True

    def _count_own_column(
        self,
        rows: tuple[tuple[str, tuple[tuple[str, bytes], ...]], ...],
        message: bytes,
    ) -> int:
        """Distinct replica ackers with a valid MAC to *this* replica."""
        replicas = set(self._replica_ids)
        valid = 0
        seen: set[str] = set()
        for acker, row in rows:
            if acker in seen or acker not in replicas:
                continue
            seen.add(acker)
            mac = row_mac_for(row, self.node_id)
            if mac is not None and self._auth.check(
                acker, self.node_id, message, mac
            ):
                valid += 1
        return valid

    # -- widened certificate acceptance ------------------------------------

    def _certificate_valid(self, cert: PrepareCertificate) -> bool:
        """Accept proof evidence by checking this replica's own MAC column.

        Quorum and vouch evidence still go through the shared verifier.  The
        positive verdict is memoized by content hash — MAC checks are cheap,
        but retransmissions re-present identical certificates.
        """
        if cert.evidence != "proof":
            return super()._certificate_valid(cert)
        proof = cert.proof
        if proof is None or not proof.opens():
            return False
        key = hash_value(("pcert", cert.to_wire()))
        if key in self._proof_ok:
            return True
        ack = statement_bytes(
            fast_prep_ack_statement(
                cert.ts.to_wire(), cert.value_hash, proof.commitment
            )
        )
        if self._count_own_column(proof.rows, ack) < self.config.quorum_size:
            return False
        self._proof_ok.add(key)
        return True

    def _write_certificate_valid(self, wcert: WriteCertificate) -> bool:
        if wcert.evidence != "proof":
            return super()._write_certificate_valid(wcert)
        key = hash_value(("wcert", wcert.to_wire()))
        if key in self._proof_ok:
            return True
        ack = statement_bytes(fast_write_ack_statement(wcert.ts.to_wire()))
        if self._count_own_column(wcert.rows, ack) < self.config.quorum_size:
            return False
        self._proof_ok.add(key)
        return True

    # -- vouching ----------------------------------------------------------

    def _pvouch(self) -> Optional[Signature]:
        """Sign ``<FAST-VOUCH, ts, h>`` for a proof-evidence ``pcert``.

        This is the one signature the fast path ever needs, and it is lazy:
        computed only when a phase-1 read actually asks while the stored
        certificate is non-transferable, then cached.  Counted separately
        from foreground signs so E20's write-path accounting stays exact.
        """
        if self.pcert.evidence != "proof":
            return None
        key = (self.pcert.ts, self.pcert.value_hash)
        cached = self._pvouch_cache.get(key)
        if cached is not None:
            return cached
        signature = self.config.scheme.sign_statement(
            self.node_id,
            fast_vouch_statement(self.pcert.ts.to_wire(), self.pcert.value_hash),
        )
        self.stats.vouch_signs += 1
        self._pvouch_cache[key] = signature
        return signature

    # -- fast phase 1: FAST-PREP -------------------------------------------

    def _handle_fast_prep(
        self, message: FastPrepRequest
    ) -> Optional[FastPrepReply]:
        client = message.client
        if not self._fast_client_ok(client):
            return None
        request = statement_bytes(
            fast_prep_request_statement(
                client,
                message.value_hash,
                message.commitment,
                None
                if message.write_cert is None
                else message.write_cert.to_wire(),
                message.nonce,
            )
        )
        if not self._request_mac_ok(client, message.macs, request):
            return None
        if not self._apply_write_certificate(message.write_cert):
            return None
        predicted = self.pcert.ts.succ(client)
        prepared_ts: Optional[Timestamp] = None
        row: tuple[tuple[str, bytes], ...] = ()
        if self._may_fast_ack(
            client, predicted, message.value_hash, message.commitment
        ):
            if client not in self.optlist:
                self.optlist[client] = PlistEntry(
                    ts=predicted, value_hash=message.value_hash
                )
            entry = self.fastc.get(client)
            if entry is None or entry.ts != predicted:
                self.fastc[client] = FastCommitment(
                    ts=predicted,
                    value_hash=message.value_hash,
                    commitment=message.commitment,
                )
            # A MAC-acknowledged prepare counts against Lemma 1 exactly
            # like a signed one.
            self.signed_prepare_replies.add(
                (predicted, message.value_hash, client)
            )
            prepared_ts = predicted
            row = make_mac_row(
                self._auth,
                self.node_id,
                self._replica_ids,
                statement_bytes(
                    fast_prep_ack_statement(
                        predicted.to_wire(),
                        message.value_hash,
                        message.commitment,
                    )
                ),
            )
        envelope = self._auth.mac(
            self.node_id,
            client,
            statement_bytes(
                fast_prep_reply_statement(
                    self.node_id,
                    client,
                    None if prepared_ts is None else prepared_ts.to_wire(),
                    message.value_hash,
                    message.commitment,
                    message.nonce,
                )
            ),
        )
        return FastPrepReply(
            replica=self.node_id,
            prepared_ts=prepared_ts,
            row=row,
            nonce=message.nonce,
            mac=envelope,
        )

    def _may_fast_ack(
        self, client: str, predicted: Timestamp, value_hash: bytes, commitment: bytes
    ) -> bool:
        """The §6.2 opt-prepare rule plus commitment pinning.

        ``fastc`` refuses a *second commitment* for an already-acked
        predicted timestamp even when ``(ts, h)`` match: one fast prepare,
        one commitment — so a client cannot stockpile alternative proofs
        for the same slot.
        """
        if not self._may_opt_prepare(client, predicted, value_hash):
            return False
        entry = self.fastc.get(client)
        if entry is not None and entry.ts == predicted and (
            entry.value_hash != value_hash or entry.commitment != commitment
        ):
            return False
        return True

    # -- fast phase 2: FAST-WRITE ------------------------------------------

    def _handle_fast_write(
        self, message: FastWriteRequest
    ) -> Optional[FastWriteReply]:
        client = message.client
        if not self._fast_client_ok(client):
            return None
        value_hash = hash_value(message.value)
        request = statement_bytes(
            fast_write_request_statement(
                client,
                message.ts.to_wire(),
                value_hash,
                message.proof.commitment,
                message.nonce,
            )
        )
        if not self._request_mac_ok(client, message.macs, request):
            return None
        if not message.proof.opens():
            self.stats.discard("bad-opening")
            return None
        cert = PrepareCertificate(
            ts=message.ts,
            value_hash=value_hash,
            signatures=(),
            evidence="proof",
            proof=message.proof,
        )
        if not self._certificate_valid(cert):
            self.stats.discard("bad-proof")
            return None
        if self._should_install(cert):
            self._state.install(message.value, cert)
            self.stats.writes_installed += 1
        # The MAC-acknowledged write, logged for Lemma 1 like a signed one.
        self.signed_write_replies.add(message.ts)
        row = make_mac_row(
            self._auth,
            self.node_id,
            self._replica_ids,
            statement_bytes(fast_write_ack_statement(message.ts.to_wire())),
        )
        envelope = self._auth.mac(
            self.node_id,
            client,
            statement_bytes(
                fast_write_reply_statement(
                    self.node_id, client, message.ts.to_wire(), message.nonce
                )
            ),
        )
        return FastWriteReply(
            replica=self.node_id,
            ts=message.ts,
            row=row,
            nonce=message.nonce,
            mac=envelope,
        )

    # -- housekeeping ------------------------------------------------------

    def _gc_prepare_lists(self) -> None:
        super()._gc_prepare_lists()
        self.fastc.gc_stale(self.write_ts)
