"""Cross-object batching: one wire frame per (round, destination).

A multi-object client with k operations in flight fans each request out to
3f+1 replicas, producing k frames per replica per round; the replicas answer
with k more.  All of those frames share a destination, so the
:class:`BatchCoalescer` merges them into a single :class:`BatchEnvelope` —
one frame per destination per send round — and the receiving adapter unpacks
it and processes the inner messages in order.

The envelope carries the *encoded bytes* of each inner message (the
canonical encoding is self-delimiting, so bytes compose), which threads the
encode-once wire cache straight through batching: building a batch reuses
each message's cached bytes and never re-serialises a payload.

Batching is pure transport-level grouping.  Inner messages keep their own
signatures — for multi-object traffic those are scoped per object id
(:class:`~repro.core.multiobject.ScopedSignatureScheme`) — so the §3.2
replay-prevention argument is untouched: a batch conveys exactly the same
authenticated statements as the unbatched frames it replaces, and a
Byzantine node gains nothing it could not do by sending the same messages
separately.  Envelopes never nest: a ``BATCH`` payload inside a batch is
discarded at unpack time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, ClassVar, Optional

from repro.core.messages import (
    Message,
    PrepareReply,
    PrepareRequest,
    ReadReply,
    ReadRequest,
    ReadTsPrepRequest,
    ReadTsReply,
    ReadTsRequest,
    WriteReply,
    WriteRequest,
    message_from_wire,
    message_wire_bytes,
    register_message,
)
from repro.core.phases import Send
from repro.core.statements import (
    prepare_reply_statement,
    prepare_request_statement,
    read_reply_statement,
    read_ts_prep_request_statement,
    read_ts_reply_statement,
    write_reply_statement,
    write_request_statement,
)
from repro.core.verification import Verifier
from repro.crypto.signatures import Signature
from repro.encoding import canonical_decode
from repro.errors import EncodingError, ProtocolError

__all__ = [
    "BatchEnvelope",
    "BatchStats",
    "BatchCoalescer",
    "expand_message",
    "batch_signature_checks",
    "prevalidate_batch",
]


@register_message
@dataclass(frozen=True)
class BatchEnvelope(Message):
    """A frame carrying several same-destination messages' encoded bytes."""

    KIND: ClassVar[str] = "BATCH"
    payloads: tuple[bytes, ...]

    def to_wire(self) -> dict[str, Any]:
        return {"msgs": self.payloads}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "BatchEnvelope":
        payloads = wire["msgs"]
        if (
            not isinstance(payloads, tuple)
            or not payloads
            or not all(isinstance(p, bytes) for p in payloads)
        ):
            raise ProtocolError(f"malformed batch envelope: {wire!r}")
        return cls(payloads=payloads)

    def __len__(self) -> int:
        return len(self.payloads)


@dataclass
class BatchStats:
    """Coalescing counters and the batch-size distribution (E15b)."""

    sends_in: int = 0
    frames_out: int = 0
    batches: int = 0
    messages_batched: int = 0
    malformed_payloads: int = 0
    batch_sizes: Counter = field(default_factory=Counter)

    @property
    def frames_saved(self) -> int:
        """Wire frames avoided by coalescing."""
        return self.sends_in - self.frames_out

    @property
    def mean_batch_size(self) -> float:
        """Average messages per emitted batch (0 when none formed)."""
        return self.messages_batched / self.batches if self.batches else 0.0

    def reset(self) -> None:
        self.sends_in = 0
        self.frames_out = 0
        self.batches = 0
        self.messages_batched = 0
        self.malformed_payloads = 0
        self.batch_sizes.clear()


class BatchCoalescer:
    """Merges same-destination sends from one round into batch envelopes.

    ``coalesce`` groups a send batch by destination, preserving the order of
    first appearance and the relative order of messages per destination.
    Destinations with a single message pass through untouched — when no two
    sends share a destination the output is *identical* to the input, which
    is what makes batching a provable no-op for single-object workloads (the
    differential tests pin this down byte for byte).
    """

    def __init__(self, stats: Optional[BatchStats] = None) -> None:
        self.stats = stats if stats is not None else BatchStats()

    def coalesce(self, sends: list[Send]) -> list[Send]:
        """One send round in, one frame per distinct destination out."""
        self.stats.sends_in += len(sends)
        if len(sends) < 2:
            self.stats.frames_out += len(sends)
            return sends
        by_dest: dict[str, list[Send]] = {}
        for send in sends:
            by_dest.setdefault(send.dest, []).append(send)
        out: list[Send] = []
        for dest, group in by_dest.items():
            # Never nest envelopes: a group containing a batch (or a lone
            # message) is forwarded as-is.
            if len(group) == 1 or any(
                isinstance(s.message, BatchEnvelope) for s in group
            ):
                out.extend(group)
                self.stats.frames_out += len(group)
                continue
            payloads = tuple(message_wire_bytes(s.message) for s in group)
            out.append(Send(dest=dest, message=BatchEnvelope(payloads=payloads)))
            self.stats.frames_out += 1
            self.stats.batches += 1
            self.stats.messages_batched += len(group)
            self.stats.batch_sizes[len(group)] += 1
        return out


# -- batch signature prevalidation ------------------------------------------
#
# Each extractor answers: which (signature, statement) checks and which
# certificate validations will the receiving state machine perform while
# handling this message?  The statements are built *exactly* as the handlers
# build them, so a batch pass through ``Verifier.verify_batch`` leaves every
# one of the handler's subsequent checks a memo hit.  Fast-path messages are
# MAC-authenticated and carry no signatures, so they contribute nothing.


def _cert_wire(cert: Any) -> Any:
    return None if cert is None else cert.to_wire()


def _checks_prepare(message: PrepareRequest, checks: list, certs: list) -> None:
    checks.append(
        (
            message.signature,
            prepare_request_statement(
                message.prev_cert.to_wire(),
                message.ts,
                message.value_hash,
                _cert_wire(message.write_cert),
                _cert_wire(message.justify_cert),
            ),
        )
    )
    certs.append(message.prev_cert)
    if message.write_cert is not None:
        certs.append(message.write_cert)
    if message.justify_cert is not None:
        certs.append(message.justify_cert)


def _checks_write(message: WriteRequest, checks: list, certs: list) -> None:
    checks.append(
        (
            message.signature,
            write_request_statement(message.value, message.prepare_cert.to_wire()),
        )
    )
    certs.append(message.prepare_cert)


def _checks_read_ts_prep(
    message: ReadTsPrepRequest, checks: list, certs: list
) -> None:
    checks.append(
        (
            message.signature,
            read_ts_prep_request_statement(
                message.value_hash, _cert_wire(message.write_cert), message.nonce
            ),
        )
    )
    if message.write_cert is not None:
        certs.append(message.write_cert)


def _checks_read_request(
    message: "ReadTsRequest | ReadRequest", checks: list, certs: list
) -> None:
    if message.write_cert is not None:
        certs.append(message.write_cert)


def _checks_prepare_reply(
    message: PrepareReply, checks: list, certs: list
) -> None:
    checks.append(
        (message.signature, prepare_reply_statement(message.ts, message.value_hash))
    )


def _checks_write_reply(message: WriteReply, checks: list, certs: list) -> None:
    checks.append((message.signature, write_reply_statement(message.ts)))


def _checks_read_ts_reply(
    message: ReadTsReply, checks: list, certs: list
) -> None:
    checks.append(
        (
            message.signature,
            read_ts_reply_statement(message.cert.to_wire(), message.nonce),
        )
    )
    if message.ts_vouch is not None:
        checks.append((message.ts_vouch, write_reply_statement(message.cert.ts)))
    certs.append(message.cert)


def _checks_read_reply(message: ReadReply, checks: list, certs: list) -> None:
    checks.append(
        (
            message.signature,
            read_reply_statement(
                message.value, message.cert.to_wire(), message.nonce
            ),
        )
    )
    if message.ts_vouch is not None:
        checks.append((message.ts_vouch, write_reply_statement(message.cert.ts)))
    certs.append(message.cert)


_CHECK_EXTRACTORS: dict[type, Any] = {
    PrepareRequest: _checks_prepare,
    WriteRequest: _checks_write,
    ReadTsPrepRequest: _checks_read_ts_prep,
    ReadTsRequest: _checks_read_request,
    ReadRequest: _checks_read_request,
    PrepareReply: _checks_prepare_reply,
    WriteReply: _checks_write_reply,
    ReadTsReply: _checks_read_ts_reply,
    ReadReply: _checks_read_reply,
}


def batch_signature_checks(
    messages: "list[Message]",
) -> tuple[list[tuple[Signature, tuple]], list[Any]]:
    """The signature checks and certificate validations a batch will need.

    Messages outside the signed single-object vocabulary (fast-path MACs,
    object envelopes, baselines) contribute nothing — prevalidation is an
    optimization, never a gate, so an uncovered kind simply verifies at its
    handler as before.
    """
    checks: list[tuple[Signature, tuple]] = []
    certs: list[Any] = []
    for message in messages:
        extractor = _CHECK_EXTRACTORS.get(type(message))
        if extractor is not None:
            extractor(message, checks, certs)
    return checks, certs


def prevalidate_batch(verifier: Verifier, messages: "list[Message]") -> int:
    """Warm ``verifier``'s memo for a batch of messages in one amortized pass.

    Called by the batch-hosting adapters (simulator nodes, the TCP server's
    chunk loop, the client-side mux) just before the messages are handled
    individually.  Skipped when the memo is disabled — without it the
    handlers would re-verify everything and the pass would double the work —
    or when the batch holds fewer than two checks, where there is nothing to
    amortize.  Returns the number of signature checks submitted.
    """
    if not verifier.enabled:
        return 0
    checks, certs = batch_signature_checks(messages)
    if len(checks) + len(certs) < 2:
        return 0
    verifier.verify_batch(checks, certificates=certs)
    return len(checks)


def expand_message(
    message: Message, stats: Optional[BatchStats] = None
) -> list[Message]:
    """The inner messages of a batch, or ``[message]`` itself.

    Malformed payloads and nested envelopes are skipped (counted on
    ``stats`` when given) — per the paper's discipline, invalid input is
    silently discarded and retransmission recovers.
    """
    if not isinstance(message, BatchEnvelope):
        return [message]
    inner: list[Message] = []
    for payload in message.payloads:
        try:
            decoded = message_from_wire(canonical_decode(payload))
        except (EncodingError, ProtocolError):
            if stats is not None:
                stats.malformed_payloads += 1
            continue
        if isinstance(decoded, BatchEnvelope):
            if stats is not None:
                stats.malformed_payloads += 1
            continue
        inner.append(decoded)
    return inner
