"""The paper's primary contribution: the BFT-BC protocol family.

Public surface:

* :func:`~repro.core.config.make_system` — build a configured deployment.
* :class:`~repro.core.client.BftBcClient` /
  :class:`~repro.core.client.OptimizedBftBcClient` /
  :class:`~repro.core.client.StrongBftBcClient` — the three client variants.
* :class:`~repro.core.replica.BftBcReplica` /
  :class:`~repro.core.replica.OptimizedBftBcReplica` — the replica variants.
* :class:`~repro.core.quorum.QuorumSystem`,
  :class:`~repro.core.timestamp.Timestamp`, certificates, and messages.
"""

from repro.core.batching import (
    BatchCoalescer,
    BatchEnvelope,
    BatchStats,
    expand_message,
)
from repro.core.certificates import (
    GENESIS_VALUE,
    PrepareCertificate,
    WriteCertificate,
    genesis_prepare_certificate,
)
from repro.core.client import (
    BftBcClient,
    FastBftBcClient,
    OptimizedBftBcClient,
    StrongBftBcClient,
)
from repro.core.config import SystemConfig, Variant, make_system
from repro.core.fast_operations import FastReadOperation, FastWriteOperation
from repro.core.fast_replica import FastBftBcReplica
from repro.core.messages import (
    FastPrepReply,
    FastPrepRequest,
    FastWriteReply,
    FastWriteRequest,
    Message,
    PrepareReply,
    PrepareRequest,
    ReadReply,
    ReadRequest,
    ReadTsPrepReply,
    ReadTsPrepRequest,
    ReadTsReply,
    ReadTsRequest,
    WriteReply,
    WriteRequest,
    message_from_wire,
    message_to_wire,
    message_wire_bytes,
    wire_cache_stats,
)
from repro.core.multiobject import (
    MultiObjectClient,
    MultiObjectReplica,
    ObjectMessage,
    ScopedSignatureScheme,
)
from repro.core.operations import Operation, ReadOperation, Send, WriteOperation
from repro.core.optimized_operations import OptimizedWriteOperation
from repro.core.phases import QuorumRound, ReplyCollector
from repro.core.quorum import QuorumSystem, client_id, replica_id
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica, PlistEntry
from repro.core.strong_operations import StrongWriteOperation
from repro.core.timestamp import ZERO_TS, Timestamp, succ
from repro.core.verification import VerificationStats, Verifier

__all__ = [
    "make_system",
    "SystemConfig",
    "Variant",
    "QuorumSystem",
    "Timestamp",
    "ZERO_TS",
    "succ",
    "replica_id",
    "client_id",
    "GENESIS_VALUE",
    "PrepareCertificate",
    "WriteCertificate",
    "genesis_prepare_certificate",
    "BftBcClient",
    "OptimizedBftBcClient",
    "StrongBftBcClient",
    "FastBftBcClient",
    "BftBcReplica",
    "OptimizedBftBcReplica",
    "FastBftBcReplica",
    "PlistEntry",
    "MultiObjectClient",
    "MultiObjectReplica",
    "ObjectMessage",
    "ScopedSignatureScheme",
    "Operation",
    "WriteOperation",
    "ReadOperation",
    "OptimizedWriteOperation",
    "StrongWriteOperation",
    "FastWriteOperation",
    "FastReadOperation",
    "QuorumRound",
    "ReplyCollector",
    "Verifier",
    "VerificationStats",
    "Send",
    "Message",
    "message_to_wire",
    "message_from_wire",
    "message_wire_bytes",
    "wire_cache_stats",
    "BatchCoalescer",
    "BatchEnvelope",
    "BatchStats",
    "expand_message",
    "ReadTsRequest",
    "ReadTsReply",
    "PrepareRequest",
    "PrepareReply",
    "WriteRequest",
    "WriteReply",
    "ReadRequest",
    "ReadReply",
    "ReadTsPrepRequest",
    "ReadTsPrepReply",
    "FastPrepRequest",
    "FastPrepReply",
    "FastWriteRequest",
    "FastWriteReply",
]
