"""Quarantine-and-rebuild state repair (the self-stabilization loop).

A replica that detects corruption — a :attr:`~repro.storage.ReplicaStore.suspect`
store after recovery, or a live state that fails its periodic self-audit —
cannot serve protocol traffic: its verified state may *trail* writes it
already acknowledged, so a READ-TS or READ reply from it could help a
Byzantine client assemble a certificate for stale data.  Instead it enters
QUARANTINED mode (every request is discarded with reason ``quarantined``)
and rebuilds from its peers via the :class:`StateRepair` driver below.

The driver is sans-I/O, exactly like the client operations in
:mod:`repro.core.operations`: :meth:`StateRepair.begin` and
:meth:`StateRepair.retransmit` return :class:`~repro.core.phases.Send`
batches and :meth:`StateRepair.on_reply` consumes replies, so the same
object runs on the deterministic simulator, over asyncio TCP, and inside
:class:`~repro.cluster.process.ProcessCluster` workers.

Safety (see PROTOCOL.md for the full argument):

* Replies are collected from a **quorum (2f+1)** of peers, of which at
  most *f* are Byzantine, so at least f+1 candidates come from correct
  replicas — and any write that completed at a quorum is present in at
  least one of them (quorum intersection).
* Nothing in a reply is trusted: each candidate snapshot is replayed
  through a scratch :class:`~repro.core.persistence.DurableReplicaState`,
  its fingerprint recomputed, and its embedded prepare certificate
  re-verified against the quorum system
  (:func:`validate_repair_candidate`, shared with the PR-6 shard
  bootstrap).  A Byzantine peer cannot mint a certified timestamp the
  group never prepared, so "highest correctly-certified timestamp wins"
  can only move the repaired replica *forward*.
* The repaired replica keeps its **own** surviving signing logs
  (``swr``/``spr``/``fastc``) instead of adopting a peer's: signing logs
  are records of what *this* replica signed, and importing another
  replica's would double-count signatures in the Lemma 1 accounting.
  Losing part of its own log to the corruption is covered by the fault
  model — the corrupted replica counts against *f* while quarantined, and
  quorum intersection tolerates one forgetful replica after it rejoins.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.messages import RepairReply, RepairRequest
from repro.core.persistence import DurableReplicaState
from repro.core.phases import Send
from repro.crypto.hashing import hash_value
from repro.errors import ProtocolError, StorageError
from repro.storage.base import MemoryStore

__all__ = ["validate_repair_candidate", "StateRepair"]


def validate_repair_candidate(
    snapshot: Any,
    claimed_fingerprint: Any,
    scheme: Any,
    quorums: Any,
    *,
    cert_check: Optional[Callable[[Any], bool]] = None,
) -> Optional[tuple[Any, Any]]:
    """Revalidate one peer's snapshot; ``(certified ts, snapshot)`` or None.

    The fingerprint recomputation catches transfer corruption and any
    snapshot the state layer cannot even rebuild; the prepare-certificate
    check is the unforgeable part — a Byzantine peer cannot mint a
    certified timestamp the group never prepared.  Shared by the shard
    bootstrap (per-object, with a scoped scheme) and whole-state repair.

    ``cert_check`` substitutes the verifying replica's own
    certificate-acceptance hook for the default third-party
    ``pcert.is_valid``.  The fast-path variant needs this: a peer whose
    current certificate carries signature-free *proof* evidence is only
    checkable through the verifier's own MAC column — exactly the rule the
    replica already applies to live FAST-WRITE traffic, so repair adds no
    new trust assumption.
    """
    scratch = DurableReplicaState(MemoryStore(snapshot_interval=None))
    scratch.store.write_snapshot(snapshot)
    try:
        scratch.recover()
    except (StorageError, ProtocolError, KeyError, TypeError, ValueError):
        return None
    if scratch.fingerprint() != claimed_fingerprint:
        return None
    pcert = scratch.pcert
    if not pcert.is_genesis:
        if cert_check is not None:
            if not cert_check(pcert):
                return None
        elif not pcert.is_valid(scheme, quorums):
            return None
    return pcert.ts, snapshot


class StateRepair:
    """Sans-I/O driver rebuilding one replica's state from its peers.

    Args:
        node_id: the repairing replica's id (put in requests so peers can
            address their replies, and bound into the round nonce).
        config: the replica's :class:`~repro.core.config.SystemConfig`
            (supplies the quorum system and signature scheme used to
            revalidate candidates).
        install: callback receiving the winning snapshot wire value; the
            hosting replica installs it and exits quarantine.
        peers: explicit peer ids; defaults to every other active replica.
        cert_check: the hosting replica's certificate-acceptance hook (see
            :func:`validate_repair_candidate`); None means third-party
            ``is_valid``.
    """

    def __init__(
        self,
        node_id: str,
        config: Any,
        install: Callable[[dict[str, Any]], None],
        *,
        peers: Optional[Sequence[str]] = None,
        cert_check: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self._install = install
        self._cert_check = cert_check
        self.peers: tuple[str, ...] = tuple(
            peers
            if peers is not None
            else (p for p in config.quorums.replica_ids if p != node_id)
        )
        self.active = False
        self.rounds = 0
        self.rejects = 0
        self._nonce: Optional[bytes] = None
        self._replies: dict[str, RepairReply] = {}

    @property
    def nonce(self) -> Optional[bytes]:
        return self._nonce

    def begin(self) -> list[Send]:
        """Start (or restart) a repair round; returns the pull requests.

        Deterministic per (replica, round): replays in the simulator
        reproduce byte-identical transfers.
        """
        self.active = True
        self.rounds += 1
        self._nonce = hash_value(("state-repair", self.node_id, self.rounds))[:16]
        self._replies = {}
        return self._requests(self.peers)

    def retransmit(self) -> list[Send]:
        """Re-request from peers that have not answered this round yet."""
        if not self.active:
            return []
        return self._requests(
            [p for p in self.peers if p not in self._replies]
        )

    def _requests(self, peers: Sequence[str]) -> list[Send]:
        assert self._nonce is not None
        message = RepairRequest(replica=self.node_id, nonce=self._nonce)
        return [Send(dest=peer, message=message) for peer in peers]

    def on_reply(self, sender: str, message: RepairReply) -> bool:
        """Consume one peer's reply; True when the repair just completed.

        Completion needs a quorum of replies *and* at least one candidate
        that survives revalidation; with at most f Byzantine repliers in a
        2f+1 quorum the latter always holds, but a defensive driver keeps
        collecting from the stragglers rather than trusting that bound.
        """
        if (
            not self.active
            or message.nonce != self._nonce
            or sender not in self.peers
            or sender in self._replies
        ):
            return False
        self._replies[sender] = message
        if len(self._replies) < self.config.quorums.quorum_size:
            return False
        return self._try_finish()

    def _try_finish(self) -> bool:
        best: Optional[tuple[Any, Any]] = None
        rejects = 0
        # Sorted iteration keeps the winner deterministic when several
        # peers hold the same (highest) certified timestamp.
        for sender in sorted(self._replies):
            reply = self._replies[sender]
            checked = validate_repair_candidate(
                reply.snapshot,
                reply.fingerprint,
                self.config.scheme,
                self.config.quorums,
                cert_check=self._cert_check,
            )
            if checked is None:
                rejects += 1
                continue
            if best is None or best[0] < checked[0]:
                best = checked
        if best is None:
            # Every reply so far failed validation; stay active and let
            # late replies / the next retransmit round supply a good one.
            return False
        # Candidates are revalidated from scratch on every attempt, so the
        # reject counter is settled only once, at completion.
        self.rejects += rejects
        self.active = False
        self._replies = {}
        self._install(best[1])
        return True
