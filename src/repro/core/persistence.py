"""Durable replica state: the bridge between replicas and their store.

:class:`DurableReplicaState` owns every piece of Figure-2 state a
:class:`~repro.core.replica.BftBcReplica` holds — ``data``, ``pcert``,
``plist`` (and the §6 ``optlist``), ``write_ts`` — plus the signing logs the
executable Lemma 1 invariants read.  All mutation goes through it, and every
mutation is appended to the backing
:class:`~repro.storage.base.ReplicaStore` *before* the change becomes
visible, so a replica can be rebuilt after a crash by replaying
snapshot + log (:meth:`DurableReplicaState.recover`).

The store traffics only in wire values (canonically encodable tuples and
dicts); this module owns the translation:

==============  =====================================  =====================
record tag      payload                                meaning
==============  =====================================  =====================
``plist-set``   ``(client, ts_wire, value_hash)``      plist entry written
``plist-del``   ``(client,)``                          plist entry GC'd
``optlist-set`` ``(client, ts_wire, value_hash)``      §6 optlist entry
``optlist-del`` ``(client,)``                          §6 optlist GC
``fastc-set``   ``(client, ts_wire, h, commitment)``   fast-path commitment
``fastc-del``   ``(client,)``                          fast commitment GC
``install``     ``(value, pcert_wire)``                phase-3 install
``write-ts``    ``(ts_wire,)``                         write_ts advanced
``swr``         ``(ts_wire,)``                         WRITE-REPLY signed
``spr``         ``(ts_wire, value_hash, client)``      PREPARE-REPLY signed
==============  =====================================  =====================

Replay is idempotent: ``plist``/``optlist`` records are last-writer-wins,
``install`` and ``write-ts`` carry monotonicity guards, and the signing logs
are grow-only sets — so a WAL suffix that overlaps an already-applied
snapshot (a crash between snapshot write and log truncation, or a torn
final record dropped by the store) re-applies to the same state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.certificates import (
    GENESIS_VALUE,
    PrepareCertificate,
    genesis_prepare_certificate,
)
from repro.core.timestamp import ZERO_TS, Timestamp
from repro.crypto.hashing import hash_value
from repro.errors import StorageError
from repro.storage import MemoryStore, ReplicaStore

__all__ = ["PlistEntry", "FastCommitment", "DurableReplicaState"]


@dataclass(frozen=True)
class PlistEntry:
    """One proposed write: the ``(t, h)`` of a client's prepare."""

    ts: Timestamp
    value_hash: bytes


@dataclass(frozen=True)
class FastCommitment:
    """One fast-path prepare: the ``(t, h, C)`` a replica MAC-acked.

    Recorded durably so a recovered replica still refuses to ack the same
    predicted timestamp for a *different* ``(h, C)`` — the fast-path
    analogue of the prepare-list conflict check.
    """

    ts: Timestamp
    value_hash: bytes
    commitment: bytes


class LoggedMap:
    """A ``client -> PlistEntry`` mapping whose mutations hit the WAL.

    Reads are plain dict reads; ``[]=`` and ``del`` append a
    ``<tag>-set`` / ``<tag>-del`` record before updating the mirror, which
    is what makes prepare-list entries unforgettable across crashes.
    """

    __slots__ = ("_store", "_tag", "_entries")

    def __init__(self, store: ReplicaStore, tag: str) -> None:
        self._store = store
        self._tag = tag
        self._entries: dict[str, PlistEntry] = {}

    def get(self, client: str) -> Optional[PlistEntry]:
        return self._entries.get(client)

    def __getitem__(self, client: str) -> PlistEntry:
        return self._entries[client]

    def __setitem__(self, client: str, entry: PlistEntry) -> None:
        self._store.append(
            (self._tag + "-set", client, entry.ts.to_wire(), entry.value_hash)
        )
        self._entries[client] = entry
        self._store.maybe_compact()

    def __delitem__(self, client: str) -> None:
        del self._entries[client]  # KeyError before logging a bogus delete
        self._store.append((self._tag + "-del", client))
        self._store.maybe_compact()

    def __contains__(self, client: str) -> bool:
        return client in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def items(self):
        return self._entries.items()

    def values(self):
        return self._entries.values()

    # Recovery-time mutation: mirror only, no logging.
    def _set_silent(self, client: str, entry: PlistEntry) -> None:
        self._entries[client] = entry

    def _del_silent(self, client: str) -> None:
        self._entries.pop(client, None)

    def _clear_silent(self) -> None:
        self._entries.clear()

    def to_wire(self) -> dict[str, Any]:
        return {
            client: (entry.ts.to_wire(), entry.value_hash)
            for client, entry in self._entries.items()
        }


class LoggedFastMap:
    """A ``client -> FastCommitment`` mapping whose mutations hit the WAL.

    The fast-path twin of :class:`LoggedMap`; entries additionally carry the
    hash commitment so the conflict check survives crashes.
    """

    __slots__ = ("_store", "_entries")

    def __init__(self, store: ReplicaStore) -> None:
        self._store = store
        self._entries: dict[str, FastCommitment] = {}

    def get(self, client: str) -> Optional[FastCommitment]:
        return self._entries.get(client)

    def __setitem__(self, client: str, entry: FastCommitment) -> None:
        self._store.append(
            (
                "fastc-set",
                client,
                entry.ts.to_wire(),
                entry.value_hash,
                entry.commitment,
            )
        )
        self._entries[client] = entry
        self._store.maybe_compact()

    def __delitem__(self, client: str) -> None:
        del self._entries[client]  # KeyError before logging a bogus delete
        self._store.append(("fastc-del", client))
        self._store.maybe_compact()

    def __contains__(self, client: str) -> bool:
        return client in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def items(self):
        return self._entries.items()

    def _set_silent(self, client: str, entry: FastCommitment) -> None:
        self._entries[client] = entry

    def _del_silent(self, client: str) -> None:
        self._entries.pop(client, None)

    def _clear_silent(self) -> None:
        self._entries.clear()

    def to_wire(self) -> dict[str, Any]:
        return {
            client: (entry.ts.to_wire(), entry.value_hash, entry.commitment)
            for client, entry in self._entries.items()
        }


class LoggedSet:
    """A grow-only set of signing-log entries, mirrored to the WAL.

    ``add`` appends a record only for genuinely new members, so
    retransmission-driven re-signing costs no log traffic.
    """

    __slots__ = ("_store", "_tag", "_members")

    def __init__(self, store: ReplicaStore, tag: str) -> None:
        self._store = store
        self._tag = tag
        self._members: set = set()

    def add(self, member: Any) -> None:
        if member in self._members:
            return
        self._store.append((self._tag,) + self._member_wire(member))
        self._members.add(member)
        self._store.maybe_compact()

    def _member_wire(self, member: Any) -> tuple:
        if self._tag == "swr":  # member: Timestamp
            return (member.to_wire(),)
        ts, value_hash, client = member  # spr
        return (ts.to_wire(), value_hash, client)

    def __contains__(self, member: Any) -> bool:
        return member in self._members

    def __iter__(self) -> Iterator[Any]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def _add_silent(self, member: Any) -> None:
        self._members.add(member)

    def _clear_silent(self) -> None:
        self._members.clear()

    def to_wire(self) -> tuple:
        return tuple(sorted(self._member_wire(m) for m in self._members))


class DurableReplicaState:
    """All Figure-2 replica state, mediated by a :class:`ReplicaStore`.

    Replicas read through properties and mutate through :meth:`install`,
    :meth:`advance_write_ts`, and the logged ``plist``/``optlist``/signing
    collections; nothing protocol-visible changes without a corresponding
    WAL record.  The state registers itself as the store's
    ``snapshot_source`` so the store can compact the log against the full
    current state at any time.
    """

    def __init__(
        self, store: Optional[ReplicaStore] = None, *, optimized: bool = False
    ) -> None:
        self.store: ReplicaStore = store if store is not None else MemoryStore()
        self._data: Any = GENESIS_VALUE
        self._pcert: PrepareCertificate = genesis_prepare_certificate()
        self._write_ts: Timestamp = ZERO_TS
        self.plist = LoggedMap(self.store, "plist")
        self.optlist = LoggedMap(self.store, "optlist") if optimized else None
        self.fastc: Optional[LoggedFastMap] = None
        self.signed_write_replies = LoggedSet(self.store, "swr")
        self.signed_prepare_replies = LoggedSet(self.store, "spr")
        self.store.snapshot_source = self.snapshot_wire

    # -- read side ---------------------------------------------------------

    @property
    def data(self) -> Any:
        return self._data

    @property
    def pcert(self) -> PrepareCertificate:
        return self._pcert

    @property
    def write_ts(self) -> Timestamp:
        return self._write_ts

    # -- write side (always logged) ---------------------------------------

    def install(self, value: Any, cert: PrepareCertificate) -> None:
        """Phase-3 install: the WAL record precedes the visible change."""
        self.store.append(("install", value, cert.to_wire()))
        self._data = value
        self._pcert = cert
        self.store.maybe_compact()

    def advance_write_ts(self, ts: Timestamp) -> None:
        if ts <= self._write_ts:
            return
        self.store.append(("write-ts", ts.to_wire()))
        self._write_ts = ts
        self.store.maybe_compact()

    def ensure_optlist(self) -> LoggedMap:
        """The §6 second prepare list, created on first use."""
        if self.optlist is None:
            self.optlist = LoggedMap(self.store, "optlist")
        return self.optlist

    def ensure_fastc(self) -> LoggedFastMap:
        """The fast-path commitment map, created on first use."""
        if self.fastc is None:
            self.fastc = LoggedFastMap(self.store)
        return self.fastc

    # -- snapshots and fingerprints ---------------------------------------

    def snapshot_wire(self) -> dict[str, Any]:
        """The full state as one canonical wire value (compaction source)."""
        return {
            "data": self._data,
            "pcert": self._pcert.to_wire(),
            "write_ts": self._write_ts.to_wire(),
            "plist": self.plist.to_wire(),
            "optlist": None if self.optlist is None else self.optlist.to_wire(),
            "fastc": None if self.fastc is None else self.fastc.to_wire(),
            "swr": self.signed_write_replies.to_wire(),
            "spr": self.signed_prepare_replies.to_wire(),
        }

    def fingerprint(self, *, include_signing_logs: bool = False) -> bytes:
        """Collision-resistant digest of the Figure-2 state.

        The differential crash-recovery tests compare these across runs, so
        by default two run-dependent-but-equivalent details are left out:
        signing logs (a replica that was down for an operation legitimately
        never signed it) and the *signer sets* inside the stored
        certificate — any quorum of signatures certifies the same
        ``(ts, h)``, and which quorum the client happened to assemble
        depends on who was up.  ``include_signing_logs=True`` restores the
        logs (used when comparing a replica against its own recovery, where
        everything must round-trip exactly).
        """
        wire = self.snapshot_wire()
        wire["pcert"] = (self._pcert.ts.to_wire(), self._pcert.h)
        if not include_signing_logs:
            # fastc is fast-path bookkeeping with no analogue in the signed
            # variants, so it sits with the signing logs: excluded from the
            # cross-variant fingerprint, restored for self-recovery checks.
            del wire["swr"], wire["spr"], wire["fastc"]
        return hash_value(wire)

    # -- recovery ----------------------------------------------------------

    def recover(self) -> None:
        """Rebuild from snapshot + log; idempotent under torn final records."""
        snapshot, records = self.store.load()
        self._data = GENESIS_VALUE
        self._pcert = genesis_prepare_certificate()
        self._write_ts = ZERO_TS
        self.plist._clear_silent()
        if self.optlist is not None:
            self.optlist._clear_silent()
        if self.fastc is not None:
            self.fastc._clear_silent()
        self.signed_write_replies._clear_silent()
        self.signed_prepare_replies._clear_silent()
        if snapshot is not None:
            self._restore_snapshot(snapshot)
        for record in records:
            self._apply_record(record)

    def _restore_snapshot(self, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            raise StorageError(f"malformed snapshot: {snapshot!r}")
        self._data = snapshot["data"]
        self._pcert = PrepareCertificate.from_wire(snapshot["pcert"])
        self._write_ts = Timestamp.from_wire(snapshot["write_ts"])
        for client, (ts_wire, value_hash) in snapshot["plist"].items():
            self.plist._set_silent(
                client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
            )
        if snapshot["optlist"] is not None:
            optlist = self.ensure_optlist()
            for client, (ts_wire, value_hash) in snapshot["optlist"].items():
                optlist._set_silent(
                    client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
                )
        # Pre-fast-path snapshots have no "fastc" key.
        if snapshot.get("fastc") is not None:
            fastc = self.ensure_fastc()
            for client, (ts_wire, value_hash, commit) in snapshot["fastc"].items():
                fastc._set_silent(
                    client,
                    FastCommitment(
                        Timestamp.from_wire(ts_wire), value_hash, commit
                    ),
                )
        for (ts_wire,) in snapshot["swr"]:
            self.signed_write_replies._add_silent(Timestamp.from_wire(ts_wire))
        for ts_wire, value_hash, client in snapshot["spr"]:
            self.signed_prepare_replies._add_silent(
                (Timestamp.from_wire(ts_wire), value_hash, client)
            )

    def _apply_record(self, record: Any) -> None:
        if not isinstance(record, tuple) or not record:
            raise StorageError(f"malformed WAL record: {record!r}")
        tag = record[0]
        if tag == "plist-set":
            _, client, ts_wire, value_hash = record
            self.plist._set_silent(
                client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
            )
        elif tag == "plist-del":
            self.plist._del_silent(record[1])
        elif tag == "optlist-set":
            _, client, ts_wire, value_hash = record
            self.ensure_optlist()._set_silent(
                client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
            )
        elif tag == "optlist-del":
            self.ensure_optlist()._del_silent(record[1])
        elif tag == "fastc-set":
            _, client, ts_wire, value_hash, commit = record
            self.ensure_fastc()._set_silent(
                client,
                FastCommitment(Timestamp.from_wire(ts_wire), value_hash, commit),
            )
        elif tag == "fastc-del":
            self.ensure_fastc()._del_silent(record[1])
        elif tag == "install":
            _, value, cert_wire = record
            cert = PrepareCertificate.from_wire(cert_wire)
            # Monotonicity guard makes replaying an overlapping suffix safe.
            if cert.ts > self._pcert.ts or (
                cert.ts == self._pcert.ts and cert.h > self._pcert.h
            ):
                self._data = value
                self._pcert = cert
        elif tag == "write-ts":
            ts = Timestamp.from_wire(record[1])
            if ts > self._write_ts:
                self._write_ts = ts
        elif tag == "swr":
            self.signed_write_replies._add_silent(Timestamp.from_wire(record[1]))
        elif tag == "spr":
            _, ts_wire, value_hash, client = record
            self.signed_prepare_replies._add_silent(
                (Timestamp.from_wire(ts_wire), value_hash, client)
            )
        else:
            raise StorageError(f"unknown WAL record tag {tag!r}")
