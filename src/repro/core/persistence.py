"""Durable replica state: the bridge between replicas and their store.

:class:`DurableReplicaState` owns every piece of Figure-2 state a
:class:`~repro.core.replica.BftBcReplica` holds — ``data``, ``pcert``,
``plist`` (and the §6 ``optlist``), ``write_ts`` — plus the signing logs the
executable Lemma 1 invariants read.  All mutation goes through it, and every
mutation is appended to the backing
:class:`~repro.storage.base.ReplicaStore` *before* the change becomes
visible, so a replica can be rebuilt after a crash by replaying
snapshot + log (:meth:`DurableReplicaState.recover`).

The store traffics only in wire values (canonically encodable tuples and
dicts); this module owns the translation:

==============  =====================================  =====================
record tag      payload                                meaning
==============  =====================================  =====================
``plist-set``   ``(client, ts_wire, value_hash)``      plist entry written
``plist-del``   ``(client,)``                          plist entry GC'd
``optlist-set`` ``(client, ts_wire, value_hash)``      §6 optlist entry
``optlist-del`` ``(client,)``                          §6 optlist GC
``fastc-set``   ``(client, ts_wire, h, commitment)``   fast-path commitment
``fastc-del``   ``(client,)``                          fast commitment GC
``install``     ``(value, pcert_wire)``                phase-3 install
``write-ts``    ``(ts_wire,)``                         write_ts advanced
``swr``         ``(ts_wire,)``                         WRITE-REPLY signed
``spr``         ``(ts_wire, value_hash, client)``      PREPARE-REPLY signed
==============  =====================================  =====================

Replay is idempotent: ``plist``/``optlist`` records are last-writer-wins,
``install`` and ``write-ts`` carry monotonicity guards, and the signing logs
are grow-only sets — so a WAL suffix that overlaps an already-applied
snapshot (a crash between snapshot write and log truncation, or a torn
final record dropped by the store) re-applies to the same state.

Per-client state budgets
------------------------

With six-figure client populations, the per-client maps are the replica's
dominant memory cost.  A :class:`ClientStateBudget` caps how many entries
each map keeps *hot* (resident in the in-memory mirror); entries beyond the
budget are **spilled** — dropped from the mirror while their latest logged
record remains the authoritative copy.  Spilling writes nothing: the WAL
discipline already guarantees a durable ``<tag>-set`` record (or snapshot
row) for every visible entry.  A later access **rehydrates** the entry by
replaying snapshot + log for its tag, which is exactly the recovery path —
so a budgeted replica's observable behaviour, and its state fingerprint,
match the unbounded replica's bit for bit.

Stale entries (``ts <= write_ts``, the §3.3.1 GC criterion) are collected
eagerly while hot and *lazily* once spilled: a rehydration or snapshot that
finds a spilled entry at or below the cutoff treats it as absent.  This is
equivalent to eager GC because entries are only ever added above the
then-current ``write_ts`` and the cutoff only advances.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.core.certificates import (
    GENESIS_VALUE,
    PrepareCertificate,
    genesis_prepare_certificate,
)
from repro.core.timestamp import ZERO_TS, Timestamp
from repro.crypto.hashing import hash_value
from repro.errors import StorageError
from repro.storage import MemoryStore, ReplicaStore

__all__ = [
    "PlistEntry",
    "FastCommitment",
    "ClientStateBudget",
    "ClientStateStats",
    "ClientStateTable",
    "DurableReplicaState",
]

#: ``() -> cutoff``: entries at or below the cutoff are garbage (§3.3.1).
StaleCutoff = Callable[[], Optional[Timestamp]]


@dataclass(frozen=True)
class PlistEntry:
    """One proposed write: the ``(t, h)`` of a client's prepare."""

    ts: Timestamp
    value_hash: bytes


@dataclass(frozen=True)
class FastCommitment:
    """One fast-path prepare: the ``(t, h, C)`` a replica MAC-acked.

    Recorded durably so a recovered replica still refuses to ack the same
    predicted timestamp for a *different* ``(h, C)`` — the fast-path
    analogue of the prepare-list conflict check.
    """

    ts: Timestamp
    value_hash: bytes
    commitment: bytes


@dataclass(frozen=True)
class ClientStateBudget:
    """Resident-entry cap for each per-client map (plist/optlist/fastc).

    ``hot_entries`` bounds how many clients' entries stay in memory per map;
    the rest spill to the WAL-backed store and rehydrate on demand.
    """

    hot_entries: int = 1024

    def __post_init__(self) -> None:
        if self.hot_entries < 1:
            raise StorageError(
                f"hot_entries must be >= 1, got {self.hot_entries}"
            )


@dataclass
class ClientStateStats:
    """Spill/rehydrate counters for one replica's per-client state (E21)."""

    spills: int = 0
    rehydrations: int = 0
    stale_drops: int = 0

    def reset(self) -> None:
        self.spills = 0
        self.rehydrations = 0
        self.stale_drops = 0


def _load_tag_wire(store: ReplicaStore, tag: str) -> dict[str, tuple]:
    """Authoritative ``client -> record tail`` view of one map's tag.

    Replays snapshot + log exactly like :meth:`DurableReplicaState.recover`,
    restricted to ``tag``.  Read-only: safe to call mid-compaction (the
    store's ``load`` is idempotent and truncation happens only after the
    snapshot source has returned).
    """
    snapshot, records = store.load()
    merged: dict[str, tuple] = {}
    if isinstance(snapshot, dict):
        section = snapshot.get(tag)
        if section:
            for client, wire in section.items():
                merged[client] = tuple(wire)
    set_tag = tag + "-set"
    del_tag = tag + "-del"
    for record in records:
        if not isinstance(record, tuple) or not record:
            continue
        if record[0] == set_tag:
            merged[record[1]] = tuple(record[2:])
        elif record[0] == del_tag:
            merged.pop(record[1], None)
    return merged


class LoggedMap:
    """A ``client -> PlistEntry`` mapping whose mutations hit the WAL.

    Reads are plain dict reads; ``[]=`` and ``del`` append a
    ``<tag>-set`` / ``<tag>-del`` record before updating the mirror, which
    is what makes prepare-list entries unforgettable across crashes.

    With a ``budget``, the mirror holds at most that many hot entries in LRU
    order; colder entries spill (see module docs) and rehydrate from the
    store on access.  Without one, behaviour is exactly the classic
    all-resident map.
    """

    __slots__ = ("_store", "_tag", "_entries", "_budget", "_spilled",
                 "_stale_cutoff", "stats")

    def __init__(
        self,
        store: ReplicaStore,
        tag: str,
        *,
        budget: Optional[int] = None,
        stale_cutoff: Optional[StaleCutoff] = None,
        stats: Optional[ClientStateStats] = None,
    ) -> None:
        self._store = store
        self._tag = tag
        self._entries: "OrderedDict[str, PlistEntry]" = OrderedDict()
        self._budget = budget
        self._spilled: set[str] = set()
        self._stale_cutoff = stale_cutoff
        self.stats = stats

    # -- wire translation (overridden by the fast-path twin) ----------------

    def _decode(self, wire: tuple) -> PlistEntry:
        return PlistEntry(Timestamp.from_wire(wire[0]), wire[1])

    def _encode(self, entry: PlistEntry) -> tuple:
        return (entry.ts.to_wire(), entry.value_hash)

    # -- reads --------------------------------------------------------------

    def get(self, client: str):
        entry = self._entries.get(client)
        if entry is not None:
            if self._budget is not None:
                self._entries.move_to_end(client)
            return entry
        if client in self._spilled:
            return self._rehydrate(client)
        return None

    def __getitem__(self, client: str):
        entry = self.get(client)
        if entry is None:
            raise KeyError(client)
        return entry

    def __contains__(self, client: str) -> bool:
        if client in self._entries:
            return True
        if client in self._spilled:
            return self.get(client) is not None
        return False

    def __len__(self) -> int:
        if not self._spilled:
            return len(self._entries)
        return len(self._merged())

    def __iter__(self) -> Iterator[str]:
        if not self._spilled:
            return iter(self._entries)
        return iter(self._merged())

    def items(self):
        if not self._spilled:
            return self._entries.items()
        return self._merged().items()

    def values(self):
        if not self._spilled:
            return self._entries.values()
        return self._merged().values()

    @property
    def resident(self) -> int:
        """Hot entries currently held in memory."""
        return len(self._entries)

    @property
    def spilled(self) -> int:
        """Entries currently spilled to the store."""
        return len(self._spilled)

    # -- writes (always logged first) ---------------------------------------

    def __setitem__(self, client: str, entry) -> None:
        self._store.append((self._tag + "-set", client) + self._encode(entry))
        self._spilled.discard(client)
        self._entries[client] = entry
        if self._budget is not None:
            self._entries.move_to_end(client)
            self._enforce_budget()
        self._store.maybe_compact()

    def __delitem__(self, client: str) -> None:
        if client in self._entries:
            del self._entries[client]  # KeyError never reaches the log
        elif client in self._spilled:
            self._spilled.discard(client)
        else:
            raise KeyError(client)
        self._store.append((self._tag + "-del", client))
        self._store.maybe_compact()

    def gc_stale(self, cutoff: Timestamp) -> list[str]:
        """Eagerly collect hot entries at or below ``cutoff`` (§3.3.1).

        Only the hot mirror is scanned — spilled entries are collected
        lazily on rehydration/snapshot against the same cutoff, which never
        regresses, so the two disciplines remove exactly the same entries.
        """
        stale = [c for c, e in self._entries.items() if e.ts <= cutoff]
        for client in stale:
            del self[client]
        return stale

    # -- spill machinery ----------------------------------------------------

    def _enforce_budget(self) -> None:
        while len(self._entries) > self._budget:
            victim, _ = self._entries.popitem(last=False)
            self._spilled.add(victim)
            if self.stats is not None:
                self.stats.spills += 1

    def _is_stale(self, entry) -> bool:
        if self._stale_cutoff is None:
            return False
        cutoff = self._stale_cutoff()
        return cutoff is not None and entry.ts <= cutoff

    def _rehydrate(self, client: str):
        if self.stats is not None:
            self.stats.rehydrations += 1
        wire = _load_tag_wire(self._store, self._tag).get(client)
        self._spilled.discard(client)
        if wire is None:
            return None
        entry = self._decode(wire)
        if self._is_stale(entry):
            # Lazy §3.3.1 GC: absent, exactly as if collected eagerly.  No
            # del record is logged — replay resurrects the entry hot, and
            # recovery prunes it against the recovered write_ts.
            if self.stats is not None:
                self.stats.stale_drops += 1
            return None
        self._entries[client] = entry
        if self._budget is not None:
            self._entries.move_to_end(client)
            self._enforce_budget()
        return entry

    def _merged(self) -> dict:
        """Exact hot+spilled view (pure read apart from pruning stale ids)."""
        merged = dict(self._entries)
        if not self._spilled:
            return merged
        raw = _load_tag_wire(self._store, self._tag)
        gone: list[str] = []
        for client in self._spilled:
            wire = raw.get(client)
            if wire is None:
                gone.append(client)
                continue
            entry = self._decode(wire)
            if self._is_stale(entry):
                gone.append(client)
                if self.stats is not None:
                    self.stats.stale_drops += 1
                continue
            merged[client] = entry
        for client in gone:
            self._spilled.discard(client)
        return merged

    # -- recovery-time mutation: mirror only, no logging --------------------

    def _set_silent(self, client: str, entry) -> None:
        self._entries[client] = entry

    def _del_silent(self, client: str) -> None:
        self._entries.pop(client, None)
        self._spilled.discard(client)

    def _clear_silent(self) -> None:
        self._entries.clear()
        self._spilled.clear()

    def _post_recover(self) -> None:
        """Re-establish the budget discipline after a full replay.

        Replay lands every surviving entry hot.  Entries the pre-crash
        replica dropped *lazily* (stale spilled entries have no del record)
        resurrect here, so prune them against the recovered cutoff, then
        re-spill down to budget — replay order approximates recency.
        """
        if self._budget is None:
            return
        if self._stale_cutoff is not None:
            cutoff = self._stale_cutoff()
            if cutoff is not None:
                stale = [
                    c for c, e in self._entries.items() if e.ts <= cutoff
                ]
                for client in stale:
                    del self._entries[client]
                    if self.stats is not None:
                        self.stats.stale_drops += 1
        self._enforce_budget()

    def to_wire(self) -> dict[str, Any]:
        return {
            client: self._encode(entry)
            for client, entry in self._merged().items()
        }


class LoggedFastMap(LoggedMap):
    """A ``client -> FastCommitment`` mapping whose mutations hit the WAL.

    The fast-path twin of :class:`LoggedMap`; entries additionally carry the
    hash commitment so the conflict check survives crashes.  Budgeting and
    spill/rehydrate behave identically — fast commitments share the
    ``ts <= write_ts`` staleness criterion.
    """

    __slots__ = ()

    def __init__(
        self,
        store: ReplicaStore,
        *,
        budget: Optional[int] = None,
        stale_cutoff: Optional[StaleCutoff] = None,
        stats: Optional[ClientStateStats] = None,
    ) -> None:
        super().__init__(
            store, "fastc", budget=budget, stale_cutoff=stale_cutoff,
            stats=stats,
        )

    def _decode(self, wire: tuple) -> FastCommitment:
        return FastCommitment(Timestamp.from_wire(wire[0]), wire[1], wire[2])

    def _encode(self, entry: FastCommitment) -> tuple:
        return (entry.ts.to_wire(), entry.value_hash, entry.commitment)


class LoggedSet:
    """A grow-only set of signing-log entries, mirrored to the WAL.

    ``add`` appends a record only for genuinely new members, so
    retransmission-driven re-signing costs no log traffic.
    """

    __slots__ = ("_store", "_tag", "_members")

    def __init__(self, store: ReplicaStore, tag: str) -> None:
        self._store = store
        self._tag = tag
        self._members: set = set()

    def add(self, member: Any) -> None:
        if member in self._members:
            return
        self._store.append((self._tag,) + self._member_wire(member))
        self._members.add(member)
        self._store.maybe_compact()

    def _member_wire(self, member: Any) -> tuple:
        if self._tag == "swr":  # member: Timestamp
            return (member.to_wire(),)
        ts, value_hash, client = member  # spr
        return (ts.to_wire(), value_hash, client)

    def __contains__(self, member: Any) -> bool:
        return member in self._members

    def __iter__(self) -> Iterator[Any]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def _add_silent(self, member: Any) -> None:
        self._members.add(member)

    def _clear_silent(self) -> None:
        self._members.clear()

    def to_wire(self) -> tuple:
        return tuple(sorted(self._member_wire(m) for m in self._members))


class ClientStateTable:
    """The per-client maps (plist/optlist/fastc) under one budget.

    Groups the three maps that scale with the client population, shares one
    :class:`ClientStateStats` across them, and exposes the resident/spilled
    accounting the E21 experiments read.
    """

    def __init__(
        self,
        store: ReplicaStore,
        *,
        budget: Optional[ClientStateBudget] = None,
        stale_cutoff: Optional[StaleCutoff] = None,
        optimized: bool = False,
    ) -> None:
        self._store = store
        self.budget = budget
        self._stale_cutoff = stale_cutoff
        self.stats = ClientStateStats()
        hot = budget.hot_entries if budget is not None else None
        self._hot = hot
        self.plist = LoggedMap(
            store, "plist", budget=hot, stale_cutoff=stale_cutoff,
            stats=self.stats,
        )
        self.optlist: Optional[LoggedMap] = (
            self._make_optlist() if optimized else None
        )
        self.fastc: Optional[LoggedFastMap] = None

    def _make_optlist(self) -> LoggedMap:
        return LoggedMap(
            self._store, "optlist", budget=self._hot,
            stale_cutoff=self._stale_cutoff, stats=self.stats,
        )

    def ensure_optlist(self) -> LoggedMap:
        if self.optlist is None:
            self.optlist = self._make_optlist()
        return self.optlist

    def ensure_fastc(self) -> LoggedFastMap:
        if self.fastc is None:
            self.fastc = LoggedFastMap(
                self._store, budget=self._hot,
                stale_cutoff=self._stale_cutoff, stats=self.stats,
            )
        return self.fastc

    def _maps(self) -> Iterator[LoggedMap]:
        yield self.plist
        if self.optlist is not None:
            yield self.optlist
        if self.fastc is not None:
            yield self.fastc

    @property
    def resident_entries(self) -> int:
        """Hot entries across all per-client maps (the budgeted quantity)."""
        return sum(m.resident for m in self._maps())

    @property
    def spilled_entries(self) -> int:
        return sum(m.spilled for m in self._maps())

    def _post_recover(self) -> None:
        for m in self._maps():
            m._post_recover()


class DurableReplicaState:
    """All Figure-2 replica state, mediated by a :class:`ReplicaStore`.

    Replicas read through properties and mutate through :meth:`install`,
    :meth:`advance_write_ts`, and the logged ``plist``/``optlist``/signing
    collections; nothing protocol-visible changes without a corresponding
    WAL record.  The state registers itself as the store's
    ``snapshot_source`` so the store can compact the log against the full
    current state at any time.

    Args:
        store: backing store (in-memory by default).
        optimized: create the §6 ``optlist`` up front.
        budget: optional :class:`ClientStateBudget` activating the
            spill/rehydrate policy on the per-client maps.
        gc_stale: whether §3.3.1 GC is active (``config.gc_plist``); gates
            the lazy staleness cutoff so a no-GC deployment never drops
            spilled entries.
    """

    def __init__(
        self,
        store: Optional[ReplicaStore] = None,
        *,
        optimized: bool = False,
        budget: Optional[ClientStateBudget] = None,
        gc_stale: bool = True,
    ) -> None:
        self.store: ReplicaStore = store if store is not None else MemoryStore()
        self._data: Any = GENESIS_VALUE
        self._pcert: PrepareCertificate = genesis_prepare_certificate()
        self._write_ts: Timestamp = ZERO_TS
        cutoff: Optional[StaleCutoff] = (
            (lambda: self._write_ts) if gc_stale else None
        )
        self.client_state = ClientStateTable(
            self.store, budget=budget, stale_cutoff=cutoff,
            optimized=optimized,
        )
        self.plist = self.client_state.plist
        self.optlist = self.client_state.optlist
        self.fastc: Optional[LoggedFastMap] = None
        self.signed_write_replies = LoggedSet(self.store, "swr")
        self.signed_prepare_replies = LoggedSet(self.store, "spr")
        self.store.snapshot_source = self.snapshot_wire

    # -- read side ---------------------------------------------------------

    @property
    def data(self) -> Any:
        return self._data

    @property
    def pcert(self) -> PrepareCertificate:
        return self._pcert

    @property
    def write_ts(self) -> Timestamp:
        return self._write_ts

    # -- write side (always logged) ---------------------------------------

    def install(self, value: Any, cert: PrepareCertificate) -> None:
        """Phase-3 install: the WAL record precedes the visible change."""
        self.store.append(("install", value, cert.to_wire()))
        self._data = value
        self._pcert = cert
        self.store.maybe_compact()

    def advance_write_ts(self, ts: Timestamp) -> None:
        if ts <= self._write_ts:
            return
        self.store.append(("write-ts", ts.to_wire()))
        self._write_ts = ts
        self.store.maybe_compact()

    def ensure_optlist(self) -> LoggedMap:
        """The §6 second prepare list, created on first use."""
        self.optlist = self.client_state.ensure_optlist()
        return self.optlist

    def ensure_fastc(self) -> LoggedFastMap:
        """The fast-path commitment map, created on first use."""
        self.fastc = self.client_state.ensure_fastc()
        return self.fastc

    # -- snapshots and fingerprints ---------------------------------------

    def snapshot_wire(self) -> dict[str, Any]:
        """The full state as one canonical wire value (compaction source).

        Budgeted maps merge their spilled entries back in (read-only), so a
        snapshot-then-truncate never loses an entry that lives only in the
        log being truncated.
        """
        return {
            "data": self._data,
            "pcert": self._pcert.to_wire(),
            "write_ts": self._write_ts.to_wire(),
            "plist": self.plist.to_wire(),
            "optlist": None if self.optlist is None else self.optlist.to_wire(),
            "fastc": None if self.fastc is None else self.fastc.to_wire(),
            "swr": self.signed_write_replies.to_wire(),
            "spr": self.signed_prepare_replies.to_wire(),
        }

    def fingerprint(self, *, include_signing_logs: bool = False) -> bytes:
        """Collision-resistant digest of the Figure-2 state.

        The differential crash-recovery tests compare these across runs, so
        by default two run-dependent-but-equivalent details are left out:
        signing logs (a replica that was down for an operation legitimately
        never signed it) and the *signer sets* inside the stored
        certificate — any quorum of signatures certifies the same
        ``(ts, h)``, and which quorum the client happened to assemble
        depends on who was up.  ``include_signing_logs=True`` restores the
        logs (used when comparing a replica against its own recovery, where
        everything must round-trip exactly).

        Canonical encoding sorts map keys, so a budgeted replica (whose
        merged view assembles entries in a different order) fingerprints
        identically to an unbounded one holding the same entries.
        """
        wire = self.snapshot_wire()
        wire["pcert"] = (self._pcert.ts.to_wire(), self._pcert.h)
        if not include_signing_logs:
            # fastc is fast-path bookkeeping with no analogue in the signed
            # variants, so it sits with the signing logs: excluded from the
            # cross-variant fingerprint, restored for self-recovery checks.
            del wire["swr"], wire["spr"], wire["fastc"]
        return hash_value(wire)

    # -- recovery ----------------------------------------------------------

    def recover(self) -> None:
        """Rebuild from snapshot + log; idempotent under torn final records."""
        snapshot, records = self.store.load()
        self._data = GENESIS_VALUE
        self._pcert = genesis_prepare_certificate()
        self._write_ts = ZERO_TS
        self.plist._clear_silent()
        if self.optlist is not None:
            self.optlist._clear_silent()
        if self.fastc is not None:
            self.fastc._clear_silent()
        self.signed_write_replies._clear_silent()
        self.signed_prepare_replies._clear_silent()
        if snapshot is not None:
            self._restore_snapshot(snapshot)
        for record in records:
            self._apply_record(record)
        self.client_state._post_recover()

    def _restore_snapshot(self, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            raise StorageError(f"malformed snapshot: {snapshot!r}")
        self._data = snapshot["data"]
        self._pcert = PrepareCertificate.from_wire(snapshot["pcert"])
        self._write_ts = Timestamp.from_wire(snapshot["write_ts"])
        for client, (ts_wire, value_hash) in snapshot["plist"].items():
            self.plist._set_silent(
                client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
            )
        if snapshot["optlist"] is not None:
            optlist = self.ensure_optlist()
            for client, (ts_wire, value_hash) in snapshot["optlist"].items():
                optlist._set_silent(
                    client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
                )
        # Pre-fast-path snapshots have no "fastc" key.
        if snapshot.get("fastc") is not None:
            fastc = self.ensure_fastc()
            for client, (ts_wire, value_hash, commit) in snapshot["fastc"].items():
                fastc._set_silent(
                    client,
                    FastCommitment(
                        Timestamp.from_wire(ts_wire), value_hash, commit
                    ),
                )
        for (ts_wire,) in snapshot["swr"]:
            self.signed_write_replies._add_silent(Timestamp.from_wire(ts_wire))
        for ts_wire, value_hash, client in snapshot["spr"]:
            self.signed_prepare_replies._add_silent(
                (Timestamp.from_wire(ts_wire), value_hash, client)
            )

    def _apply_record(self, record: Any) -> None:
        if not isinstance(record, tuple) or not record:
            raise StorageError(f"malformed WAL record: {record!r}")
        tag = record[0]
        if tag == "plist-set":
            _, client, ts_wire, value_hash = record
            self.plist._set_silent(
                client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
            )
        elif tag == "plist-del":
            self.plist._del_silent(record[1])
        elif tag == "optlist-set":
            _, client, ts_wire, value_hash = record
            self.ensure_optlist()._set_silent(
                client, PlistEntry(Timestamp.from_wire(ts_wire), value_hash)
            )
        elif tag == "optlist-del":
            self.ensure_optlist()._del_silent(record[1])
        elif tag == "fastc-set":
            _, client, ts_wire, value_hash, commit = record
            self.ensure_fastc()._set_silent(
                client,
                FastCommitment(Timestamp.from_wire(ts_wire), value_hash, commit),
            )
        elif tag == "fastc-del":
            self.ensure_fastc()._del_silent(record[1])
        elif tag == "install":
            _, value, cert_wire = record
            cert = PrepareCertificate.from_wire(cert_wire)
            # Monotonicity guard makes replaying an overlapping suffix safe.
            if cert.ts > self._pcert.ts or (
                cert.ts == self._pcert.ts and cert.h > self._pcert.h
            ):
                self._data = value
                self._pcert = cert
        elif tag == "write-ts":
            ts = Timestamp.from_wire(record[1])
            if ts > self._write_ts:
                self._write_ts = ts
        elif tag == "swr":
            self.signed_write_replies._add_silent(Timestamp.from_wire(record[1]))
        elif tag == "spr":
            _, ts_wire, value_hash, client = record
            self.signed_prepare_replies._add_silent(
                (Timestamp.from_wire(ts_wire), value_hash, client)
            )
        else:
            raise StorageError(f"unknown WAL record tag {tag!r}")
