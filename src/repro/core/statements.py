"""Canonical statement builders for everything the protocol signs.

Keeping every signed byte-string's construction in one module guarantees
that clients, replicas, and certificate validators all agree on exactly what
a signature covers.  A *statement* is a canonically encodable tuple whose
first element names the statement type.

Statement inventory (paper notation on the left):

* ``<PREPARE-REPLY, ts, h>_sigma_r``      -> :func:`prepare_reply_statement`
* ``<WRITE-REPLY, ts>_sigma_r``           -> :func:`write_reply_statement`
* ``<READ-TS-REPLY, P, nonce>_sigma_r``   -> :func:`read_ts_reply_statement`
* ``<READ-REPLY, val, P, nonce>_sigma_r`` -> :func:`read_reply_statement`
* ``<PREPARE, ...>_sigma_c``              -> :func:`prepare_request_statement`
* ``<WRITE, val, P>_sigma_c``             -> :func:`write_request_statement`
* optimized ``READ-TS-PREP`` reply        -> reuses the two reply statements
"""

from __future__ import annotations

from typing import Any

from repro.core.timestamp import Timestamp
from repro.encoding import intern_encode

__all__ = [
    "statement_bytes",
    "prepare_reply_statement",
    "write_reply_statement",
    "read_ts_reply_statement",
    "read_reply_statement",
    "prepare_request_statement",
    "write_request_statement",
    "read_ts_prep_request_statement",
    "read_ts_prep_reply_statement",
    "fast_prep_request_statement",
    "fast_prep_ack_statement",
    "fast_prep_reply_statement",
    "fast_write_request_statement",
    "fast_write_ack_statement",
    "fast_write_reply_statement",
    "fast_vouch_statement",
]


def statement_bytes(statement: tuple[Any, ...]) -> bytes:
    """The canonical byte form of a statement, interned process-wide.

    Sign, verify, hash, and certificate validation all encode statements
    through this one cache (:func:`repro.encoding.intern_encode`), so a
    statement signed by one replica and checked by every other role is
    serialised exactly once.
    """
    return intern_encode(statement)


def prepare_reply_statement(ts: Timestamp, value_hash: bytes) -> tuple[Any, ...]:
    """Body of a phase-2 reply; a quorum of these is a prepare certificate."""
    return ("PREPARE-REPLY", ts.to_wire(), value_hash)


def write_reply_statement(ts: Timestamp) -> tuple[Any, ...]:
    """Body of a phase-3 reply; a quorum of these is a write certificate."""
    return ("WRITE-REPLY", ts.to_wire())


def read_ts_reply_statement(cert_wire: Any, nonce: bytes) -> tuple[Any, ...]:
    """Phase-1 reply envelope: binds the returned certificate to the nonce."""
    return ("READ-TS-REPLY", cert_wire, nonce)


def read_reply_statement(value: Any, cert_wire: Any, nonce: bytes) -> tuple[Any, ...]:
    """Read reply envelope: binds value + certificate to the nonce."""
    return ("READ-REPLY", value, cert_wire, nonce)


def prepare_request_statement(
    prev_cert_wire: Any,
    ts: Timestamp,
    value_hash: bytes,
    write_cert_wire: Any,
    justify_cert_wire: Any,
) -> tuple[Any, ...]:
    """Body of the client-signed PREPARE request.

    ``justify_cert_wire`` is ``None`` except in the §7 strong variant, where
    it carries the write certificate proving the proposed timestamp succeeds
    a completed write.
    """
    return (
        "PREPARE",
        prev_cert_wire,
        ts.to_wire(),
        value_hash,
        write_cert_wire,
        justify_cert_wire,
    )


def write_request_statement(value: Any, prepare_cert_wire: Any) -> tuple[Any, ...]:
    """Body of the client-signed WRITE request."""
    return ("WRITE", value, prepare_cert_wire)


def read_ts_prep_request_statement(
    value_hash: bytes, write_cert_wire: Any, nonce: bytes
) -> tuple[Any, ...]:
    """Body of the optimized protocol's merged phase-1/2 request (§6.2)."""
    return ("READ-TS-PREP", value_hash, write_cert_wire, nonce)


def read_ts_prep_reply_statement(
    cert_wire: Any, prepared_ts_wire: Any, nonce: bytes
) -> tuple[Any, ...]:
    """Envelope of the merged phase-1/2 reply (the transferable part is the
    inner ``PREPARE-REPLY`` signature; this binds the rest to the nonce)."""
    return ("READ-TS-PREP-REPLY", cert_wire, prepared_ts_wire, nonce)


# -- fast path (signature-free proofs of writing) ---------------------------
#
# Fast-path statements are authenticated with pairwise MACs, never digital
# signatures; the builders exist so every role MACs exactly the same bytes.


def fast_prep_request_statement(
    client: str,
    value_hash: bytes,
    commitment: bytes,
    write_cert_wire: Any,
    nonce: bytes,
) -> tuple[Any, ...]:
    """Body of the MAC-authenticated FAST-PREP request."""
    return ("FAST-PREP", client, value_hash, commitment, write_cert_wire, nonce)


def fast_prep_ack_statement(
    prepared_ts_wire: Any, value_hash: bytes, commitment: bytes
) -> tuple[Any, ...]:
    """The acknowledgement each fast-prep MAC row covers (the transferable
    part of the fast prepare, analogous to ``PREPARE-REPLY``)."""
    return ("FAST-PREP-ACK", prepared_ts_wire, value_hash, commitment)


def fast_prep_reply_statement(
    replica: str,
    client: str,
    prepared_ts_wire: Any,
    value_hash: bytes,
    commitment: bytes,
    nonce: bytes,
) -> tuple[Any, ...]:
    """Envelope of the fast-prep reply, MAC'd replica -> client."""
    return (
        "FAST-PREP-REPLY",
        replica,
        client,
        prepared_ts_wire,
        value_hash,
        commitment,
        nonce,
    )


def fast_write_request_statement(
    client: str, ts_wire: Any, value_hash: bytes, commitment: bytes, nonce: bytes
) -> tuple[Any, ...]:
    """Body of the MAC-authenticated FAST-WRITE request (the value travels
    outside the statement; its hash binds it)."""
    return ("FAST-WRITE", client, ts_wire, value_hash, commitment, nonce)


def fast_write_ack_statement(ts_wire: Any) -> tuple[Any, ...]:
    """The acknowledgement each fast-write MAC row covers (the fast analogue
    of ``WRITE-REPLY``)."""
    return ("FAST-WRITE-ACK", ts_wire)


def fast_write_reply_statement(
    replica: str, client: str, ts_wire: Any, nonce: bytes
) -> tuple[Any, ...]:
    """Envelope of the fast-write reply, MAC'd replica -> client."""
    return ("FAST-WRITE-REPLY", replica, client, ts_wire, nonce)


def fast_vouch_statement(ts_wire: Any, value_hash: bytes) -> tuple[Any, ...]:
    """A replica's *signed* vouch that it installed ``(ts, h)`` via the fast
    path.  MAC rows are not transferable, so every point where fast-path
    evidence must convince a third party (read-ts replies, fallback reads)
    carries ``f+1`` of these instead; signing is lazy and off the write path.
    """
    return ("FAST-VOUCH", ts_wire, value_hash)
