"""Protocol timestamps: ``ts = (ts.val, ts.id)`` (§3.2.1).

Different clients must choose different timestamps, so a timestamp is a
sequence number concatenated with the writer's client identifier.  The
successor function used by client ``c`` is ``succ(ts, c) = (ts.val + 1, c)``;
comparison is lexicographic (value first, then client id), which totally
orders all timestamps because client ids are unique.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Any

from repro.errors import TimestampError

__all__ = ["Timestamp", "ZERO_TS", "succ"]


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    """An immutable, totally ordered protocol timestamp."""

    val: int
    client_id: str

    def __post_init__(self) -> None:
        if self.val < 0:
            raise TimestampError(f"timestamp value must be non-negative, got {self.val}")

    def _key(self) -> tuple[int, str]:
        return (self.val, self.client_id)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._key() < other._key()

    def succ(self, client_id: str) -> "Timestamp":
        """The paper's ``succ(ts, c) = (ts.val + 1, c)``."""
        return Timestamp(val=self.val + 1, client_id=client_id)

    def to_wire(self) -> tuple[int, str]:
        """Canonical wire representation."""
        return (self.val, self.client_id)

    @classmethod
    def from_wire(cls, wire: Any) -> "Timestamp":
        """Parse the wire form; raises TimestampError when malformed."""
        if (
            not isinstance(wire, tuple)
            or len(wire) != 2
            or not isinstance(wire[0], int)
            or isinstance(wire[0], bool)
            or not isinstance(wire[1], str)
        ):
            raise TimestampError(f"malformed wire timestamp: {wire!r}")
        return cls(val=wire[0], client_id=wire[1])

    def __str__(self) -> str:
        return f"<{self.val},{self.client_id or '∅'}>"


#: The initial timestamp stored by every replica before any write.
ZERO_TS = Timestamp(val=0, client_id="")


def succ(ts: Timestamp, client_id: str) -> Timestamp:
    """Module-level alias for :meth:`Timestamp.succ`, matching the paper."""
    return ts.succ(client_id)
