"""Client front-ends for the three protocol variants.

A client owns at most one in-flight operation (the model of §4.1 makes client
histories sequential), its last write certificate (needed in the next
PREPARE), and a nonce source.  It is sans-I/O like the replicas: callers
feed replies in via :meth:`BftBcClient.deliver` and pump retransmissions via
:meth:`BftBcClient.retransmit`.

Variants:

* :class:`BftBcClient` — base protocol (3-phase writes, Figure 1).
* :class:`OptimizedBftBcClient` — §6 (2-phase fast-path writes, hash
  tie-breaking reads).
* :class:`StrongBftBcClient` — §7 (justify certificates; requires a
  configuration with ``strong=True``).
* :class:`FastBftBcClient` — signature-free proofs of writing with a
  verified fallback to the signed protocol.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import SystemConfig
from repro.core.fast_operations import FastReadOperation, FastWriteOperation
from repro.core.operations import Operation, ReadOperation, Send, WriteOperation
from repro.core.optimized_operations import OptimizedWriteOperation
from repro.core.strong_operations import StrongWriteOperation
from repro.core.certificates import WriteCertificate
from repro.core.messages import Message
from repro.crypto.nonces import NonceSource
from repro.errors import ProtocolError
from repro.obs.instrumentation import Instrumentation

__all__ = [
    "BftBcClient",
    "OptimizedBftBcClient",
    "StrongBftBcClient",
    "FastBftBcClient",
]


class BftBcClient:
    """Base-protocol client: sequential writes and reads on one object."""

    write_op_cls: type[WriteOperation] = WriteOperation
    read_op_cls: type[ReadOperation] = ReadOperation
    hash_tie_break = False

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        #: Observability handle; ``None`` keeps every span a no-op.
        self.instrumentation = instrumentation
        credential = config.registry.register(node_id)
        self._nonces = NonceSource(node_id, secret=credential.secret)
        #: The write certificate of this client's last completed write,
        #: submitted with the next PREPARE so replicas can clear its
        #: prepare-list entry (Figure 1, phase 2).
        self.write_cert: Optional[WriteCertificate] = None
        self.op: Optional[Operation] = None
        self.completed_ops: int = 0

    # -- starting operations ------------------------------------------------

    def begin_write(self, value: Any) -> list[Send]:
        """Start a write; returns the first batch of requests to send."""
        self._check_idle()
        self.op = self.write_op_cls(
            self.node_id, self.config, value, self._nonces.next(), self.write_cert
        )
        self.op.instrument(self.instrumentation)
        return self.op.start()

    def begin_read(self) -> list[Send]:
        """Start a read; returns the first batch of requests to send."""
        self._check_idle()
        self.op = self.read_op_cls(
            self.node_id,
            self.config,
            self._nonces.next(),
            hash_tie_break=self.hash_tie_break,
            write_cert=self.write_cert,
        )
        self.op.instrument(self.instrumentation)
        return self.op.start()

    def _check_idle(self) -> None:
        if self.op is not None and not self.op.done:
            raise ProtocolError(
                f"client {self.node_id} already has an operation in flight"
            )

    # -- driving ------------------------------------------------------------

    def deliver(self, sender: str, message: Message) -> list[Send]:
        """Feed one incoming message to the in-flight operation."""
        if self.op is None or self.op.done:
            return []
        sends = self.op.on_message(sender, message)
        if self.op.done:
            self._on_op_complete(self.op)
        return sends

    def retransmit(self) -> list[Send]:
        """Periodic tick: retransmit the current phase to non-responders."""
        if self.op is None or self.op.done:
            return []
        return self.op.on_retransmit()

    def _on_op_complete(self, op: Operation) -> None:
        self.completed_ops += 1
        if isinstance(op, WriteOperation) and op.new_write_cert is not None:
            self.write_cert = op.new_write_cert

    # -- inspection -----------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self.op is not None and not self.op.done

    @property
    def last_result(self) -> Any:
        return None if self.op is None else self.op.result

    @property
    def last_phases(self) -> int:
        """Phases used by the most recent operation (experiment E1)."""
        return 0 if self.op is None else self.op.phases

    @property
    def verification_stats(self):
        """Hit/miss counters of the shared verification pipeline (E4d)."""
        return self.config.verifier.stats


class OptimizedBftBcClient(BftBcClient):
    """§6 client: merged phase-1/2 writes, hash tie-breaking reads."""

    write_op_cls = OptimizedWriteOperation
    hash_tie_break = True

    @property
    def last_write_fast_path(self) -> bool:
        """True if the most recent write skipped the explicit phase 2."""
        return isinstance(self.op, OptimizedWriteOperation) and self.op.fast_path


class FastBftBcClient(OptimizedBftBcClient):
    """Fast-path client: MAC-only writes, proof-aware reads.

    Inherits the §6 read tie-break; ``last_write_fell_back`` reports whether
    the most recent write abandoned the fast rounds for the signed protocol.
    """

    write_op_cls = FastWriteOperation
    read_op_cls = FastReadOperation

    @property
    def last_write_fast_path(self) -> bool:
        """True if the most recent write completed signature-free."""
        return isinstance(self.op, FastWriteOperation) and self.op.fast_path

    @property
    def last_write_fell_back(self) -> bool:
        """True if the most recent write fell back to the signed path."""
        return isinstance(self.op, FastWriteOperation) and self.op.fell_back


class StrongBftBcClient(BftBcClient):
    """§7 client: writes carry a justify certificate."""

    write_op_cls = StrongWriteOperation

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if not config.strong:
            raise ProtocolError(
                "StrongBftBcClient requires a configuration with strong=True"
            )
        super().__init__(node_id, config, instrumentation=instrumentation)
