"""Quorum-system configuration and intersection math.

BFT-BC uses ``n = 3f + 1`` replicas with quorums of any ``2f + 1`` replicas
(§3.2), which guarantees that any two quorums intersect in at least ``f + 1``
replicas — hence at least one correct one.  The baselines use different
shapes: the original BQS construction also uses ``3f + 1`` / ``2f + 1``,
while Phalanx [10] uses ``n = 4f + 1`` with quorums of ``3f + 1``.

:class:`QuorumSystem` captures (n, f, quorum size), validates the shape, and
provides the intersection arithmetic the correctness arguments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import QuorumConfigError

__all__ = ["QuorumSystem", "replica_id", "client_id"]


def replica_id(index: int) -> str:
    """Canonical node id for replica ``index``."""
    return f"replica:{index}"


def client_id(name: str | int) -> str:
    """Canonical node id for a client."""
    return f"client:{name}"


@dataclass(frozen=True)
class QuorumSystem:
    """A (n, f, q) masking quorum configuration.

    Attributes:
        n: total number of replicas.
        f: maximum number of Byzantine replicas tolerated.
        quorum_size: number of replicas in every quorum.
        members: explicit node ids of the replicas.  ``None`` (the default)
            keeps the canonical ``replica:0 .. replica:n-1`` naming; sharded
            deployments name each group's replicas explicitly.
        extra_signers: node ids whose signatures still count towards quorum
            certificates even though they are no longer (or not yet) active
            members — used across reconfigurations so certificates formed
            under an earlier epoch's membership keep validating.  These ids
            never appear in ``replica_ids`` (no traffic is sent to them).
    """

    n: int
    f: int
    quorum_size: int
    members: Optional[tuple[str, ...]] = None
    extra_signers: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.members is not None:
            if len(self.members) != self.n:
                raise QuorumConfigError(
                    f"{len(self.members)} members listed for n={self.n}"
                )
            if len(set(self.members)) != self.n:
                raise QuorumConfigError("duplicate member ids")
        if self.f < 0:
            raise QuorumConfigError(f"f must be non-negative, got {self.f}")
        if self.n < 1:
            raise QuorumConfigError(f"n must be positive, got {self.n}")
        if not 0 < self.quorum_size <= self.n:
            raise QuorumConfigError(
                f"quorum size {self.quorum_size} out of range for n={self.n}"
            )
        # Liveness: a quorum must be reachable with f replicas silent.
        if self.quorum_size > self.n - self.f:
            raise QuorumConfigError(
                f"quorum size {self.quorum_size} unreachable with f={self.f} "
                f"silent replicas out of n={self.n}"
            )
        # Safety: two quorums must intersect in more than f replicas so the
        # intersection contains at least one correct replica.
        if self.min_intersection <= self.f:
            raise QuorumConfigError(
                f"quorums of {self.quorum_size} out of {self.n} intersect in only "
                f"{self.min_intersection} replicas; need > f={self.f}"
            )

    @classmethod
    def bft_bc(cls, f: int) -> "QuorumSystem":
        """The paper's configuration: ``n = 3f + 1``, quorums of ``2f + 1``."""
        return cls(n=3 * f + 1, f=f, quorum_size=2 * f + 1)

    @classmethod
    def bqs(cls, f: int) -> "QuorumSystem":
        """Original BQS register [9]: same shape as BFT-BC."""
        return cls.bft_bc(f)

    @classmethod
    def phalanx(cls, f: int) -> "QuorumSystem":
        """Phalanx [10] Byzantine-client protocol: ``4f + 1`` / ``3f + 1``."""
        return cls(n=4 * f + 1, f=f, quorum_size=3 * f + 1)

    @property
    def min_intersection(self) -> int:
        """Minimum overlap between any two quorums."""
        return 2 * self.quorum_size - self.n

    @property
    def min_correct_intersection(self) -> int:
        """Minimum number of *correct* replicas shared by any two quorums."""
        return self.min_intersection - self.f

    @property
    def replica_ids(self) -> tuple[str, ...]:
        """Node ids of all active replicas.

        The explicit ``members`` tuple when one was given, otherwise the
        canonical numbering ``replica:0 .. replica:n-1`` (§3.2).
        """
        if self.members is not None:
            return self.members
        return tuple(replica_id(i) for i in range(self.n))

    def is_replica(self, node_id: str) -> bool:
        """True if ``node_id``'s signature counts towards this system's quorums.

        With explicit ``members`` this is membership (plus the historical
        ``extra_signers``); otherwise the canonical ``replica:<i>`` check.
        """
        if self.members is not None:
            return node_id in self.members or node_id in self.extra_signers
        if not node_id.startswith("replica:"):
            return False
        try:
            index = int(node_id.split(":", 1)[1])
        except ValueError:
            return False
        return 0 <= index < self.n

    def is_quorum(self, nodes: set[str] | frozenset[str]) -> bool:
        """True if ``nodes`` are distinct valid replicas forming a quorum."""
        return len(nodes) >= self.quorum_size and all(
            self.is_replica(node) for node in nodes
        )

    def describe(self) -> str:
        """One-line human summary of the quorum geometry."""
        return (
            f"n={self.n}, f={self.f}, |Q|={self.quorum_size}, "
            f"min quorum intersection={self.min_intersection} "
            f"(>= {self.min_correct_intersection} correct)"
        )
