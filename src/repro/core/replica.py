"""BFT-BC replica state machines (Figure 2, §6.2, §7.2).

Replicas are sans-I/O: :meth:`BftBcReplica.handle` consumes one decoded
request and returns the reply message (or ``None`` — per the paper, invalid
requests are discarded *silently*, with the reason recorded in
:class:`ReplicaStats` for observability).

The same class runs on the deterministic simulator and on the asyncio TCP
transport.

State per Figure 2:

* ``data`` — the value of the object,
* ``pcert`` — a valid prepare certificate for ``h(data)``,
* ``plist`` — at most one proposed write ``(t, h)`` per client,
* ``write_ts`` — the timestamp of the latest write known to have completed
  at a quorum.

All of it lives behind a :class:`~repro.core.persistence.DurableReplicaState`
backed by a pluggable :class:`~repro.storage.ReplicaStore`: every mutation is
write-ahead logged before the corresponding reply can leave the replica, and
:meth:`BftBcReplica.recover` rebuilds the state from snapshot + log after a
crash.  The default :class:`~repro.storage.MemoryStore` preserves the old
zero-copy in-memory behaviour; :class:`~repro.storage.FileLogStore` makes
the replica durable.

:class:`OptimizedBftBcReplica` (§6) adds the second prepare list
(``optlist``), performs prepares on the client's behalf in the merged
phase-1/2, and breaks equal-timestamp ties in phase 3 by larger value hash.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    Message,
    PrepareReply,
    PrepareRequest,
    ReadReply,
    ReadRequest,
    ReadTsPrepReply,
    ReadTsPrepRequest,
    ReadTsReply,
    ReadTsRequest,
    RepairReply,
    RepairRequest,
    WriteReply,
    WriteRequest,
)
from repro.core.persistence import DurableReplicaState, PlistEntry
from repro.core.phases import Send
from repro.core.repair import StateRepair
from repro.core.statements import (
    prepare_reply_statement,
    prepare_request_statement,
    read_reply_statement,
    read_ts_prep_reply_statement,
    read_ts_prep_request_statement,
    read_ts_reply_statement,
    write_reply_statement,
    write_request_statement,
)
from repro.core.timestamp import Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature
from repro.obs.instrumentation import NULL_INSTRUMENTATION, Instrumentation
from repro.storage import ReplicaStore

__all__ = ["PlistEntry", "ReplicaStats", "BftBcReplica", "OptimizedBftBcReplica"]


@dataclass
class ReplicaStats:
    """Counters exposed for tests and the benchmark harness."""

    handled: Counter = field(default_factory=Counter)
    discards: Counter = field(default_factory=Counter)
    replies: int = 0
    foreground_signs: int = 0
    background_signs: int = 0
    vouch_signs: int = 0
    writes_installed: int = 0
    quarantines: int = 0
    quarantine_reasons: Counter = field(default_factory=Counter)
    repairs: int = 0
    self_audits: int = 0

    def discard(self, reason: str) -> None:
        self.discards[reason] += 1

    @property
    def total_discards(self) -> int:
        return sum(self.discards.values())


class BftBcReplica:
    """Base-protocol replica (Figure 2), plus the §7 strong-mode checks."""

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        store: Optional[ReplicaStore] = None,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        #: Observability handle; the disabled singleton keeps spans free.
        self.instrumentation = instrumentation or NULL_INSTRUMENTATION
        #: The verifier every handler uses — wrapped to time ``verify.*``
        #: sub-timings when instrumentation is enabled, the raw config
        #: verifier otherwise (identical object, zero overhead).
        self.verifier = self.instrumentation.wrap_verifier(config.verifier)
        #: All Figure-2 state, write-ahead logged through the store
        #: (wrapped for ``store.*`` sub-timings when instrumented).
        self._state = DurableReplicaState(
            self.instrumentation.wrap_store(store),
            budget=config.client_state_budget,
            gc_stale=config.gc_plist,
        )
        self.stats = ReplicaStats()
        # §3.3.2: WRITE-REPLY signatures pre-computed at prepare time.
        # Volatile by design — a recovered replica simply re-signs.
        self._presigned: dict[Timestamp, Signature] = {}
        #: True while this replica's state is known-bad: protocol requests
        #: are discarded (reason ``quarantined``) until repair completes.
        self.quarantined = False
        #: Sans-I/O quarantine-repair driver; transports move its Sends.
        #: Candidates are certificate-checked through this replica's own
        #: acceptance hook, so the fast variant's proof-evidence (own MAC
        #: column) certificates validate during repair too.
        self.repair = StateRepair(
            node_id,
            config,
            self._install_repaired_state,
            cert_check=self._certificate_valid,
        )

    # -- state access (all reads go through the durable state) -------------

    @property
    def store(self) -> ReplicaStore:
        """The backing store (``MemoryStore`` unless one was injected)."""
        return self._state.store

    @property
    def data(self):
        return self._state.data

    @property
    def pcert(self) -> PrepareCertificate:
        return self._state.pcert

    @property
    def write_ts(self) -> Timestamp:
        return self._state.write_ts

    @property
    def plist(self):
        """At most one proposed write ``(t, h)`` per client (logged map)."""
        return self._state.plist

    @property
    def client_state(self):
        """The per-client maps and their budget accounting (E21)."""
        return self._state.client_state

    @property
    def signed_write_replies(self):
        """Every WRITE-REPLY timestamp this replica ever signed (Lemma 1)."""
        return self._state.signed_write_replies

    @property
    def signed_prepare_replies(self):
        """Every PREPARE-REPLY ``(ts, hash, client)`` ever signed (Lemma 1)."""
        return self._state.signed_prepare_replies

    def recover(self) -> None:
        """Rebuild Figure-2 state from the store's snapshot + log.

        Idempotent, including under a torn final WAL record (the store
        truncates it).  The presigned-signature cache is volatile and is
        dropped; recovered replicas re-sign on demand.

        If the store had to quarantine corrupt bytes to produce its result
        (:attr:`~repro.storage.ReplicaStore.suspect`), the recovered state
        may trail writes this replica acknowledged — the replica enters
        quarantine and must :meth:`begin_repair` before serving.
        """
        self._state.recover()
        self._presigned.clear()
        if getattr(self.store, "suspect", False):
            self.enter_quarantine("corrupt-storage")

    def state_fingerprint(self, *, include_signing_logs: bool = False) -> bytes:
        """Digest of the durable state, for differential recovery tests."""
        return self._state.fingerprint(include_signing_logs=include_signing_logs)

    def prevalidate(self, messages: list[Message]) -> int:
        """Warm the verification memo for a batch of requests in one pass.

        Adapters that receive several frames at once (a
        :class:`~repro.core.batching.BatchEnvelope`, or a TCP read chunk
        holding many frames) call this before handling the messages
        individually; every signature and certificate check the handlers
        are about to make becomes a memo hit.  Purely an optimization —
        the handlers' own checks remain authoritative.
        """
        from repro.core.batching import prevalidate_batch

        return prevalidate_batch(self.verifier, messages)

    def snapshot_wire(self) -> dict[str, Any]:
        """The full durable state as one canonical wire value.

        This is what a state-transfer frame ships to a bootstrapping peer
        (``repro.shard``); the receiver revalidates it independently.
        """
        return self._state.snapshot_wire()

    # -- self-stabilization ------------------------------------------------

    def enter_quarantine(self, reason: str) -> None:
        """Stop serving protocol traffic until repair completes.

        Idempotent per episode of corruption: re-detecting the same damage
        while already quarantined does not count a second quarantine.
        """
        self.stats.quarantine_reasons[reason] += 1
        if not self.quarantined:
            self.quarantined = True
            self.stats.quarantines += 1

    def self_audit(self) -> bool:
        """Verify the live state against an independent replay of the store.

        A scratch twin recovers from the same store and its exact
        fingerprint (signing logs included) is compared against the live
        state.  This catches both silent in-memory perturbation (live
        state no longer matches what the durable log reproduces) and
        latent disk corruption (the store flags itself ``suspect`` during
        the twin's load).  Returns True when clean; on failure the replica
        enters quarantine and should repair from peers.
        """
        self.stats.self_audits += 1
        store = self.store
        saved_source = store.snapshot_source
        try:
            twin = type(self)(self.node_id, self.config, store=store)
            try:
                twin.recover()
            except Exception:
                self.enter_quarantine("audit-replay-failed")
                return False
        finally:
            store.snapshot_source = saved_source
        if getattr(store, "suspect", False):
            self.enter_quarantine("corrupt-storage")
            return False
        live = self.state_fingerprint(include_signing_logs=True)
        replayed = twin.state_fingerprint(include_signing_logs=True)
        if live != replayed:
            self.enter_quarantine("audit-mismatch")
            return False
        return True

    def begin_repair(self) -> list[Send]:
        """Start pulling replacement state from peers; returns the requests.

        Only meaningful while quarantined — a healthy replica has nothing
        to repair and gets an empty batch.
        """
        if not self.quarantined:
            return []
        return self.repair.begin()

    def repair_retransmit(self) -> list[Send]:
        """Re-issue repair pulls to peers that have not answered yet."""
        if not self.quarantined:
            return []
        return self.repair.retransmit()

    def _install_repaired_state(self, snapshot: dict[str, Any]) -> None:
        """Adopt a validated peer snapshot, keeping our own signing logs.

        Signing logs record what *this* replica signed; importing a peer's
        would double-count signatures in the Lemma 1 accounting, while our
        own surviving prefix can only undercount (safe — see PROTOCOL.md).
        ``fastc`` rides with them: its MAC rows are replica-local secrets.

        The surviving logs are taken from a fresh replay of the durable
        store, not from live memory — when the quarantine was triggered by
        an in-memory perturbation, the store still holds the true logs.
        """
        self._state.recover()
        own = self._state.snapshot_wire()
        merged = dict(snapshot)
        merged["swr"] = own["swr"]
        merged["spr"] = own["spr"]
        merged["fastc"] = own["fastc"]
        self.store.write_snapshot(merged)
        self.recover()
        self.quarantined = False
        self.stats.repairs += 1

    def _handle_repair_request(self, message: RepairRequest) -> Optional[Message]:
        """Serve our full state to a repairing peer (never while quarantined —
        known-bad state must not propagate)."""
        if self.quarantined:
            self.stats.discard("quarantined")
            return None
        return RepairReply(
            replica=self.node_id,
            nonce=message.nonce,
            snapshot=self.snapshot_wire(),
            fingerprint=self.state_fingerprint(),
        )

    # -- helpers ----------------------------------------------------------

    def _sign(self, statement: object) -> Signature:
        self.stats.foreground_signs += 1
        return self.config.scheme.sign_statement(self.node_id, statement)

    def _write_reply_signature(self, ts: Timestamp) -> Signature:
        """Signature for ``<WRITE-REPLY, ts>``, using the §3.3.2 cache."""
        self.signed_write_replies.add(ts)
        cached = self._presigned.pop(ts, None)
        if cached is not None:
            return cached
        return self._sign(write_reply_statement(ts))

    def _presign_write_reply(self, ts: Timestamp) -> None:
        if self.config.background_signing and ts not in self._presigned:
            # NOTE: the presigned signature is *not* logged as released —
            # it leaves the replica only when the phase-3 request arrives
            # (via _write_reply_signature), which is what Lemma 1's
            # signature-counting argument is about.
            self._presigned[ts] = self.config.scheme.sign_statement(
                self.node_id, write_reply_statement(ts)
            )
            self.stats.background_signs += 1

    def _client_request_ok(self, client: str, signature: Signature) -> bool:
        """ACL and (optionally) strict-stop checks on a signed request."""
        if signature.signer != client:
            return False
        if not self.config.is_authorized_writer(client):
            self.stats.discard("unauthorized")
            return False
        if self.config.strict_stop and self.config.registry.is_revoked(client):
            self.stats.discard("revoked")
            return False
        return True

    def _ts_vouch(self) -> Optional[Signature]:
        """§7: vouch that a write with ``pcert.ts`` is stored at this replica."""
        if not self.config.strong:
            return None
        self.signed_write_replies.add(self.pcert.ts)
        return self._sign(write_reply_statement(self.pcert.ts))

    def _pvouch(self) -> Optional[Signature]:
        """Fast-path hook: vouch for a proof-evidence ``pcert`` (base: none)."""
        return None

    def _certificate_valid(self, cert: PrepareCertificate) -> bool:
        """Prepare-certificate acceptance hook.

        The base replica accepts exactly what any third party would
        (:meth:`~repro.core.verification.Verifier.certificate_valid`); the
        fast replica overrides this to additionally accept proof evidence by
        checking its own MAC column.
        """
        return self.verifier.certificate_valid(cert)

    def _write_certificate_valid(self, wcert: WriteCertificate) -> bool:
        """Write-certificate acceptance hook (see :meth:`_certificate_valid`)."""
        return self.verifier.certificate_valid(wcert)

    def _apply_write_certificate(self, wcert: Optional[WriteCertificate]) -> bool:
        """Figure 2 phase-2 step 2: advance write_ts and prune prepare lists.

        Returns False if a present certificate is invalid (caller discards).
        """
        if wcert is None:
            return True
        if not self._write_certificate_valid(wcert):
            self.stats.discard("bad-write-cert")
            return False
        self._state.advance_write_ts(wcert.ts)
        if self.config.gc_plist:
            self._gc_prepare_lists()
        return True

    def _gc_prepare_lists(self) -> None:
        # Scans only hot entries; spilled ones are collected lazily against
        # the same (monotone) cutoff — see repro.core.persistence.
        self.plist.gc_stale(self.write_ts)

    # -- dispatch ----------------------------------------------------------

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        """Process one request; return the reply or None (silent discard).

        When instrumented, the whole dispatch runs inside a handler span
        (series ``handler.<KIND>``); the uninstrumented path goes straight
        to :meth:`_dispatch`.

        Repair traffic is routed ahead of the quarantine gate: a
        quarantined replica still *receives* repair replies (that is how it
        heals) and still answers repair pulls from others with a refusal —
        everything else is discarded with the ``quarantined`` reason until
        repair completes.
        """
        if isinstance(message, RepairRequest):
            self.stats.handled[message.KIND] += 1
            reply = self._handle_repair_request(message)
            if reply is not None:
                self.stats.replies += 1
            return reply
        if isinstance(message, RepairReply):
            self.stats.handled[message.KIND] += 1
            self.repair.on_reply(sender, message)
            return None
        if self.quarantined:
            self.stats.handled[message.KIND] += 1
            self.stats.discard("quarantined")
            return None
        instr = self.instrumentation
        if not instr.enabled:
            return self._dispatch(sender, message)
        span = instr.handler_span(message.KIND, node=self.node_id)
        try:
            reply = self._dispatch(sender, message)
            span.set("replied", reply is not None)
            return reply
        finally:
            span.end()

    def _dispatch(self, sender: str, message: Message) -> Optional[Message]:
        self.stats.handled[message.KIND] += 1
        if isinstance(message, ReadTsRequest):
            reply = self._handle_read_ts(message)
        elif isinstance(message, PrepareRequest):
            reply = self._handle_prepare(message)
        elif isinstance(message, WriteRequest):
            reply = self._handle_write(message)
        elif isinstance(message, ReadRequest):
            reply = self._handle_read(message)
        else:
            self.stats.discard("unknown-kind")
            reply = None
        if reply is not None:
            self.stats.replies += 1
        return reply

    # -- phase 1: READ-TS --------------------------------------------------

    def _handle_read_ts(self, message: ReadTsRequest) -> ReadTsReply:
        # §3.3.1 piggyback: an attached write certificate is a free hint for
        # pruning the prepare list; an invalid one is simply ignored (the
        # read itself is still served).
        if message.write_cert is not None:
            self._apply_write_certificate(message.write_cert)
        cert_wire = self.pcert.to_wire()
        signature = self._sign(read_ts_reply_statement(cert_wire, message.nonce))
        return ReadTsReply(
            cert=self.pcert,
            nonce=message.nonce,
            signature=signature,
            ts_vouch=self._ts_vouch(),
            pvouch=self._pvouch(),
        )

    # -- phase 2: PREPARE ----------------------------------------------------

    def _handle_prepare(self, message: PrepareRequest) -> Optional[PrepareReply]:
        client = message.signature.signer
        if not self._client_request_ok(client, message.signature):
            return None
        statement = prepare_request_statement(
            message.prev_cert.to_wire(),
            message.ts,
            message.value_hash,
            None if message.write_cert is None else message.write_cert.to_wire(),
            None if message.justify_cert is None else message.justify_cert.to_wire(),
        )
        if not self.verifier.verify_statement(message.signature, statement):
            self.stats.discard("bad-signature")
            return None
        if not self._certificate_valid(message.prev_cert):
            self.stats.discard("bad-prepare-cert")
            return None
        # Timestamp succession: t = succ(prepC.ts, c).  This is what stops a
        # bad client from exhausting the timestamp space (§3.2 issue 3).
        if message.ts != message.prev_cert.ts.succ(client):
            self.stats.discard("bad-ts")
            return None
        if self.config.strong:
            # §7: the proposed timestamp must succeed a *completed* write.
            if message.justify_cert is None:
                self.stats.discard("missing-justify")
                return None
            if not self.verifier.certificate_valid(message.justify_cert):
                self.stats.discard("bad-justify-cert")
                return None
            if message.ts != message.justify_cert.ts.succ(client):
                self.stats.discard("bad-justify-ts")
                return None
        if not self._apply_write_certificate(message.write_cert):
            return None
        entry = self.plist.get(client)
        if entry is not None and (
            entry.ts != message.ts or entry.value_hash != message.value_hash
        ):
            # One outstanding prepare per client: the client must complete
            # (or the write certificate must clear) its previous write first.
            self.stats.discard("plist-conflict")
            return None
        if entry is None and message.ts > self.write_ts:
            self.plist[client] = PlistEntry(ts=message.ts, value_hash=message.value_hash)
        self._presign_write_reply(message.ts)
        self.signed_prepare_replies.add((message.ts, message.value_hash, client))
        signature = self._sign(prepare_reply_statement(message.ts, message.value_hash))
        return PrepareReply(
            ts=message.ts, value_hash=message.value_hash, signature=signature
        )

    # -- phase 3: WRITE ------------------------------------------------------

    def _handle_write(self, message: WriteRequest) -> Optional[WriteReply]:
        client = message.signature.signer
        if not self._client_request_ok(client, message.signature):
            return None
        statement = write_request_statement(
            message.value, message.prepare_cert.to_wire()
        )
        if not self.verifier.verify_statement(message.signature, statement):
            self.stats.discard("bad-signature")
            return None
        cert = message.prepare_cert
        if not self._certificate_valid(cert):
            self.stats.discard("bad-prepare-cert")
            return None
        if cert.h != hash_value(message.value):
            self.stats.discard("bad-hash")
            return None
        if self._should_install(cert):
            self._state.install(message.value, cert)
            self.stats.writes_installed += 1
        signature = self._write_reply_signature(cert.ts)
        return WriteReply(ts=cert.ts, signature=signature)

    def _should_install(self, cert: PrepareCertificate) -> bool:
        """Figure 2 phase-3 step 2: overwrite only on a larger timestamp."""
        return cert.ts > self.pcert.ts

    # -- reads ---------------------------------------------------------------

    def _handle_read(self, message: ReadRequest) -> ReadReply:
        if message.write_cert is not None:
            self._apply_write_certificate(message.write_cert)  # §3.3.1 hint
        cert_wire = self.pcert.to_wire()
        signature = self._sign(
            read_reply_statement(self.data, cert_wire, message.nonce)
        )
        return ReadReply(
            value=self.data,
            cert=self.pcert,
            nonce=message.nonce,
            signature=signature,
            ts_vouch=self._ts_vouch(),
            pvouch=self._pvouch(),
        )


class OptimizedBftBcReplica(BftBcReplica):
    """§6 replica: merged phase-1/2, second prepare list, hash tie-break."""

    def __init__(
        self,
        node_id: str,
        config: SystemConfig,
        store: Optional[ReplicaStore] = None,
        *,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        super().__init__(node_id, config, store, instrumentation=instrumentation)
        self._state.ensure_optlist()

    @property
    def optlist(self):
        """The §6 second prepare list (logged map, like ``plist``)."""
        return self._state.optlist

    def _dispatch(self, sender: str, message: Message) -> Optional[Message]:
        if isinstance(message, ReadTsPrepRequest):
            self.stats.handled[message.KIND] += 1
            reply = self._handle_read_ts_prep(message)
            if reply is not None:
                self.stats.replies += 1
            return reply
        return super()._dispatch(sender, message)

    def _gc_prepare_lists(self) -> None:
        super()._gc_prepare_lists()
        self.optlist.gc_stale(self.write_ts)

    def _handle_read_ts_prep(
        self, message: ReadTsPrepRequest
    ) -> Optional[ReadTsPrepReply]:
        client = message.signature.signer
        if not self._client_request_ok(client, message.signature):
            return None
        statement = read_ts_prep_request_statement(
            message.value_hash,
            None if message.write_cert is None else message.write_cert.to_wire(),
            message.nonce,
        )
        if not self.verifier.verify_statement(message.signature, statement):
            self.stats.discard("bad-signature")
            return None
        if not self._apply_write_certificate(message.write_cert):
            return None
        predicted = self.pcert.ts.succ(client)
        prepared_ts: Optional[Timestamp] = None
        prep_sig: Optional[Signature] = None
        if self._may_opt_prepare(client, predicted, message.value_hash):
            if client not in self.optlist:
                self.optlist[client] = PlistEntry(
                    ts=predicted, value_hash=message.value_hash
                )
            self._presign_write_reply(predicted)
            self.signed_prepare_replies.add(
                (predicted, message.value_hash, client)
            )
            prepared_ts = predicted
            prep_sig = self._sign(
                prepare_reply_statement(predicted, message.value_hash)
            )
        cert_wire = self.pcert.to_wire()
        signature = self._sign(
            read_ts_prep_reply_statement(
                cert_wire,
                None if prepared_ts is None else prepared_ts.to_wire(),
                message.nonce,
            )
        )
        return ReadTsPrepReply(
            cert=self.pcert,
            prepared_ts=prepared_ts,
            prep_sig=prep_sig,
            nonce=message.nonce,
            signature=signature,
        )

    def _may_opt_prepare(
        self, client: str, predicted: Timestamp, value_hash: bytes
    ) -> bool:
        """§6.2: prepare on the client's behalf unless it already has an
        entry in either prepare list for a different timestamp or hash."""
        if predicted <= self.write_ts:
            return False
        for entries in (self.plist, self.optlist):
            entry = entries.get(client)
            if entry is not None and (
                entry.ts != predicted or entry.value_hash != value_hash
            ):
                return False
        return True

    def _should_install(self, cert: PrepareCertificate) -> bool:
        """§6.2 phase 3: on an equal timestamp keep the larger hash."""
        if cert.ts > self.pcert.ts:
            return True
        return cert.ts == self.pcert.ts and cert.h > self.pcert.h
