"""Protocol messages for BFT-BC (base §3.2, optimized §6.2, strong §7.2).

Every message is an immutable dataclass with a ``KIND`` tag and a symmetric
``to_wire`` / ``from_wire`` pair.  The wire form is a plain dict of
canonically encodable values, so any message round-trips through
:func:`repro.encoding.canonical_encode`.

The module keeps a registry mapping kind tags to classes; baseline protocols
register their own message types through :func:`register_message`.

Per the paper, replicas silently discard invalid requests — there are no
negative acknowledgements — so the message set is exactly the requests and
replies named in Figures 1 and 2 plus the optimized/strong variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Optional, TypeVar

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.timestamp import Timestamp
from repro.crypto.commitments import ProofOfWriting
from repro.crypto.signatures import Signature
from repro.encoding import canonical_encode
from repro.errors import ProtocolError

__all__ = [
    "Message",
    "register_message",
    "message_to_wire",
    "message_from_wire",
    "message_wire_bytes",
    "WireCacheStats",
    "wire_cache_stats",
    "reset_wire_cache_stats",
    "set_wire_cache_enabled",
    "ReadTsRequest",
    "ReadTsReply",
    "PrepareRequest",
    "PrepareReply",
    "WriteRequest",
    "WriteReply",
    "ReadRequest",
    "ReadReply",
    "ReadTsPrepRequest",
    "ReadTsPrepReply",
    "FastPrepRequest",
    "FastPrepReply",
    "FastWriteRequest",
    "FastWriteReply",
    "RepairRequest",
    "RepairReply",
]


class Message:
    """Base class for all protocol messages."""

    KIND: ClassVar[str] = ""

    def to_wire(self) -> dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Message":  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, type[Message]] = {}

M = TypeVar("M", bound=type[Message])


def register_message(cls: M) -> M:
    """Class decorator adding a message type to the wire registry."""
    if not cls.KIND:
        raise ProtocolError(f"{cls.__name__} has no KIND tag")
    if cls.KIND in _REGISTRY:
        raise ProtocolError(f"duplicate message kind {cls.KIND!r}")
    _REGISTRY[cls.KIND] = cls
    return cls


def message_to_wire(message: Message) -> dict[str, Any]:
    """Serialise any registered message to its wire dict."""
    wire = message.to_wire()
    wire["kind"] = message.KIND
    return wire


@dataclass
class WireCacheStats:
    """Counters for the encode-once wire cache (experiment E15 reads these).

    ``hits`` count sends served from a message's cached bytes; ``misses``
    count first encodes.  ``bytes_saved`` is the encoding work avoided:
    the cached payload size times the number of hits.
    """

    hits: int = 0
    misses: int = 0
    bytes_encoded: int = 0
    bytes_saved: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of wire-byte requests served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_encoded = 0
        self.bytes_saved = 0


_WIRE_STATS = WireCacheStats()
_WIRE_CACHE_ENABLED = True
#: Attribute slot used to stash a message's canonical bytes on the instance.
_WIRE_ATTR = "_cached_wire_bytes"


def wire_cache_stats() -> WireCacheStats:
    """The process-wide encode-once cache counters."""
    return _WIRE_STATS


def reset_wire_cache_stats() -> None:
    """Zero the cache counters (benchmark isolation)."""
    _WIRE_STATS.reset()


def set_wire_cache_enabled(enabled: bool) -> None:
    """Toggle the cache (the ablation arm of the wire-cost benchmark)."""
    global _WIRE_CACHE_ENABLED
    _WIRE_CACHE_ENABLED = enabled


def message_wire_bytes(message: Message) -> bytes:
    """Canonical wire bytes of ``message``, encoded at most once per instance.

    Messages are frozen dataclasses, so an instance's wire form never
    changes; the bytes are stashed on the instance the first time they are
    needed and every later send — each leg of a 3f+1 fan-out, every
    retransmission — reuses them.  Transports and the simulated network all
    serialise through here, so a message crosses the encoder exactly once no
    matter how many links carry it.
    """
    cached = message.__dict__.get(_WIRE_ATTR)
    if cached is not None:
        _WIRE_STATS.hits += 1
        _WIRE_STATS.bytes_saved += len(cached)
        return cached
    encoded = canonical_encode(message_to_wire(message))
    _WIRE_STATS.misses += 1
    _WIRE_STATS.bytes_encoded += len(encoded)
    if _WIRE_CACHE_ENABLED:
        object.__setattr__(message, _WIRE_ATTR, encoded)
    return encoded


def message_from_wire(wire: Any) -> Message:
    """Parse a wire dict back into a message instance.

    Raises:
        ProtocolError: if the kind is unknown or the body is malformed.
    """
    if not isinstance(wire, dict) or "kind" not in wire:
        raise ProtocolError(f"malformed message wire: {wire!r}")
    kind = wire["kind"]
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    try:
        return cls.from_wire(wire)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed {kind} message: {exc}") from exc


def _opt(wire_value: Any, parse: Callable[[Any], Any]) -> Any:
    return None if wire_value is None else parse(wire_value)


def _sig(wire_value: Any) -> Signature:
    return Signature.from_wire(wire_value)


def _macvec(wire_value: Any) -> tuple[tuple[str, bytes], ...]:
    """Parse a ``((receiver, mac), ...)`` MAC vector, validating shape."""
    if not isinstance(wire_value, tuple):
        raise ProtocolError(f"malformed MAC vector: {wire_value!r}")
    for entry in wire_value:
        if (
            not isinstance(entry, tuple)
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], bytes)
        ):
            raise ProtocolError(f"malformed MAC vector entry: {entry!r}")
    return wire_value


# ---------------------------------------------------------------------------
# Base protocol (Figures 1 and 2)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class ReadTsRequest(Message):
    """Phase-1 request: ``<READ-TS, nonce>``.

    ``write_cert`` implements §3.3.1's optional speed-up ("we could speed up
    removing entries from the list if we propagated write certificates in
    more messages, e.g., in read requests"): a self-certifying write
    certificate the replica may apply to prune its prepare list.
    """

    KIND: ClassVar[str] = "READ-TS"
    nonce: bytes
    write_cert: Optional[WriteCertificate] = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "nonce": self.nonce,
            "wcert": None if self.write_cert is None else self.write_cert.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReadTsRequest":
        return cls(
            nonce=wire["nonce"],
            write_cert=_opt(wire.get("wcert"), WriteCertificate.from_wire),
        )


@register_message
@dataclass(frozen=True)
class ReadTsReply(Message):
    """Phase-1 reply: ``<READ-TS-REPLY, Pcert, nonce>_sigma_r``.

    ``ts_vouch`` is only present in the §7 strong variant: a signature over
    ``<WRITE-REPLY, cert.ts>`` vouching that this replica has stored a write
    with that timestamp, from which clients assemble the justify certificate.

    ``pvouch`` is only present in the fast-path variant when the replica's
    stored certificate carries proof evidence: a signature over
    ``<FAST-VOUCH, cert.ts, cert.h>``; ``f+1`` of them let a client upgrade
    the non-transferable proof certificate to a transferable vouch one.
    """

    KIND: ClassVar[str] = "READ-TS-REPLY"
    cert: PrepareCertificate
    nonce: bytes
    signature: Signature
    ts_vouch: Optional[Signature] = None
    pvouch: Optional[Signature] = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "cert": self.cert.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
            "vouch": None if self.ts_vouch is None else self.ts_vouch.to_wire(),
            "pvouch": None if self.pvouch is None else self.pvouch.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReadTsReply":
        return cls(
            cert=PrepareCertificate.from_wire(wire["cert"]),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
            ts_vouch=_opt(wire["vouch"], _sig),
            pvouch=_opt(wire.get("pvouch"), _sig),
        )


@register_message
@dataclass(frozen=True)
class PrepareRequest(Message):
    """Phase-2 request: ``<PREPARE, Pmax, t, h(val), Wcert>_sigma_c``.

    ``justify_cert`` is None in the base protocol; the strong variant (§7)
    carries a write certificate with ``ts = succ(justify_cert.ts, c)``.
    """

    KIND: ClassVar[str] = "PREPARE"
    prev_cert: PrepareCertificate
    ts: Timestamp
    value_hash: bytes
    write_cert: Optional[WriteCertificate]
    justify_cert: Optional[WriteCertificate]
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "prev": self.prev_cert.to_wire(),
            "ts": self.ts.to_wire(),
            "hash": self.value_hash,
            "wcert": None if self.write_cert is None else self.write_cert.to_wire(),
            "jcert": None if self.justify_cert is None else self.justify_cert.to_wire(),
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PrepareRequest":
        return cls(
            prev_cert=PrepareCertificate.from_wire(wire["prev"]),
            ts=Timestamp.from_wire(wire["ts"]),
            value_hash=wire["hash"],
            write_cert=_opt(wire["wcert"], WriteCertificate.from_wire),
            justify_cert=_opt(wire["jcert"], WriteCertificate.from_wire),
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class PrepareReply(Message):
    """Phase-2 reply: ``<PREPARE-REPLY, t, h>_sigma_r``."""

    KIND: ClassVar[str] = "PREPARE-REPLY"
    ts: Timestamp
    value_hash: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "ts": self.ts.to_wire(),
            "hash": self.value_hash,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PrepareReply":
        return cls(
            ts=Timestamp.from_wire(wire["ts"]),
            value_hash=wire["hash"],
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class WriteRequest(Message):
    """Phase-3 request: ``<WRITE, val, Pnew>_sigma_c``."""

    KIND: ClassVar[str] = "WRITE"
    value: Any
    prepare_cert: PrepareCertificate
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "cert": self.prepare_cert.to_wire(),
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "WriteRequest":
        return cls(
            value=wire["value"],
            prepare_cert=PrepareCertificate.from_wire(wire["cert"]),
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class WriteReply(Message):
    """Phase-3 reply: ``<WRITE-REPLY, t>_sigma_r``."""

    KIND: ClassVar[str] = "WRITE-REPLY"
    ts: Timestamp
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {"ts": self.ts.to_wire(), "sig": self.signature.to_wire()}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "WriteReply":
        return cls(ts=Timestamp.from_wire(wire["ts"]), signature=_sig(wire["sig"]))


@register_message
@dataclass(frozen=True)
class ReadRequest(Message):
    """Read phase-1 request: ``<READ, nonce>``.

    ``write_cert``: optional §3.3.1 piggyback, as on :class:`ReadTsRequest`.
    """

    KIND: ClassVar[str] = "READ"
    nonce: bytes
    write_cert: Optional[WriteCertificate] = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "nonce": self.nonce,
            "wcert": None if self.write_cert is None else self.write_cert.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReadRequest":
        return cls(
            nonce=wire["nonce"],
            write_cert=_opt(wire.get("wcert"), WriteCertificate.from_wire),
        )


@register_message
@dataclass(frozen=True)
class ReadReply(Message):
    """Read reply: value, prepare certificate, and nonce, signed by replica."""

    KIND: ClassVar[str] = "READ-REPLY"
    value: Any
    cert: PrepareCertificate
    nonce: bytes
    signature: Signature
    ts_vouch: Optional[Signature] = None
    pvouch: Optional[Signature] = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "cert": self.cert.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
            "vouch": None if self.ts_vouch is None else self.ts_vouch.to_wire(),
            "pvouch": None if self.pvouch is None else self.pvouch.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReadReply":
        return cls(
            value=wire["value"],
            cert=PrepareCertificate.from_wire(wire["cert"]),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
            ts_vouch=_opt(wire["vouch"], _sig),
            pvouch=_opt(wire.get("pvouch"), _sig),
        )


# ---------------------------------------------------------------------------
# Optimized protocol (§6.2)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class ReadTsPrepRequest(Message):
    """Merged phase-1/2 request carrying the proposed value's hash."""

    KIND: ClassVar[str] = "READ-TS-PREP"
    value_hash: bytes
    write_cert: Optional[WriteCertificate]
    nonce: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "hash": self.value_hash,
            "wcert": None if self.write_cert is None else self.write_cert.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReadTsPrepRequest":
        return cls(
            value_hash=wire["hash"],
            write_cert=_opt(wire["wcert"], WriteCertificate.from_wire),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
        )


@register_message
@dataclass(frozen=True)
class ReadTsPrepReply(Message):
    """Merged phase-1/2 reply.

    Always carries the replica's stored prepare certificate (the normal
    phase-1 payload).  When the replica performed the prepare on the client's
    behalf, ``prepared_ts`` holds the predicted timestamp and ``prep_sig`` the
    ``<PREPARE-REPLY, prepared_ts, h>`` signature that contributes to the
    optimistic prepare certificate.
    """

    KIND: ClassVar[str] = "READ-TS-PREP-REPLY"
    cert: PrepareCertificate
    prepared_ts: Optional[Timestamp]
    prep_sig: Optional[Signature]
    nonce: bytes
    signature: Signature

    def to_wire(self) -> dict[str, Any]:
        return {
            "cert": self.cert.to_wire(),
            "pts": None if self.prepared_ts is None else self.prepared_ts.to_wire(),
            "psig": None if self.prep_sig is None else self.prep_sig.to_wire(),
            "nonce": self.nonce,
            "sig": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReadTsPrepReply":
        return cls(
            cert=PrepareCertificate.from_wire(wire["cert"]),
            prepared_ts=_opt(wire["pts"], Timestamp.from_wire),
            prep_sig=_opt(wire["psig"], _sig),
            nonce=wire["nonce"],
            signature=_sig(wire["sig"]),
        )


# ---------------------------------------------------------------------------
# Fast path (signature-free proofs of writing)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class FastPrepRequest(Message):
    """Fast phase-1 request: value hash plus a fresh commitment, MAC'd.

    No signature anywhere: ``macs`` is the client's MAC vector (one entry per
    replica) over :func:`~repro.core.statements.fast_prep_request_statement`.
    The sender identity is the explicit ``client`` field — MAC keys are
    looked up by it, so a colluder replaying a hoarded request authenticates
    as the original client, exactly like a replayed signed request.
    """

    KIND: ClassVar[str] = "FAST-PREP"
    client: str
    value_hash: bytes
    commitment: bytes
    nonce: bytes
    write_cert: Optional[WriteCertificate]
    macs: tuple[tuple[str, bytes], ...]

    def to_wire(self) -> dict[str, Any]:
        return {
            "client": self.client,
            "hash": self.value_hash,
            "commit": self.commitment,
            "nonce": self.nonce,
            "wcert": None if self.write_cert is None else self.write_cert.to_wire(),
            "macs": self.macs,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "FastPrepRequest":
        return cls(
            client=wire["client"],
            value_hash=wire["hash"],
            commitment=wire["commit"],
            nonce=wire["nonce"],
            write_cert=_opt(wire["wcert"], WriteCertificate.from_wire),
            macs=_macvec(wire["macs"]),
        )


@register_message
@dataclass(frozen=True)
class FastPrepReply(Message):
    """Fast phase-1 reply: the predicted timestamp plus this replica's ack row.

    ``row`` carries one MAC per *receiver replica* over
    :func:`~repro.core.statements.fast_prep_ack_statement` — the material
    the client later assembles into a proof of writing.  ``prepared_ts`` is
    ``None`` when the replica refuses to fast-prepare (prepare-list
    conflict); the refusal is still MAC-authenticated (``mac`` covers the
    reply envelope) so it counts as a vote toward fallback.
    """

    KIND: ClassVar[str] = "FAST-PREP-REPLY"
    replica: str
    prepared_ts: Optional[Timestamp]
    row: tuple[tuple[str, bytes], ...]
    nonce: bytes
    mac: bytes

    def to_wire(self) -> dict[str, Any]:
        return {
            "replica": self.replica,
            "pts": None if self.prepared_ts is None else self.prepared_ts.to_wire(),
            "row": self.row,
            "nonce": self.nonce,
            "mac": self.mac,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "FastPrepReply":
        return cls(
            replica=wire["replica"],
            prepared_ts=_opt(wire["pts"], Timestamp.from_wire),
            row=_macvec(wire["row"]),
            nonce=wire["nonce"],
            mac=wire["mac"],
        )


@register_message
@dataclass(frozen=True)
class FastWriteRequest(Message):
    """Fast phase-2 request: the value plus the revealed proof of writing."""

    KIND: ClassVar[str] = "FAST-WRITE"
    client: str
    ts: Timestamp
    value: Any
    proof: ProofOfWriting
    nonce: bytes
    macs: tuple[tuple[str, bytes], ...]

    def to_wire(self) -> dict[str, Any]:
        return {
            "client": self.client,
            "ts": self.ts.to_wire(),
            "value": self.value,
            "proof": self.proof.to_wire(),
            "nonce": self.nonce,
            "macs": self.macs,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "FastWriteRequest":
        return cls(
            client=wire["client"],
            ts=Timestamp.from_wire(wire["ts"]),
            value=wire["value"],
            proof=ProofOfWriting.from_wire(wire["proof"]),
            nonce=wire["nonce"],
            macs=_macvec(wire["macs"]),
        )


@register_message
@dataclass(frozen=True)
class FastWriteReply(Message):
    """Fast phase-2 reply: the install ack row (the fast WRITE-REPLY)."""

    KIND: ClassVar[str] = "FAST-WRITE-REPLY"
    replica: str
    ts: Timestamp
    row: tuple[tuple[str, bytes], ...]
    nonce: bytes
    mac: bytes

    def to_wire(self) -> dict[str, Any]:
        return {
            "replica": self.replica,
            "ts": self.ts.to_wire(),
            "row": self.row,
            "nonce": self.nonce,
            "mac": self.mac,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "FastWriteReply":
        return cls(
            replica=wire["replica"],
            ts=Timestamp.from_wire(wire["ts"]),
            row=_macvec(wire["row"]),
            nonce=wire["nonce"],
            mac=wire["mac"],
        )


# ---------------------------------------------------------------------------
# Quarantine-and-rebuild repair (self-stabilizing storage)
# ---------------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class RepairRequest(Message):
    """A quarantined replica's pull for a full-state snapshot.

    Sent to every peer when a replica detects corruption (a suspect store
    on recovery, or a failed self-audit).  The ``nonce`` binds replies to
    this repair round so stale retransmissions cannot satisfy a later one.
    """

    KIND: ClassVar[str] = "REPAIR-REQ"
    replica: str
    nonce: bytes

    def to_wire(self) -> dict[str, Any]:
        return {"replica": self.replica, "nonce": self.nonce}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "RepairRequest":
        if not (
            isinstance(wire.get("replica"), str)
            and isinstance(wire.get("nonce"), bytes)
        ):
            raise ProtocolError(f"malformed REPAIR-REQ wire value: {wire!r}")
        return cls(replica=wire["replica"], nonce=wire["nonce"])


@register_message
@dataclass(frozen=True)
class RepairReply(Message):
    """One peer's full-state snapshot plus its fingerprint.

    The receiver trusts neither field: it replays the snapshot through a
    scratch state machine, recomputes the fingerprint, and validates the
    embedded prepare certificates before adopting anything — up to *f*
    repliers may be Byzantine.
    """

    KIND: ClassVar[str] = "REPAIR-REPLY"
    replica: str
    nonce: bytes
    snapshot: dict[str, Any]
    fingerprint: bytes

    def to_wire(self) -> dict[str, Any]:
        return {
            "replica": self.replica,
            "nonce": self.nonce,
            "snapshot": self.snapshot,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "RepairReply":
        if not (
            isinstance(wire.get("replica"), str)
            and isinstance(wire.get("nonce"), bytes)
            and isinstance(wire.get("snapshot"), dict)
            and isinstance(wire.get("fingerprint"), bytes)
        ):
            raise ProtocolError(f"malformed REPAIR-REPLY wire value: {wire!r}")
        return cls(
            replica=wire["replica"],
            nonce=wire["nonce"],
            snapshot=wire["snapshot"],
            fingerprint=wire["fingerprint"],
        )
