"""System-wide configuration shared by clients and replicas.

A :class:`SystemConfig` bundles the quorum system, the key registry, the
signature scheme, and the protocol options the design calls out for ablation
(§3.3.2 background signing, §3.3.1 prepare-list garbage collection, §4.1.1
strict-stop access control, §7 strong mode).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.quorum import QuorumSystem
from repro.core.verification import Verifier
from repro.crypto.authenticators import MacAuthenticator
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import (
    HmacSignatureScheme,
    RsaSignatureScheme,
    SignatureScheme,
)
from repro.errors import QuorumConfigError

__all__ = ["Variant", "SystemConfig", "make_system"]


class Variant(str, enum.Enum):
    """The four protocol variants, shared by the cluster, benchmarks, CLI.

    A ``str`` subclass, so existing comparisons against the literal strings
    (``options.variant == "strong"``) keep working, and :meth:`coerce`
    accepts either form — the one place variant spelling is validated.
    """

    BASE = "base"
    OPTIMIZED = "optimized"
    STRONG = "strong"
    FASTPATH = "fastpath"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def coerce(cls, value: Union[str, "Variant"]) -> "Variant":
        """Normalise a variant name; raises ``QuorumConfigError`` if unknown."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise QuorumConfigError(
                f"unknown variant {value!r}; expected one of "
                f"{tuple(v.value for v in cls)}"
            ) from None


@dataclass
class SystemConfig:
    """Everything a node needs to participate in one BFT-BC deployment.

    Attributes:
        quorums: the (n, f, |Q|) quorum system.
        registry: the simulated PKI (key derivation + revocation).
        scheme: signature backend used for all authenticated statements.
        strong: enable the §7 variant (PREPARE carries a justify write
            certificate; phase-1 replies carry timestamp vouches).
        background_signing: replicas pre-sign phase-3 (WRITE-REPLY)
            statements at prepare time so the signature is off the write
            path, per §3.3.2.
        gc_plist: replicas prune prepare-list entries using piggybacked
            write certificates, per §3.3.1.
        strict_stop: replicas additionally reject requests whose *signer*
            has been revoked (the stronger stop notion of §4.1.1 where even
            replays are discarded).  Off by default, as in the paper.
        piggyback_write_certs: clients attach their latest write certificate
            to READ / READ-TS requests so replicas can prune their prepare
            lists sooner — §3.3.1's optional speed-up.
        prefer_quorum: clients send each phase's request to a preferred
            quorum of 2f+1 replicas first, expanding to the full group only
            on retransmission.  This is the messaging discipline §3.3.1's
            O(|Q|) message count assumes ("three RPCs to a quorum of
            replicas"); off by default because broadcasting to all 3f+1 is
            more robust to slow replicas.
        authorized_writers: the access-control list.  ``None`` authorises
            every registered client.
        verification_cache: enable the memoizing verification pipeline
            (:mod:`repro.core.verification`); disable for the uncached
            ablation arm of experiment E4d.
        verifier: the shared :class:`~repro.core.verification.Verifier`
            every role verifies through.  Built automatically; rebuilt by
            ``dataclasses.replace`` whenever the scheme is swapped (e.g. the
            multi-object scoped schemes), so caches never cross schemes.
    """

    quorums: QuorumSystem
    registry: KeyRegistry
    scheme: SignatureScheme
    strong: bool = False
    background_signing: bool = False
    gc_plist: bool = True
    strict_stop: bool = False
    piggyback_write_certs: bool = False
    prefer_quorum: bool = False
    authorized_writers: Optional[set[str]] = field(default=None)
    verification_cache: bool = True
    verifier: Optional[Verifier] = None
    #: Pairwise MAC authenticator for the fast path's signature-free
    #: messages.  Built automatically from the registry; shared by every
    #: node of the deployment (and preserved by ``dataclasses.replace``)
    #: so session keys are derived once.
    authenticator: Optional[MacAuthenticator] = None

    def __post_init__(self) -> None:
        if self.verifier is None or self.verifier.scheme is not self.scheme:
            self.verifier = Verifier(
                self.scheme, self.quorums, enabled=self.verification_cache
            )
        if self.authenticator is None:
            self.authenticator = MacAuthenticator(self.registry)

    @property
    def f(self) -> int:
        return self.quorums.f

    @property
    def n(self) -> int:
        return self.quorums.n

    @property
    def quorum_size(self) -> int:
        return self.quorums.quorum_size

    def is_authorized_writer(self, client: str) -> bool:
        """ACL check used by replicas on signed client requests."""
        if not self.registry.is_registered(client):
            return False
        if self.authorized_writers is None:
            return True
        return client in self.authorized_writers

    def authorize_writer(self, client: str) -> None:
        if self.authorized_writers is None:
            self.authorized_writers = set()
        self.authorized_writers.add(client)

    def revoke_writer(self, client: str) -> None:
        """Administrative stop: revoke the key and drop ACL membership."""
        self.registry.revoke(client)
        if self.authorized_writers is not None:
            self.authorized_writers.discard(client)


def make_system(
    f: int = 1,
    *,
    scheme: str = "hmac",
    seed: bytes = b"repro-default-seed",
    quorums: Optional[QuorumSystem] = None,
    strong: bool = False,
    background_signing: bool = False,
    gc_plist: bool = True,
    strict_stop: bool = False,
    piggyback_write_certs: bool = False,
    prefer_quorum: bool = False,
    verification_cache: bool = True,
) -> SystemConfig:
    """Build a ready-to-use configuration with registered replica keys.

    Args:
        f: fault threshold; defaults to the paper's 3f+1 quorum system.
        scheme: ``"hmac"`` (fast PKI simulation) or ``"rsa"`` (textbook
            RSA-FDH with public-key verification).
        seed: master seed for deterministic key derivation.
        quorums: override the quorum system (e.g. for Phalanx baselines).

    Returns:
        A :class:`SystemConfig` with all replica keys already registered;
        clients register via ``config.registry.register(client_id)``.
    """
    quorum_system = quorums if quorums is not None else QuorumSystem.bft_bc(f)
    registry = KeyRegistry(master_seed=seed)
    if scheme == "hmac":
        signature_scheme: SignatureScheme = HmacSignatureScheme(registry)
    elif scheme == "rsa":
        signature_scheme = RsaSignatureScheme(registry)
    else:
        raise QuorumConfigError(f"unknown signature scheme {scheme!r}")
    for rid in quorum_system.replica_ids:
        registry.register(rid)
    return SystemConfig(
        quorums=quorum_system,
        registry=registry,
        scheme=signature_scheme,
        strong=strong,
        background_signing=background_signing,
        gc_plist=gc_plist,
        strict_stop=strict_stop,
        piggyback_write_certs=piggyback_write_certs,
        prefer_quorum=prefer_quorum,
        verification_cache=verification_cache,
    )
