"""System-wide configuration shared by clients and replicas.

A :class:`SystemConfig` bundles the quorum system, the key registry, the
signature scheme, and the protocol options the design calls out for ablation
(§3.3.2 background signing, §3.3.1 prepare-list garbage collection, §4.1.1
strict-stop access control, §7 strong mode).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.core.persistence import ClientStateBudget
from repro.core.quorum import QuorumSystem
from repro.core.verification import Verifier
from repro.crypto.authenticators import MacAuthenticator
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import (
    HmacSignatureScheme,
    RsaSignatureScheme,
    SignatureScheme,
)
from repro.errors import QuorumConfigError

__all__ = [
    "Variant",
    "AccessPolicy",
    "ExplicitWriters",
    "NamespaceWriters",
    "PredicateWriters",
    "SystemConfig",
    "make_system",
]


class AccessPolicy(ABC):
    """Pluggable write-authorisation rule behind ``authorized_writers``.

    The paper's ACL (§4.1.1) is a set of principals, but a million-writer
    deployment cannot materialise a million-entry set.  A policy answers
    membership queries instead: :class:`ExplicitWriters` is the classic set,
    :class:`NamespaceWriters` admits whole id prefixes in O(1) memory, and
    :class:`PredicateWriters` wraps an arbitrary callable.  All three keep
    *denials* exact — like key revocation, retraction is rare and must never
    be evicted or approximated.
    """

    @abstractmethod
    def allows(self, client: str) -> bool:
        """Whether ``client`` may write."""

    @abstractmethod
    def authorize(self, client: str) -> None:
        """Grant ``client`` write access (idempotent)."""

    @abstractmethod
    def retract(self, client: str) -> None:
        """Withdraw ``client``'s write access (idempotent)."""


class ExplicitWriters(AccessPolicy, set):
    """The classic explicit ACL: a real ``set`` of authorised ids.

    Subclasses ``set`` so existing code (and tests) that compare
    ``config.authorized_writers == {"client:a"}`` or mutate it with
    ``add``/``discard`` keep working unchanged.
    """

    def allows(self, client: str) -> bool:
        return client in self

    def authorize(self, client: str) -> None:
        self.add(client)

    def retract(self, client: str) -> None:
        self.discard(client)


class NamespaceWriters(AccessPolicy):
    """Authorise every id starting with one of the given prefixes.

    Resident memory is O(prefixes + exceptions), not O(writers): a load
    harness admitting ``load:w000000`` … ``load:w999999`` holds one prefix.
    Explicit grants outside the namespaces land in ``extra``; retractions
    land in the exact ``denied`` set, which always wins.
    """

    def __init__(
        self,
        prefixes: Union[str, Iterable[str]],
        *,
        extra: Iterable[str] = (),
        denied: Iterable[str] = (),
    ) -> None:
        if isinstance(prefixes, str):
            prefixes = (prefixes,)
        self.prefixes: tuple[str, ...] = tuple(prefixes)
        self.extra: set[str] = set(extra)
        self.denied: set[str] = set(denied)

    def allows(self, client: str) -> bool:
        if client in self.denied:
            return False
        if client in self.extra:
            return True
        return bool(self.prefixes) and client.startswith(self.prefixes)

    def authorize(self, client: str) -> None:
        self.denied.discard(client)
        if not (self.prefixes and client.startswith(self.prefixes)):
            self.extra.add(client)

    def retract(self, client: str) -> None:
        self.extra.discard(client)
        self.denied.add(client)

    def __repr__(self) -> str:
        return (
            f"NamespaceWriters(prefixes={self.prefixes!r}, "
            f"extra={len(self.extra)}, denied={len(self.denied)})"
        )


class PredicateWriters(AccessPolicy):
    """Authorise by arbitrary predicate, with exact grant/denial overrides."""

    def __init__(self, predicate: Callable[[str], bool]) -> None:
        self.predicate = predicate
        self.extra: set[str] = set()
        self.denied: set[str] = set()

    def allows(self, client: str) -> bool:
        if client in self.denied:
            return False
        if client in self.extra:
            return True
        return bool(self.predicate(client))

    def authorize(self, client: str) -> None:
        self.denied.discard(client)
        self.extra.add(client)

    def retract(self, client: str) -> None:
        self.extra.discard(client)
        self.denied.add(client)


class Variant(str, enum.Enum):
    """The four protocol variants, shared by the cluster, benchmarks, CLI.

    A ``str`` subclass, so existing comparisons against the literal strings
    (``options.variant == "strong"``) keep working, and :meth:`coerce`
    accepts either form — the one place variant spelling is validated.
    """

    BASE = "base"
    OPTIMIZED = "optimized"
    STRONG = "strong"
    FASTPATH = "fastpath"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def coerce(cls, value: Union[str, "Variant"]) -> "Variant":
        """Normalise a variant name; raises ``QuorumConfigError`` if unknown."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise QuorumConfigError(
                f"unknown variant {value!r}; expected one of "
                f"{tuple(v.value for v in cls)}"
            ) from None


@dataclass
class SystemConfig:
    """Everything a node needs to participate in one BFT-BC deployment.

    Attributes:
        quorums: the (n, f, |Q|) quorum system.
        registry: the simulated PKI (key derivation + revocation).
        scheme: signature backend used for all authenticated statements.
        strong: enable the §7 variant (PREPARE carries a justify write
            certificate; phase-1 replies carry timestamp vouches).
        background_signing: replicas pre-sign phase-3 (WRITE-REPLY)
            statements at prepare time so the signature is off the write
            path, per §3.3.2.
        gc_plist: replicas prune prepare-list entries using piggybacked
            write certificates, per §3.3.1.
        strict_stop: replicas additionally reject requests whose *signer*
            has been revoked (the stronger stop notion of §4.1.1 where even
            replays are discarded).  Off by default, as in the paper.
        piggyback_write_certs: clients attach their latest write certificate
            to READ / READ-TS requests so replicas can prune their prepare
            lists sooner — §3.3.1's optional speed-up.
        prefer_quorum: clients send each phase's request to a preferred
            quorum of 2f+1 replicas first, expanding to the full group only
            on retransmission.  This is the messaging discipline §3.3.1's
            O(|Q|) message count assumes ("three RPCs to a quorum of
            replicas"); off by default because broadcasting to all 3f+1 is
            more robust to slow replicas.
        authorized_writers: the write-authorisation rule.  ``None``
            authorises every registered client.  Accepts a plain ``set`` /
            ``frozenset`` (the classic ACL), an :class:`AccessPolicy`
            (explicit, namespace, or predicate), or a bare callable
            ``client_id -> bool``.
        client_state_budget: optional per-replica budget for per-client
            protocol state (``plist``/``optlist``/``fastc``); inactive
            clients spill to the WAL-backed store and rehydrate on demand.
            ``None`` keeps every entry resident (the classic behaviour).
        verification_cache: enable the memoizing verification pipeline
            (:mod:`repro.core.verification`); disable for the uncached
            ablation arm of experiment E4d.
        verifier: the shared :class:`~repro.core.verification.Verifier`
            every role verifies through.  Built automatically; rebuilt by
            ``dataclasses.replace`` whenever the scheme is swapped (e.g. the
            multi-object scoped schemes), so caches never cross schemes.
    """

    quorums: QuorumSystem
    registry: KeyRegistry
    scheme: SignatureScheme
    strong: bool = False
    background_signing: bool = False
    gc_plist: bool = True
    strict_stop: bool = False
    piggyback_write_certs: bool = False
    prefer_quorum: bool = False
    authorized_writers: Optional[
        Union[AccessPolicy, set[str], frozenset[str], Callable[[str], bool]]
    ] = field(default=None)
    client_state_budget: Optional[ClientStateBudget] = None
    verification_cache: bool = True
    verifier: Optional[Verifier] = None
    #: Pairwise MAC authenticator for the fast path's signature-free
    #: messages.  Built automatically from the registry; shared by every
    #: node of the deployment (and preserved by ``dataclasses.replace``)
    #: so session keys are derived once.
    authenticator: Optional[MacAuthenticator] = None

    def __post_init__(self) -> None:
        if self.verifier is None or self.verifier.scheme is not self.scheme:
            self.verifier = Verifier(
                self.scheme, self.quorums, enabled=self.verification_cache
            )
        if self.authenticator is None:
            self.authenticator = MacAuthenticator(self.registry)

    @property
    def f(self) -> int:
        return self.quorums.f

    @property
    def n(self) -> int:
        return self.quorums.n

    @property
    def quorum_size(self) -> int:
        return self.quorums.quorum_size

    def is_authorized_writer(self, client: str) -> bool:
        """Authorisation check used by replicas on signed client requests.

        Every request path — base client, replica, fast path, shard router —
        funnels through here, so swapping the policy object changes the rule
        everywhere at once.
        """
        if not self.registry.is_registered(client):
            return False
        policy = self.authorized_writers
        if policy is None:
            return True
        if isinstance(policy, AccessPolicy):
            return policy.allows(client)
        if isinstance(policy, (set, frozenset)):
            return client in policy
        if callable(policy):
            return bool(policy(client))
        return client in policy

    def authorize_writer(self, client: str) -> None:
        if self.authorized_writers is None:
            self.authorized_writers = ExplicitWriters()
        policy = self.authorized_writers
        if isinstance(policy, AccessPolicy):
            policy.authorize(client)
        elif isinstance(policy, set):
            policy.add(client)
        else:
            raise QuorumConfigError(
                "cannot grant into a read-only writer policy "
                f"({type(policy).__name__}); use an AccessPolicy"
            )

    def revoke_writer(self, client: str) -> None:
        """Administrative stop: revoke the key and retract write access."""
        self.registry.revoke(client)
        policy = self.authorized_writers
        if isinstance(policy, AccessPolicy):
            policy.retract(client)
        elif isinstance(policy, set):
            policy.discard(client)


def make_system(
    f: int = 1,
    *,
    scheme: str = "hmac",
    seed: bytes = b"repro-default-seed",
    quorums: Optional[QuorumSystem] = None,
    strong: bool = False,
    background_signing: bool = False,
    gc_plist: bool = True,
    strict_stop: bool = False,
    piggyback_write_certs: bool = False,
    prefer_quorum: bool = False,
    verification_cache: bool = True,
    authorized_writers: Optional[
        Union[AccessPolicy, set[str], frozenset[str], Callable[[str], bool]]
    ] = None,
    client_state_budget: Optional[ClientStateBudget] = None,
    secret_cache: Optional[int] = None,
) -> SystemConfig:
    """Build a ready-to-use configuration with registered replica keys.

    Args:
        f: fault threshold; defaults to the paper's 3f+1 quorum system.
        scheme: ``"hmac"`` (fast PKI simulation) or ``"rsa"`` (textbook
            RSA-FDH with public-key verification).
        seed: master seed for deterministic key derivation.
        quorums: override the quorum system (e.g. for Phalanx baselines).
        secret_cache: capacity of the registry's derived-secret LRU;
            ``None`` keeps the :class:`~repro.crypto.keys.KeyRegistry`
            default.  The load experiments size this per arm (tiny for the
            budgeted run, effectively unbounded for the baseline).

    Returns:
        A :class:`SystemConfig` with all replica keys already registered;
        clients register via ``config.registry.register(client_id)``.
    """
    quorum_system = quorums if quorums is not None else QuorumSystem.bft_bc(f)
    if secret_cache is None:
        registry = KeyRegistry(master_seed=seed)
    else:
        registry = KeyRegistry(master_seed=seed, secret_cache=secret_cache)
    if scheme == "hmac":
        signature_scheme: SignatureScheme = HmacSignatureScheme(registry)
    elif scheme == "rsa":
        signature_scheme = RsaSignatureScheme(registry)
    else:
        raise QuorumConfigError(f"unknown signature scheme {scheme!r}")
    for rid in quorum_system.replica_ids:
        registry.register(rid)
    return SystemConfig(
        quorums=quorum_system,
        registry=registry,
        scheme=signature_scheme,
        strong=strong,
        background_signing=background_signing,
        gc_plist=gc_plist,
        strict_stop=strict_stop,
        piggyback_write_certs=piggyback_write_certs,
        prefer_quorum=prefer_quorum,
        verification_cache=verification_cache,
        authorized_writers=authorized_writers,
        client_state_budget=client_state_budget,
    )
