"""Adversaries: Byzantine clients and replicas.

The client attacks implement the four misbehaviours enumerated in §3.2;
the replica behaviours cover crash, staleness, collusion, and fabrication.
BQS-specific attacks demonstrate that the same misbehaviours succeed against
the unprotected baseline.
"""

from repro.byzantine.bqs_attacks import (
    BqsEquivocationAttack,
    BqsTimestampExhaustionAttack,
)
from repro.byzantine.phalanx_attacks import (
    PhalanxEquivocationAttack,
    PhalanxTimestampExhaustionAttack,
)
from repro.byzantine.clients import (
    CollusionChainAttack,
    ByzantineActor,
    CapturedWrite,
    Colluder,
    EquivocationAttack,
    LurkingWriteAttack,
    OptimizedLurkingWriteAttack,
    PartialWriteAttack,
    PrepareOnlyWriteOperation,
    TimestampExhaustionAttack,
)
from repro.byzantine.replicas import (
    CorruptingReplica,
    DelayingReplica,
    TwoFacedReplica,
    CrashedReplica,
    ForgingReplica,
    PromiscuousReplica,
    SilentOptimizedReplica,
    StaleReplica,
)

__all__ = [
    "ByzantineActor",
    "CapturedWrite",
    "PrepareOnlyWriteOperation",
    "LurkingWriteAttack",
    "OptimizedLurkingWriteAttack",
    "EquivocationAttack",
    "PartialWriteAttack",
    "TimestampExhaustionAttack",
    "Colluder",
    "CollusionChainAttack",
    "CrashedReplica",
    "SilentOptimizedReplica",
    "StaleReplica",
    "PromiscuousReplica",
    "CorruptingReplica",
    "ForgingReplica",
    "DelayingReplica",
    "TwoFacedReplica",
    "BqsEquivocationAttack",
    "BqsTimestampExhaustionAttack",
    "PhalanxEquivocationAttack",
    "PhalanxTimestampExhaustionAttack",
]
