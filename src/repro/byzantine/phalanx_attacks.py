"""Byzantine-client attacks against the Phalanx baseline.

Phalanx's echo certificates stop equivocation (one hash per (client,
timestamp)), but nothing ties a proposed timestamp to any completed state:
the replica echoes whatever fresh (ts, h) the client proposes.  A Byzantine
client can therefore burn the timestamp space in a single round — the gap
the "non-skipping timestamps" line of work (Bazzi & Ding [2], Cachin &
Tessaro [3], §8) was created to close, and which BFT-BC's
successor-of-a-certificate rule closes structurally.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.messages import (
    PhxEchoReply,
    PhxEchoRequest,
    PhxWriteReply,
    PhxWriteRequest,
)
from repro.baselines.statements import (
    phx_echo_request_statement,
    phx_echo_statement,
    phx_write_request_statement,
)
from repro.core.messages import Message
from repro.core.timestamp import Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.nonces import NonceSource

__all__ = ["PhalanxTimestampExhaustionAttack", "PhalanxEquivocationAttack"]

ATTEMPT_TIMEOUT = 2.0


class _PhalanxActor:
    """Raw actor for a Phalanx BaselineCluster."""

    def __init__(self, cluster, name: str) -> None:
        self.cluster = cluster
        self.config = cluster.config
        self.network = cluster.network
        self.scheduler = cluster.scheduler
        self.node_id = f"client:{name}"
        credential = self.config.registry.register(self.node_id)
        self.nonces = NonceSource(self.node_id, secret=credential.secret)
        self.network.register(self.node_id, self.handle_raw)
        self.done = False
        cluster.add_done_check(lambda: self.done)

    def start(self) -> None:
        raise NotImplementedError

    def handle_raw(self, src: str, message: Message) -> None:
        raise NotImplementedError

    def _broadcast(self, message: Message) -> None:
        for dest in self.config.quorums.replica_ids:
            self.network.send(self.node_id, dest, message)

    def _finish(self) -> None:
        self.done = True

    def sign(self, statement: Any):
        return self.config.scheme.sign_statement(self.node_id, statement)


class PhalanxTimestampExhaustionAttack(_PhalanxActor):
    """Echo-then-write a value at an enormous timestamp.

    Phalanx replicas echo any fresh (ts, hash) pair, so the proof for
    ``ts = 10^15`` assembles normally and the write installs everywhere —
    the timestamp space is burned in one round trip.
    """

    HUGE = 10**15

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.value = (self.node_id, 1, "huge")
        self.ts = Timestamp(val=self.HUGE, client_id=self.node_id)
        self.echo_sigs: dict[str, Any] = {}
        self.write_acks: set[str] = set()
        self._echo_request: Optional[PhxEchoRequest] = None
        self._write_request: Optional[PhxWriteRequest] = None

    def start(self) -> None:
        vh = hash_value(self.value)
        self._echo_request = PhxEchoRequest(
            ts=self.ts,
            value_hash=vh,
            signature=self.sign(phx_echo_request_statement(self.ts, vh)),
        )
        self._broadcast(self._echo_request)
        self.scheduler.call_later(ATTEMPT_TIMEOUT, self._finish)
        self.scheduler.call_later(0.05, self._retransmit)

    def _retransmit(self) -> None:
        if self.done:
            return
        if self._write_request is None and self._echo_request is not None:
            self._broadcast(self._echo_request)
        elif self._write_request is not None:
            for dest in self.config.quorums.replica_ids:
                if dest not in self.write_acks:
                    self.network.send(self.node_id, dest, self._write_request)
        self.scheduler.call_later(0.05, self._retransmit)

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done:
            return
        if isinstance(message, PhxEchoReply) and message.ts == self.ts:
            statement = phx_echo_statement(message.ts, message.value_hash)
            if message.signature.signer == src and self.config.scheme.verify_statement(
                message.signature, statement
            ):
                self.echo_sigs[src] = message.signature
                if (
                    len(self.echo_sigs) >= self.config.quorum_size
                    and self._write_request is None
                ):
                    self._write_request = PhxWriteRequest(
                        value=self.value,
                        ts=self.ts,
                        echo_sigs=tuple(self.echo_sigs.values()),
                        signature=self.sign(
                            phx_write_request_statement(self.value, self.ts)
                        ),
                    )
                    self._broadcast(self._write_request)
        elif isinstance(message, PhxWriteReply) and message.ts == self.ts:
            self.write_acks.add(src)
            if len(self.write_acks) >= self.config.quorum_size:
                self._finish()

    @property
    def succeeded(self) -> bool:
        return len(self.write_acks) >= self.config.quorum_size


class PhalanxEquivocationAttack(_PhalanxActor):
    """Try to obtain echo proofs for two values at one timestamp.

    This is the attack Phalanx *does* stop: each correct replica's echo log
    admits one hash per (client, ts), and quorums of 3f+1 out of 4f+1
    intersect in 2f+1 > 2f replicas, so the two proofs cannot both exist.
    """

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.ts = Timestamp(val=1, client_id=self.node_id)
        self.values = {
            "A": (self.node_id, 1, "A"),
            "B": (self.node_id, 1, "B"),
        }
        self.sigs: dict[str, dict[str, Any]] = {"A": {}, "B": {}}
        self.proofs: set[str] = set()
        self._requests: dict[str, PhxEchoRequest] = {}

    def start(self) -> None:
        replicas = self.config.quorums.replica_ids
        half = len(replicas) // 2 + 1
        for tag, value in self.values.items():
            vh = hash_value(value)
            self._requests[tag] = PhxEchoRequest(
                ts=self.ts,
                value_hash=vh,
                signature=self.sign(phx_echo_request_statement(self.ts, vh)),
            )
        for dest in replicas[:half]:
            self.network.send(self.node_id, dest, self._requests["A"])
        for dest in replicas[half:]:
            self.network.send(self.node_id, dest, self._requests["B"])
        self.scheduler.call_later(0.05, self._cross_send)
        self.scheduler.call_later(ATTEMPT_TIMEOUT, self._finish)

    def _cross_send(self) -> None:
        if self.done:
            return
        for tag, request in self._requests.items():
            for dest in self.config.quorums.replica_ids:
                if dest not in self.sigs[tag]:
                    self.network.send(self.node_id, dest, request)
        self.scheduler.call_later(0.05, self._cross_send)

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done or not isinstance(message, PhxEchoReply):
            return
        if message.ts != self.ts or message.signature.signer != src:
            return
        for tag, value in self.values.items():
            if message.value_hash == hash_value(value):
                statement = phx_echo_statement(message.ts, message.value_hash)
                if self.config.scheme.verify_statement(message.signature, statement):
                    self.sigs[tag][src] = message.signature
                    if len(self.sigs[tag]) >= self.config.quorum_size:
                        self.proofs.add(tag)
        if len(self.proofs) == 2:
            self._finish()

    @property
    def proofs_obtained(self) -> int:
        return len(self.proofs)
