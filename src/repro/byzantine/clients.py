"""Byzantine client behaviours (§3.2's misbehaviour catalogue).

The paper lists four things a Byzantine client may try:

1. write different values under the same timestamp (equivocation),
2. carry out the protocol only partially (e.g. install at one replica),
3. choose a huge timestamp to exhaust the timestamp space,
4. hoard signed writes and hand them to a *colluder* who replays them after
   the client has been removed (lurking writes).

Each attack here is a raw network actor: it holds its own (legitimately
registered) key, speaks the real wire protocol, and is free to deviate from
the client state machines in any way that does not require forging another
node's signature.  Attacks expose what they achieved (certificates obtained,
hoard size, acks collected) so experiments can measure the protocol's
resistance quantitatively.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    FastWriteReply,
    FastWriteRequest,
    Message,
    PrepareReply,
    PrepareRequest,
    ReadTsPrepReply,
    ReadTsPrepRequest,
    ReadTsReply,
    ReadTsRequest,
    WriteReply,
    WriteRequest,
)
from repro.core.fast_operations import FastWriteOperation
from repro.core.operations import Operation, Send, WriteOperation
from repro.core.optimized_operations import OptimizedWriteOperation
from repro.core.statements import (
    prepare_reply_statement,
    prepare_request_statement,
    read_ts_prep_reply_statement,
    read_ts_prep_request_statement,
    read_ts_reply_statement,
    write_request_statement,
)
from repro.core.timestamp import Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.nonces import NonceSource
from repro.crypto.signatures import Signature
from repro.errors import KeyRevokedError

__all__ = [
    "ByzantineActor",
    "CapturedWrite",
    "PrepareOnlyWriteOperation",
    "LurkingWriteAttack",
    "OptimizedLurkingWriteAttack",
    "CapturedFastWrite",
    "FastLurkingWriteAttack",
    "EquivocationAttack",
    "PartialWriteAttack",
    "TimestampExhaustionAttack",
    "Colluder",
    "CollusionChainAttack",
]

#: Virtual-time budget an attack spends waiting for replies that correct
#: replicas will never send, before concluding the attempt failed.
ATTEMPT_TIMEOUT = 2.0

RETRANSMIT_INTERVAL = 0.05


class ByzantineActor:
    """Base class: a raw node wired into a cluster's network.

    Subclasses implement :meth:`start` and drive either hand-rolled message
    exchanges or reused :class:`~repro.core.operations.Operation` state
    machines via :meth:`_run_op`.
    """

    def __init__(self, cluster, name: str) -> None:
        self.cluster = cluster
        self.config: SystemConfig = cluster.config
        self.network = cluster.network
        self.scheduler = cluster.scheduler
        self.node_id = f"client:{name}"
        credential = self.config.registry.register(self.node_id)
        self.nonces = NonceSource(self.node_id, secret=credential.secret)
        self.network.register(self.node_id, self._on_message)
        cluster.add_done_check(lambda: self.done)
        self.done = False
        self._op: Optional[Operation] = None
        self._op_callback: Optional[Callable[[Operation], None]] = None
        self._retransmit_handle = None
        self._deadline_handle = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        self.done = True
        self._cancel_timers()

    def stop(self) -> None:
        """Administrative removal: revoke the key and record ``<c : stop>``."""
        self.cluster.stop_client(self.node_id)

    def _cancel_timers(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
            self._retransmit_handle = None
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None

    # -- plumbing -----------------------------------------------------------------

    def _send_all(self, sends: list[Send]) -> None:
        for send in sends:
            self.network.send(self.node_id, send.dest, send.message)

    def _broadcast(self, message: Message) -> None:
        for dest in self.config.quorums.replica_ids:
            self.network.send(self.node_id, dest, message)

    def _on_message(self, src: str, message: Message) -> None:
        if self._op is not None and not self._op.done:
            self._send_all(self._op.on_message(src, message))
            if self._op.done:
                self._op_finished()
        else:
            self.handle_raw(src, message)

    def handle_raw(self, src: str, message: Message) -> None:
        """Hook for attacks that exchange messages outside an Operation."""

    # -- running reusable operations ------------------------------------------

    def _run_op(
        self,
        op: Operation,
        callback: Callable[[Operation], None],
        *,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> None:
        self._op = op
        self._op_callback = callback
        self._send_all(op.start())
        self._arm_retransmit()
        if timeout is not None:
            self._deadline_handle = self.scheduler.call_later(
                timeout, lambda: self._op_timed_out(on_timeout)
            )

    def _op_finished(self) -> None:
        self._cancel_timers()
        op, callback = self._op, self._op_callback
        self._op = None
        self._op_callback = None
        assert op is not None and callback is not None
        callback(op)

    def _op_timed_out(self, on_timeout: Optional[Callable[[], None]]) -> None:
        if self._op is None or self._op.done:
            return
        self._cancel_timers()
        self._op = None
        self._op_callback = None
        if on_timeout is not None:
            on_timeout()

    def _arm_retransmit(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
        self._retransmit_handle = self.scheduler.call_later(
            RETRANSMIT_INTERVAL, self._retransmit
        )

    def _retransmit(self) -> None:
        if self._op is None or self._op.done:
            return
        self._send_all(self._op.on_retransmit())
        if self._op is not None and not self._op.done:
            self._arm_retransmit()
        elif self._op is not None and self._op.done:
            self._op_finished()

    # -- signing (legitimate, with our own key) ---------------------------------

    def sign(self, statement: Any) -> Signature:
        return self.config.scheme.sign_statement(self.node_id, statement)

    def make_write_request(
        self, value: Any, prepare_cert: PrepareCertificate
    ) -> WriteRequest:
        statement = write_request_statement(value, prepare_cert.to_wire())
        return WriteRequest(
            value=value, prepare_cert=prepare_cert, signature=self.sign(statement)
        )


class CapturedWrite:
    """A prepared-but-unlaunched write: the lurking-write payload."""

    def __init__(self, value: Any, request: WriteRequest) -> None:
        self.value = value
        self.request = request

    @property
    def ts(self) -> Timestamp:
        return self.request.prepare_cert.ts


class PrepareOnlyWriteOperation(WriteOperation):
    """Runs phases 1–2 of a legitimate write, then *keeps* the prepare
    certificate instead of performing phase 3."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.captured_cert: Optional[PrepareCertificate] = None

    def _begin_write(self, prepare_cert: PrepareCertificate) -> list[Send]:
        self.captured_cert = prepare_cert
        return self._finish(None)


class _PrepareOnlyOptimizedWrite(OptimizedWriteOperation):
    """Optimized write that stops after obtaining the prepare certificate,
    also retaining the phase-1 replies (their stored certificates are needed
    to craft a follow-up explicit PREPARE)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.captured_cert: Optional[PrepareCertificate] = None
        self.phase1_certs: list[PrepareCertificate] = []

    def _validate_read_ts_prep_reply(self, sender, message):
        reply = super()._validate_read_ts_prep_reply(sender, message)
        if reply is not None:
            self.phase1_certs.append(reply.cert)
        return reply

    def _begin_write(self, prepare_cert: PrepareCertificate) -> list[Send]:
        self.captured_cert = prepare_cert
        return self._finish(None)


class LurkingWriteAttack(ByzantineActor):
    """Issue-4 attack against the base protocol.

    The client legitimately completes ``warmup`` writes, then prepares one
    final write and withholds phase 3 (the hoard).  It then makes
    ``extra_attempts`` attempts to prepare *further* writes without
    completing the hoarded one — each should be refused by correct replicas
    (prepare-list conflict), demonstrating Lemma 1(2): at most one lurking
    write.
    """

    def __init__(
        self, cluster, name: str, *, warmup: int = 1, extra_attempts: int = 2
    ) -> None:
        super().__init__(cluster, name)
        self.warmup = warmup
        self.extra_attempts = extra_attempts
        self.hoard: list[CapturedWrite] = []
        self.failed_attempts = 0
        self.write_cert: Optional[WriteCertificate] = None
        self._seq = 0

    def _value(self) -> tuple:
        self._seq += 1
        return (self.node_id, self._seq, "lurking")

    def start(self) -> None:
        self._do_warmup(self.warmup)

    def _do_warmup(self, remaining: int) -> None:
        if remaining == 0:
            self._capture()
            return
        op = WriteOperation(
            self.node_id, self.config, self._value(), self.nonces.next(),
            self.write_cert,
        )
        def after(op_done: Operation) -> None:
            assert isinstance(op_done, WriteOperation)
            self.write_cert = op_done.new_write_cert
            self._do_warmup(remaining - 1)
        self._run_op(op, after)

    def _capture(self) -> None:
        op = PrepareOnlyWriteOperation(
            self.node_id, self.config, self._value(), self.nonces.next(),
            self.write_cert,
        )
        def after(op_done: Operation) -> None:
            assert isinstance(op_done, PrepareOnlyWriteOperation)
            assert op_done.captured_cert is not None
            self.hoard.append(
                CapturedWrite(
                    op_done.value,
                    self.make_write_request(op_done.value, op_done.captured_cert),
                )
            )
            self._extra_attempt(self.extra_attempts)
        self._run_op(op, after)

    def _extra_attempt(self, remaining: int) -> None:
        if remaining == 0:
            self._finish()
            return
        # Without the write certificate for the hoarded write, correct
        # replicas refuse this prepare; the operation times out.
        op = PrepareOnlyWriteOperation(
            self.node_id, self.config, self._value(), self.nonces.next(),
            self.write_cert,  # deliberately stale: hoarded write not admitted
        )
        def after(op_done: Operation) -> None:
            # If this ever succeeds the protocol is broken; record it.
            assert isinstance(op_done, PrepareOnlyWriteOperation)
            if op_done.captured_cert is not None:
                self.hoard.append(
                    CapturedWrite(
                        op_done.value,
                        self.make_write_request(op_done.value, op_done.captured_cert),
                    )
                )
            self._extra_attempt(remaining - 1)
        def timed_out() -> None:
            self.failed_attempts += 1
            self._extra_attempt(remaining - 1)
        self._run_op(op, after, timeout=ATTEMPT_TIMEOUT, on_timeout=timed_out)


class OptimizedLurkingWriteAttack(ByzantineActor):
    """§6.3's double-hoard: exploit the two prepare lists to obtain *two*
    prepare certificates (same timestamp, different values) and hoard both.
    """

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.hoard: list[CapturedWrite] = []
        self._seq = 0
        self._p_max: Optional[PrepareCertificate] = None
        self._second_value: Optional[tuple] = None
        self._second_hash: Optional[bytes] = None
        self._target_ts: Optional[Timestamp] = None
        self._prepare_sigs: dict[str, Signature] = {}
        self._prepare_request: Optional[PrepareRequest] = None

    def _value(self, tag: str) -> tuple:
        self._seq += 1
        return (self.node_id, self._seq, tag)

    def start(self) -> None:
        # Step 1: fast-path prepare for value A via the optlist.
        op = _PrepareOnlyOptimizedWrite(
            self.node_id, self.config, self._value("A"), self.nonces.next(), None
        )
        def after(op_done: Operation) -> None:
            assert isinstance(op_done, _PrepareOnlyOptimizedWrite)
            if op_done.captured_cert is None:
                self._finish()
                return
            self.hoard.append(
                CapturedWrite(
                    op_done.value,
                    self.make_write_request(op_done.value, op_done.captured_cert),
                )
            )
            self._p_max = max(op_done.phase1_certs, key=lambda c: c.ts)
            self._target_ts = op_done.captured_cert.ts
            self._second_prepare()
        self._run_op(op, after)

    def _second_prepare(self) -> None:
        # Step 2: an explicit PREPARE for value B at the same timestamp goes
        # into the *normal* prepare list, which the merged phase left empty.
        assert self._p_max is not None and self._target_ts is not None
        self._second_value = self._value("B")
        self._second_hash = hash_value(self._second_value)
        statement = prepare_request_statement(
            self._p_max.to_wire(), self._target_ts, self._second_hash, None, None
        )
        self._prepare_request = PrepareRequest(
            prev_cert=self._p_max,
            ts=self._target_ts,
            value_hash=self._second_hash,
            write_cert=None,
            justify_cert=None,
            signature=self.sign(statement),
        )
        self._broadcast(self._prepare_request)
        self._retransmit_handle = self.scheduler.call_later(
            RETRANSMIT_INTERVAL, self._retransmit_prepare
        )
        self._deadline_handle = self.scheduler.call_later(
            ATTEMPT_TIMEOUT, self._finish
        )

    def _retransmit_prepare(self) -> None:
        if self.done or self._prepare_request is None:
            return
        for dest in self.config.quorums.replica_ids:
            if dest not in self._prepare_sigs:
                self.network.send(self.node_id, dest, self._prepare_request)
        self._retransmit_handle = self.scheduler.call_later(
            RETRANSMIT_INTERVAL, self._retransmit_prepare
        )

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done or self._target_ts is None or self._second_hash is None:
            return
        if not isinstance(message, PrepareReply):
            return
        if message.ts != self._target_ts or message.value_hash != self._second_hash:
            return
        if message.signature.signer != src:
            return
        statement = prepare_reply_statement(message.ts, message.value_hash)
        if not self.config.scheme.verify_statement(message.signature, statement):
            return
        self._prepare_sigs[src] = message.signature
        if len(self._prepare_sigs) >= self.config.quorum_size:
            cert = PrepareCertificate(
                ts=self._target_ts,
                value_hash=self._second_hash,
                signatures=tuple(self._prepare_sigs.values()),
            )
            assert self._second_value is not None
            self.hoard.append(
                CapturedWrite(
                    self._second_value,
                    self.make_write_request(self._second_value, cert),
                )
            )
            self._finish()


class CapturedFastWrite(CapturedWrite):
    """A hoarded FAST-WRITE request.

    Its MAC vector is keyed by the *embedded* client field, not the sender's
    network identity, so a colluder can replay it verbatim after the
    originator's key is revoked — the fast-path analogue of replaying a
    hoarded signed WRITE.
    """

    @property
    def ts(self) -> Timestamp:
        assert isinstance(self.request, FastWriteRequest)
        return self.request.ts


class _PrepareOnlyFastWrite(FastWriteOperation):
    """Fast write that stops once the FAST-PREP quorum agrees: the
    FAST-WRITE request (carrying the proof of writing) is captured instead
    of sent.  If the operation falls back to the signed protocol, the
    prepare certificate is captured instead, as in the optimized attack."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.captured_request: Optional[FastWriteRequest] = None
        self.captured_cert: Optional[PrepareCertificate] = None

    def _begin_fast_write(self, ts: Timestamp) -> list[Send]:
        sends = super()._begin_fast_write(ts)
        if sends:
            message = sends[0].message
            assert isinstance(message, FastWriteRequest)
            self.captured_request = message
        return self._finish(None)

    def _begin_write(self, prepare_cert: PrepareCertificate) -> list[Send]:
        self.captured_cert = prepare_cert
        return self._finish(None)


class FastLurkingWriteAttack(OptimizedLurkingWriteAttack):
    """Double-hoard against the fastpath variant.

    Act one hoards a signature-free FAST-WRITE for value A (fast acks live
    in the optlist).  Act two reads the replicas' prepared certificates via
    READ-TS and issues an explicit signed PREPARE for value B at the *same*
    timestamp, which lands in the still-empty normal prepare list.  The
    fast path must not grant more than the optimized protocol's lurking
    bound of two (Theorem 2 / ``MAX_B["fastpath"]``).
    """

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self._pmax_nonce: Optional[bytes] = None
        self._read_ts_request: Optional[ReadTsRequest] = None
        self._read_ts_certs: dict[str, PrepareCertificate] = {}

    def start(self) -> None:
        op = _PrepareOnlyFastWrite(
            self.node_id, self.config, self._value("A"), self.nonces.next(), None
        )

        def after(op_done: Operation) -> None:
            assert isinstance(op_done, _PrepareOnlyFastWrite)
            if op_done.captured_request is not None:
                self.hoard.append(
                    CapturedFastWrite(op_done.value, op_done.captured_request)
                )
                self._target_ts = op_done.captured_request.ts
                self._read_ts_for_pmax()
                return
            if op_done.captured_cert is not None:
                # Fell back to the signed path: hoard the one signed write.
                self.hoard.append(
                    CapturedWrite(
                        op_done.value,
                        self.make_write_request(
                            op_done.value, op_done.captured_cert
                        ),
                    )
                )
            self._finish()

        self._run_op(op, after)

    def _read_ts_for_pmax(self) -> None:
        # Fast prep replies carry no certificates, so learn Pmax the way
        # the fallback does: a plain READ-TS round.
        self._pmax_nonce = self.nonces.next()
        self._read_ts_request = ReadTsRequest(
            nonce=self._pmax_nonce, write_cert=None
        )
        self._broadcast(self._read_ts_request)
        self._retransmit_handle = self.scheduler.call_later(
            RETRANSMIT_INTERVAL, self._retransmit_read_ts
        )
        self._deadline_handle = self.scheduler.call_later(
            ATTEMPT_TIMEOUT, self._finish
        )

    def _retransmit_read_ts(self) -> None:
        if self.done or self._read_ts_request is None:
            return
        for dest in self.config.quorums.replica_ids:
            if dest not in self._read_ts_certs:
                self.network.send(self.node_id, dest, self._read_ts_request)
        self._retransmit_handle = self.scheduler.call_later(
            RETRANSMIT_INTERVAL, self._retransmit_read_ts
        )

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done:
            return
        if (
            self._read_ts_request is not None
            and isinstance(message, ReadTsReply)
            and message.nonce == self._pmax_nonce
        ):
            if message.signature.signer != src:
                return
            statement = read_ts_reply_statement(
                message.cert.to_wire(), message.nonce
            )
            if not self.config.scheme.verify_statement(
                message.signature, statement
            ):
                return
            self._read_ts_certs[src] = message.cert
            if len(self._read_ts_certs) >= self.config.quorum_size:
                self._read_ts_request = None
                self._cancel_timers()
                self._p_max = max(
                    self._read_ts_certs.values(), key=lambda c: c.ts
                )
                self._second_prepare()
            return
        super().handle_raw(src, message)


class EquivocationAttack(ByzantineActor):
    """Issue-1 attack: try to get prepare certificates for two different
    values under the same timestamp by splitting the replica group.

    Records, per value, how many prepare signatures were obtained.  Against
    correct replicas at most one value can ever reach a quorum (Lemma 1(3)).
    """

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.value_a = (self.node_id, 1, "A")
        self.value_b = (self.node_id, 1, "B")
        self.signatures: dict[str, dict[str, Signature]] = {"A": {}, "B": {}}
        self.certificates: dict[str, PrepareCertificate] = {}
        self._target_ts: Optional[Timestamp] = None
        self._hashes = {
            "A": hash_value(self.value_a),
            "B": hash_value(self.value_b),
        }
        self._read_nonce: Optional[bytes] = None
        self._read_replies: dict[str, ReadTsReply] = {}
        self._requests: dict[str, PrepareRequest] = {}

    def start(self) -> None:
        self._read_nonce = self.nonces.next()
        self._broadcast(ReadTsRequest(nonce=self._read_nonce))
        self._deadline_handle = self.scheduler.call_later(
            ATTEMPT_TIMEOUT, self._finish
        )

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done:
            return
        if isinstance(message, ReadTsReply):
            self._on_read_ts(src, message)
        elif isinstance(message, PrepareReply):
            self._on_prepare_reply(src, message)

    def _on_read_ts(self, src: str, message: ReadTsReply) -> None:
        if self._target_ts is not None or message.nonce != self._read_nonce:
            return
        if src in self._read_replies:
            return
        statement = read_ts_reply_statement(message.cert.to_wire(), message.nonce)
        if not self.config.scheme.verify_statement(message.signature, statement):
            return
        self._read_replies[src] = message
        if len(self._read_replies) >= self.config.quorum_size:
            p_max = max(
                (r.cert for r in self._read_replies.values()), key=lambda c: c.ts
            )
            self._target_ts = p_max.ts.succ(self.node_id)
            self._split_prepare(p_max)

    def _split_prepare(self, p_max: PrepareCertificate) -> None:
        assert self._target_ts is not None
        for tag in ("A", "B"):
            statement = prepare_request_statement(
                p_max.to_wire(), self._target_ts, self._hashes[tag], None, None
            )
            self._requests[tag] = PrepareRequest(
                prev_cert=p_max,
                ts=self._target_ts,
                value_hash=self._hashes[tag],
                write_cert=None,
                justify_cert=None,
                signature=self.sign(statement),
            )
        replicas = self.config.quorums.replica_ids
        half = len(replicas) // 2
        for dest in replicas[:half]:
            self.network.send(self.node_id, dest, self._requests["A"])
        for dest in replicas[half:]:
            self.network.send(self.node_id, dest, self._requests["B"])
        # Then greedily try to top both halves up to a quorum.
        self.scheduler.call_later(RETRANSMIT_INTERVAL, self._cross_send)

    def _cross_send(self) -> None:
        if self.done:
            return
        for tag in ("A", "B"):
            request = self._requests.get(tag)
            if request is None:
                continue
            for dest in self.config.quorums.replica_ids:
                if dest not in self.signatures[tag]:
                    self.network.send(self.node_id, dest, request)
        self.scheduler.call_later(RETRANSMIT_INTERVAL, self._cross_send)

    def _on_prepare_reply(self, src: str, message: PrepareReply) -> None:
        if message.ts != self._target_ts or message.signature.signer != src:
            return
        statement = prepare_reply_statement(message.ts, message.value_hash)
        if not self.config.scheme.verify_statement(message.signature, statement):
            return
        for tag in ("A", "B"):
            if message.value_hash == self._hashes[tag]:
                self.signatures[tag][src] = message.signature
                if (
                    tag not in self.certificates
                    and len(self.signatures[tag]) >= self.config.quorum_size
                ):
                    self.certificates[tag] = PrepareCertificate(
                        ts=self._target_ts,
                        value_hash=self._hashes[tag],
                        signatures=tuple(self.signatures[tag].values()),
                    )
        if len(self.certificates) == 2:
            self._finish()

    @property
    def quorums_reached(self) -> int:
        return len(self.certificates)


class PartialWriteAttack(ByzantineActor):
    """Issue-2 attack: run a legitimate write but install the value at only
    one replica, leaving the system maximally unbalanced."""

    def __init__(self, cluster, name: str, *, target_index: int = 0) -> None:
        super().__init__(cluster, name)
        self.target_index = target_index
        self.value = (self.node_id, 1, "partial")
        self.installed_at: Optional[str] = None
        self._acked = False

    def start(self) -> None:
        op = PrepareOnlyWriteOperation(
            self.node_id, self.config, self.value, self.nonces.next(), None
        )
        def after(op_done: Operation) -> None:
            assert isinstance(op_done, PrepareOnlyWriteOperation)
            assert op_done.captured_cert is not None
            request = self.make_write_request(self.value, op_done.captured_cert)
            target = self.config.quorums.replica_ids[self.target_index]
            self.installed_at = target
            self.network.send(self.node_id, target, request)
            self._deadline_handle = self.scheduler.call_later(0.5, self._finish)
        self._run_op(op, after)

    def handle_raw(self, src: str, message: Message) -> None:
        if isinstance(message, WriteReply) and not self._acked:
            self._acked = True
            self._finish()


class TimestampExhaustionAttack(ByzantineActor):
    """Issue-3 attack: propose an enormous timestamp.

    Against BFT-BC the PREPARE is silently discarded because the timestamp
    is not the successor of the submitted certificate's (Figure 2, phase 2
    step 1), so the attack records zero replies.
    """

    HUGE = 10**15

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.replies = 0
        self._genesis: Optional[PrepareCertificate] = None
        self._read_nonce: Optional[bytes] = None
        self._read_replies: dict[str, ReadTsReply] = {}

    def start(self) -> None:
        self._read_nonce = self.nonces.next()
        self._broadcast(ReadTsRequest(nonce=self._read_nonce))
        self._deadline_handle = self.scheduler.call_later(
            ATTEMPT_TIMEOUT, self._finish
        )

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done:
            return
        if isinstance(message, ReadTsReply):
            if message.nonce != self._read_nonce or src in self._read_replies:
                return
            self._read_replies[src] = message
            if len(self._read_replies) >= self.config.quorum_size:
                self._send_huge_prepare()
        elif isinstance(message, PrepareReply):
            if message.ts.val >= self.HUGE:
                self.replies += 1

    def _send_huge_prepare(self) -> None:
        p_max = max((r.cert for r in self._read_replies.values()), key=lambda c: c.ts)
        huge_ts = Timestamp(val=self.HUGE, client_id=self.node_id)
        value = (self.node_id, 1, "huge")
        statement = prepare_request_statement(
            p_max.to_wire(), huge_ts, hash_value(value), None, None
        )
        request = PrepareRequest(
            prev_cert=p_max,
            ts=huge_ts,
            value_hash=hash_value(value),
            write_cert=None,
            justify_cert=None,
            signature=self.sign(statement),
        )
        self._broadcast(request)


class Colluder(ByzantineActor):
    """A node that replays a stopped client's hoarded signed writes.

    The colluder needs no write authorisation of its own: the hoarded WRITE
    requests carry the (still-verifiable) signature of the stopped client.
    """

    def __init__(self, cluster, name: str, hoard: list[CapturedWrite]) -> None:
        super().__init__(cluster, name)
        self.hoard = list(hoard)
        self.acks: Counter = Counter()
        self._sent = 0

    def start(self) -> None:
        for captured in self.hoard:
            self._broadcast(captured.request)
            self._sent += 1
        # Replay a few times to defeat message loss, then finish.
        self._deadline_handle = self.scheduler.call_later(0.2, self._replay)

    def _replay(self) -> None:
        for captured in self.hoard:
            self._broadcast(captured.request)
        self._deadline_handle = self.scheduler.call_later(0.2, self._finish)

    def handle_raw(self, src: str, message: Message) -> None:
        if isinstance(message, WriteReply):
            self.acks[message.ts.to_wire()] += 1
        elif isinstance(message, FastWriteReply):
            # Replayed FAST-WRITE hoards are acked with MAC'd fast replies.
            self.acks[message.ts.to_wire()] += 1


def sign_after_revocation_fails(actor: ByzantineActor) -> bool:
    """Helper for tests: a stopped client can no longer produce signatures."""
    try:
        actor.sign(("probe",))
    except KeyRevokedError:
        return True
    return False


class CollusionChainAttack(ByzantineActor):
    """§7.2's motivating attack on the base protocol: a set of colluding
    clients chains prepare certificates to hoard writes with *successive*
    timestamps, none of which is ever performed.

    Member ``c_(i+1)`` uses member ``c_i``'s prepare certificate as the
    ``Pmax`` in its own PREPARE — certificates are transferable, so correct
    replicas approve each link (the timestamp is the successor of a valid
    certificate's).  The group thereby leaves ``|C|`` lurking writes whose
    timestamps dominate the next ``|C|`` good-client writes: masking them
    all takes ``|C|`` overwrites, which is why §7 strengthens the protocol
    to require a *justify* write certificate (a completed write) instead.

    Against the strong protocol the chain dies at length one: the second
    member has no write certificate for the first member's timestamp.

    One actor drives the whole group (the members collude, so sharing
    credentials is the model).
    """

    def __init__(self, cluster, leader_name: str, member_names: list[str]) -> None:
        super().__init__(cluster, leader_name)
        self.members = [f"client:{name}" for name in member_names]
        for member in self.members:
            self.config.registry.register(member)
        self.hoard: list[CapturedWrite] = []
        self.refused_links = 0
        self._chain_prev: Optional[PrepareCertificate] = None
        self._justify: Optional[WriteCertificate] = None
        self._member_index = 0
        self._link_ts: Optional[Timestamp] = None
        self._link_hash: Optional[bytes] = None
        self._link_value: Optional[tuple] = None
        self._link_request: Optional[PrepareRequest] = None
        self._link_sigs: dict[str, Signature] = {}
        self._link_deadline = None
        self._read_nonce: Optional[bytes] = None
        self._read_replies: dict[str, ReadTsReply] = {}
        self._read_attempts = 0

    def start(self) -> None:
        self._read_nonce = self.nonces.next()
        self._send_read_ts()

    def _send_read_ts(self) -> None:
        # The read phase needs its own retransmission and deadline: with a
        # Byzantine replica in the quorum system there is no reply slack,
        # so under fair loss a single un-retimed broadcast can starve the
        # attack forever (and with it the cluster's done-check).
        self._read_attempts += 1
        self._broadcast(ReadTsRequest(nonce=self._read_nonce))
        self._deadline_handle = self.scheduler.call_later(
            ATTEMPT_TIMEOUT, self._read_timed_out
        )

    def _read_timed_out(self) -> None:
        self._deadline_handle = None
        if self.done or self._chain_prev is not None:
            return
        if self._read_attempts < 3:
            self._send_read_ts()
            return
        self.refused_links += 1
        self._finish()

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done:
            return
        if isinstance(message, ReadTsReply):
            self._on_read_ts(src, message)
        elif isinstance(message, PrepareReply):
            self._on_prepare_reply(src, message)

    def _on_read_ts(self, src: str, message: ReadTsReply) -> None:
        if self._chain_prev is not None or message.nonce != self._read_nonce:
            return
        if src in self._read_replies or message.signature.signer != src:
            return
        statement = read_ts_reply_statement(message.cert.to_wire(), message.nonce)
        if not self.config.scheme.verify_statement(message.signature, statement):
            return
        self._read_replies[src] = message
        if len(self._read_replies) >= self.config.quorum_size:
            if self._deadline_handle is not None:
                self._deadline_handle.cancel()
                self._deadline_handle = None
            replies = list(self._read_replies.values())
            self._chain_prev = max((r.cert for r in replies), key=lambda c: c.ts)
            if self.config.strong:
                # Vouches for the current (completed) state justify the
                # FIRST link only; later links have nothing to show.
                same = [
                    r for r in replies if r.cert.ts == self._chain_prev.ts
                    and r.ts_vouch is not None
                ]
                if len(same) >= self.config.quorum_size:
                    self._justify = WriteCertificate(
                        ts=self._chain_prev.ts,
                        signatures=tuple(r.ts_vouch for r in same),
                    )
            self._next_link()

    def _next_link(self) -> None:
        if self._member_index >= len(self.members):
            self._finish()
            return
        member = self.members[self._member_index]
        assert self._chain_prev is not None
        self._link_ts = self._chain_prev.ts.succ(member)
        self._link_value = (member, 1, "chained")
        self._link_hash = hash_value(self._link_value)
        statement = prepare_request_statement(
            self._chain_prev.to_wire(),
            self._link_ts,
            self._link_hash,
            None,
            None if self._justify is None else self._justify.to_wire(),
        )
        self._link_request = PrepareRequest(
            prev_cert=self._chain_prev,
            ts=self._link_ts,
            value_hash=self._link_hash,
            write_cert=None,
            justify_cert=self._justify,
            signature=self.config.scheme.sign_statement(member, statement),
        )
        self._link_sigs = {}
        self._broadcast(self._link_request)
        self._link_deadline = self.scheduler.call_later(
            ATTEMPT_TIMEOUT, self._link_failed
        )

    def _link_failed(self) -> None:
        if self.done:
            return
        self.refused_links += 1
        self._finish()

    def _on_prepare_reply(self, src: str, message: PrepareReply) -> None:
        if self._link_ts is None or message.ts != self._link_ts:
            return
        if message.value_hash != self._link_hash or message.signature.signer != src:
            return
        statement = prepare_reply_statement(message.ts, message.value_hash)
        if not self.config.scheme.verify_statement(message.signature, statement):
            return
        self._link_sigs[src] = message.signature
        if len(self._link_sigs) >= self.config.quorum_size:
            if self._link_deadline is not None:
                self._link_deadline.cancel()
                self._link_deadline = None
            cert = PrepareCertificate(
                ts=self._link_ts,
                value_hash=self._link_hash,
                signatures=tuple(self._link_sigs.values()),
            )
            member = self.members[self._member_index]
            statement = write_request_statement(self._link_value, cert.to_wire())
            request = WriteRequest(
                value=self._link_value,
                prepare_cert=cert,
                signature=self.config.scheme.sign_statement(member, statement),
            )
            self.hoard.append(CapturedWrite(self._link_value, request))
            # The next member chains off this certificate: the write that
            # "justifies" its timestamp never happens.
            self._chain_prev = cert
            # A justify certificate for this link's timestamp cannot exist.
            self._justify = None
            self._member_index += 1
            self._next_link()

    def stop_all(self) -> None:
        """Revoke every colluding member (the whole set leaves the system)."""
        for member in self.members:
            if not self.config.registry.is_revoked(member):
                self.config.registry.revoke(member)
                self.cluster.recorder.record_stop(member)
