"""Byzantine replica behaviours.

Up to ``f`` replicas may deviate arbitrarily (§2).  These classes model the
deviations that matter for a quorum register; each is a drop-in replacement
installed via ``ClusterOptions.replica_overrides``.

None of them can forge other nodes' signatures — that is the §2 assumption —
so their power is limited to lying with their *own* key, staying silent, or
replying with stale or fabricated state.
"""

from __future__ import annotations

from typing import Optional

from repro.core.certificates import PrepareCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    Message,
    PrepareReply,
    PrepareRequest,
    ReadReply,
    ReadRequest,
    ReadTsReply,
    ReadTsRequest,
)
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.core.statements import (
    prepare_reply_statement,
    read_reply_statement,
    read_ts_reply_statement,
)
from repro.core.timestamp import Timestamp
from repro.crypto.signatures import Signature

__all__ = [
    "CrashedReplica",
    "SilentOptimizedReplica",
    "StaleReplica",
    "PromiscuousReplica",
    "CorruptingReplica",
    "ForgingReplica",
    "DelayingReplica",
    "TwoFacedReplica",
]


class CrashedReplica(BftBcReplica):
    """Fails benignly: never replies to anything."""

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        self.stats.handled[message.KIND] += 1
        return None


class SilentOptimizedReplica(OptimizedBftBcReplica):
    """Crashed replica for optimized-variant clusters."""

    def handle(self, sender: str, message: Message) -> Optional[Message]:
        self.stats.handled[message.KIND] += 1
        return None


class StaleReplica(BftBcReplica):
    """Processes requests but never installs any write: always serves the
    genesis state.  Models a replica that discards updates."""

    def _should_install(self, cert: PrepareCertificate) -> bool:
        return False


class PromiscuousReplica(BftBcReplica):
    """A colluding replica: signs *any* prepare request without checking the
    timestamp-succession rule or its prepare list.

    This is the strongest help a single replica can give a Byzantine client
    trying to hoard prepare certificates.  Safety survives because a
    certificate needs 2f+1 distinct signers and at most f replicas behave
    like this.
    """

    def _handle_prepare(self, message: PrepareRequest) -> Optional[PrepareReply]:
        signature = self.config.scheme.sign_statement(
            self.node_id,
            prepare_reply_statement(message.ts, message.value_hash),
        )
        return PrepareReply(
            ts=message.ts, value_hash=message.value_hash, signature=signature
        )


class CorruptingReplica(BftBcReplica):
    """Returns a fabricated value (under its genuine stored certificate) on
    reads.  Correct clients reject the reply because the certificate's hash
    does not match the value."""

    def _handle_read(self, message: ReadRequest) -> ReadReply:
        garbage = ("corrupt", self.node_id)
        cert_wire = self.pcert.to_wire()
        signature = self._sign(read_reply_statement(garbage, cert_wire, message.nonce))
        return ReadReply(
            value=garbage,
            cert=self.pcert,
            nonce=message.nonce,
            signature=signature,
            ts_vouch=self._ts_vouch(),
        )


class ForgingReplica(BftBcReplica):
    """Returns a certificate with an absurdly high timestamp whose signatures
    are all produced by *itself* under other replicas' names (forgery).
    Correct clients reject it during certificate validation."""

    def _handle_read_ts(self, message: ReadTsRequest) -> ReadTsReply:
        fake_ts = Timestamp(val=10**9, client_id="client:nobody")
        fake_hash = self.pcert.value_hash
        fake_sigs = tuple(
            Signature(signer=rid, value=b"\x00" * 32)
            for rid in self.config.quorums.replica_ids[: self.config.quorum_size]
        )
        fake_cert = PrepareCertificate(
            ts=fake_ts, value_hash=fake_hash, signatures=fake_sigs
        )
        signature = self._sign(
            read_ts_reply_statement(fake_cert.to_wire(), message.nonce)
        )
        return ReadTsReply(
            cert=fake_cert,
            nonce=message.nonce,
            signature=signature,
            ts_vouch=self._ts_vouch(),
        )


class DelayingReplica(BftBcReplica):
    """Processes requests correctly but lets its node adapter know replies
    should be slow — models a laggard that inflates tail latency without
    being faulty enough to exclude.  Quorum protocols must not wait for it.

    The delay itself is applied by the simulator adapter via the marker
    attribute; the state machine stays correct.
    """

    #: Virtual-time delay the adapter should add to every reply.
    reply_delay = 0.25


class TwoFacedReplica(BftBcReplica):
    """Answers reads with the *previous* value it held for even-numbered
    requesters and the current one for others — a consistency attack on
    readers.  Defeated because every reply carries the certificate that
    vouches for its value: the stale pair (old value, old certificate) is
    simply an old truth, and the reader's quorum + write-back still yield
    atomicity; a *mismatched* pair fails the hash check.
    """

    def __init__(self, node_id: str, config: SystemConfig) -> None:
        super().__init__(node_id, config)
        self._previous: Optional[tuple] = None  # (data, pcert)
        self._flip = 0

    def _should_install(self, cert: PrepareCertificate) -> bool:
        if super()._should_install(cert):
            self._previous = (self.data, self.pcert)
            return True
        return False

    def _handle_read(self, message: ReadRequest) -> ReadReply:
        from repro.core.statements import read_reply_statement

        self._flip += 1
        if self._previous is not None and self._flip % 2 == 0:
            old_data, old_cert = self._previous
            signature = self._sign(
                read_reply_statement(old_data, old_cert.to_wire(), message.nonce)
            )
            return ReadReply(
                value=old_data,
                cert=old_cert,
                nonce=message.nonce,
                signature=signature,
                ts_vouch=self._ts_vouch(),
            )
        return super()._handle_read(message)
