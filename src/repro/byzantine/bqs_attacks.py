"""Byzantine-client attacks against the BQS baseline.

These demonstrate why the paper's protocol exists: the same misbehaviours
that BFT-BC provably neutralises *succeed* against the original BQS register.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.messages import (
    BqsReadTsReply,
    BqsReadTsRequest,
    BqsWriteReply,
    BqsWriteRequest,
)
from repro.baselines.statements import (
    bqs_read_ts_reply_statement,
    bqs_write_statement,
)
from repro.core.messages import Message
from repro.core.timestamp import Timestamp
from repro.crypto.hashing import hash_value
from repro.crypto.nonces import NonceSource

__all__ = ["BqsEquivocationAttack", "BqsTimestampExhaustionAttack"]

ATTEMPT_TIMEOUT = 2.0


class _BqsActor:
    """Raw actor for a :class:`~repro.baselines.runner.BaselineCluster`."""

    def __init__(self, cluster, name: str) -> None:
        self.cluster = cluster
        self.config = cluster.config
        self.network = cluster.network
        self.scheduler = cluster.scheduler
        self.node_id = f"client:{name}"
        credential = self.config.registry.register(self.node_id)
        self.nonces = NonceSource(self.node_id, secret=credential.secret)
        self.network.register(self.node_id, self.handle_raw)
        self.done = False
        cluster.add_done_check(lambda: self.done)

    def start(self) -> None:
        raise NotImplementedError

    def handle_raw(self, src: str, message: Message) -> None:
        raise NotImplementedError

    def _broadcast(self, message: Message) -> None:
        for dest in self.config.quorums.replica_ids:
            self.network.send(self.node_id, dest, message)

    def _finish(self) -> None:
        self.done = True

    def sign(self, statement: Any):
        return self.config.scheme.sign_statement(self.node_id, statement)


class BqsEquivocationAttack(_BqsActor):
    """Write value A to half the replicas and value B to the other half,
    both under the same timestamp.  BQS replicas accept both, splitting the
    register's state and breaking atomicity for good readers."""

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.value_a = (self.node_id, 1, "A")
        self.value_b = (self.node_id, 1, "B")
        self.target_ts: Optional[Timestamp] = None
        self.acks_a: set[str] = set()
        self.acks_b: set[str] = set()
        self._nonce: Optional[bytes] = None
        self._ts_replies: dict[str, Timestamp] = {}
        self._request_a: Optional[BqsWriteRequest] = None
        self._request_b: Optional[BqsWriteRequest] = None

    def start(self) -> None:
        self._nonce = self.nonces.next()
        self._broadcast(BqsReadTsRequest(nonce=self._nonce))
        self.scheduler.call_later(ATTEMPT_TIMEOUT, self._finish)

    def handle_raw(self, src: str, message: Message) -> None:
        if self.done:
            return
        if isinstance(message, BqsReadTsReply):
            self._on_read_ts(src, message)
        elif isinstance(message, BqsWriteReply):
            self._on_write_reply(src, message)

    def _on_read_ts(self, src: str, message: BqsReadTsReply) -> None:
        if self.target_ts is not None or message.nonce != self._nonce:
            return
        statement = bqs_read_ts_reply_statement(message.ts, message.nonce)
        if not self.config.scheme.verify_statement(message.signature, statement):
            return
        self._ts_replies[src] = message.ts
        if len(self._ts_replies) >= self.config.quorum_size:
            max_ts = max(self._ts_replies.values())
            self.target_ts = max_ts.succ(self.node_id)
            self._split_write()

    def _split_write(self) -> None:
        assert self.target_ts is not None
        self._request_a = BqsWriteRequest(
            value=self.value_a,
            ts=self.target_ts,
            writer_sig=self.sign(
                bqs_write_statement(self.target_ts, hash_value(self.value_a))
            ),
        )
        self._request_b = BqsWriteRequest(
            value=self.value_b,
            ts=self.target_ts,
            writer_sig=self.sign(
                bqs_write_statement(self.target_ts, hash_value(self.value_b))
            ),
        )
        self._send_split()

    def _send_split(self) -> None:
        if self.done:
            return
        replicas = self.config.quorums.replica_ids
        half = len(replicas) // 2 + 1
        for dest in replicas[:half]:
            if dest not in self.acks_a:
                self.network.send(self.node_id, dest, self._request_a)
        for dest in replicas[half:]:
            if dest not in self.acks_b:
                self.network.send(self.node_id, dest, self._request_b)
        if not self._complete():
            self.scheduler.call_later(0.05, self._send_split)

    def _complete(self) -> bool:
        replicas = self.config.quorums.replica_ids
        half = len(replicas) // 2 + 1
        done = len(self.acks_a) >= len(replicas[:half]) and len(self.acks_b) >= len(
            replicas[half:]
        )
        if done and not self.done:
            self._finish()
        return done

    def _on_write_reply(self, src: str, message: BqsWriteReply) -> None:
        if message.ts != self.target_ts:
            return
        replicas = self.config.quorums.replica_ids
        half = len(replicas) // 2 + 1
        if src in replicas[:half]:
            self.acks_a.add(src)
        else:
            self.acks_b.add(src)
        self._complete()


class BqsTimestampExhaustionAttack(_BqsActor):
    """Write with an enormous timestamp.  BQS replicas accept it, burning
    the timestamp space for everyone (issue 3 of §3.2)."""

    HUGE = 10**15

    def __init__(self, cluster, name: str) -> None:
        super().__init__(cluster, name)
        self.acks: set[str] = set()
        self.value = (self.node_id, 1, "huge")
        self._request: Optional[BqsWriteRequest] = None

    def start(self) -> None:
        ts = Timestamp(val=self.HUGE, client_id=self.node_id)
        self._request = BqsWriteRequest(
            value=self.value,
            ts=ts,
            writer_sig=self.sign(bqs_write_statement(ts, hash_value(self.value))),
        )
        self._send()
        self.scheduler.call_later(ATTEMPT_TIMEOUT, self._finish)

    def _send(self) -> None:
        if self.done:
            return
        assert self._request is not None
        for dest in self.config.quorums.replica_ids:
            if dest not in self.acks:
                self.network.send(self.node_id, dest, self._request)
        if len(self.acks) < self.config.quorum_size:
            self.scheduler.call_later(0.05, self._send)

    def handle_raw(self, src: str, message: Message) -> None:
        if isinstance(message, BqsWriteReply) and message.ts.val == self.HUGE:
            self.acks.add(src)
            if len(self.acks) >= self.config.quorum_size and not self.done:
                self._finish()

    @property
    def succeeded(self) -> bool:
        return len(self.acks) >= self.config.quorum_size
