"""The replica storage interface and the in-memory backend.

A :class:`ReplicaStore` persists one replica's Figure-2 state as a
*snapshot* plus an ordered log of state-change *records*.  Both are plain
canonically encodable values (:mod:`repro.encoding.canonical`): the store
never sees protocol objects, which keeps this package below ``repro.core``
in the layering.

The contract every backend satisfies:

* ``append(record)`` durably adds one record after everything already
  stored (write-ahead: callers append *before* releasing any message that
  reveals the state change).
* ``load()`` returns ``(snapshot, records)`` — the most recent snapshot (or
  ``None``) and every record appended after it, in order.  Loading is
  read-only and idempotent.
* ``write_snapshot(state)`` atomically replaces the snapshot with ``state``
  and discards the log records it subsumes (compaction).
* ``crash()`` simulates a process/machine crash: whatever the backend
  would lose on a real power cut disappears.  For :class:`MemoryStore`
  that is everything; for :class:`~repro.storage.filelog.FileLogStore`
  it is the un-fsynced log tail.

Backends auto-compact: when ``snapshot_interval`` records accumulate and a
``snapshot_source`` callback is installed (by
:class:`repro.core.persistence.DurableReplicaState`), :meth:`maybe_compact`
snapshots the store and truncates the log.  Compaction runs only when the
state layer says the state is *consistent* — never from inside ``append``,
because the write-ahead discipline means the in-memory state trails the
record just logged, and snapshotting at that instant would truncate away a
change the snapshot does not contain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["StorageStats", "ReplicaStore", "MemoryStore"]


@dataclass
class StorageStats:
    """Per-store durability counters (E16 and the metrics layer read these).

    ``appends``/``appended_bytes`` count write-ahead log activity (bytes are
    0 for the zero-copy memory backend), ``fsyncs`` the stable-storage
    barriers actually issued, ``snapshots`` the compactions.  Recovery
    reports how much log it replayed and whether a torn final record was
    dropped.  The corruption counters separate a *torn* tail (an append cut
    short by a crash — expected, truncated silently) from records or
    snapshots that failed their integrity tag (bit rot or hostile bytes —
    quarantined, and the replica must repair before serving).
    """

    appends: int = 0
    appended_bytes: int = 0
    fsyncs: int = 0
    snapshots: int = 0
    snapshot_bytes: int = 0
    loads: int = 0
    records_replayed: int = 0
    torn_records_dropped: int = 0
    crashes: int = 0
    corrupt_records: int = 0
    corrupt_snapshots: int = 0
    scrub_passes: int = 0

    def reset(self) -> None:
        self.appends = 0
        self.appended_bytes = 0
        self.fsyncs = 0
        self.snapshots = 0
        self.snapshot_bytes = 0
        self.loads = 0
        self.records_replayed = 0
        self.torn_records_dropped = 0
        self.crashes = 0
        self.corrupt_records = 0
        self.corrupt_snapshots = 0
        self.scrub_passes = 0

    def add(self, other: "StorageStats") -> None:
        """Accumulate ``other`` into this block (metrics aggregation)."""
        self.appends += other.appends
        self.appended_bytes += other.appended_bytes
        self.fsyncs += other.fsyncs
        self.snapshots += other.snapshots
        self.snapshot_bytes += other.snapshot_bytes
        self.loads += other.loads
        self.records_replayed += other.records_replayed
        self.torn_records_dropped += other.torn_records_dropped
        self.crashes += other.crashes
        self.corrupt_records += other.corrupt_records
        self.corrupt_snapshots += other.corrupt_snapshots
        self.scrub_passes += other.scrub_passes


class ReplicaStore(ABC):
    """Durable snapshot + write-ahead record log for one replica."""

    def __init__(self, *, snapshot_interval: Optional[int] = None) -> None:
        self.stats = StorageStats()
        self.snapshot_interval = snapshot_interval
        #: Callback returning the full current state in wire form; installed
        #: by the state layer so the store can compact autonomously.
        self.snapshot_source: Optional[Callable[[], Any]] = None
        #: Set by :meth:`load` when it had to quarantine corrupt bytes to
        #: produce its result.  The returned state is the best *verified*
        #: prefix, but it may trail what the replica once acknowledged —
        #: callers (the replica recovery path) must treat the store as
        #: needing repair from peers rather than serving from it directly.
        self.suspect = False
        self._records_since_snapshot = 0

    # -- the durable contract ------------------------------------------------

    @abstractmethod
    def append(self, record: Any) -> None:
        """Durably append one canonically encodable record to the log."""

    @abstractmethod
    def load(self) -> tuple[Any, list[Any]]:
        """Return ``(snapshot_or_None, records_after_it)``; idempotent."""

    @abstractmethod
    def write_snapshot(self, state: Any) -> None:
        """Atomically replace the snapshot and truncate the log."""

    @abstractmethod
    def sync(self) -> None:
        """Force everything appended so far to stable storage."""

    @abstractmethod
    def crash(self) -> None:
        """Simulate a crash: drop whatever would not survive a power cut."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any backing resources (file handles)."""

    def scrub(self) -> dict[str, Any]:
        """Re-verify every stored byte without mutating anything.

        Returns a report dict with at least ``clean`` (bool) and the
        per-category problem counts.  Backends without integrity tags (the
        memory store) trivially report clean — there is nothing on disk to
        rot.  File-backed stores override this to re-check every seal.
        """
        self.stats.scrub_passes += 1
        return {
            "clean": True,
            "snapshot_ok": True,
            "records_verified": 0,
            "torn_records": 0,
            "corrupt_records": 0,
            "corrupt_snapshots": 0,
        }

    # -- state transfer ----------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """A portable copy of everything :meth:`load` would return.

        The payload is canonically encodable (snapshot and records already
        are, per the store contract), so it can travel in a state-transfer
        frame between replicas.
        """
        snapshot, records = self.load()
        return {"snapshot": snapshot, "records": list(records)}

    def import_state(self, payload: dict[str, Any]) -> None:
        """Replace this store's contents with an exported payload.

        Used when a replica bootstraps from peers: the snapshot is installed
        first (which also truncates any pre-existing log), the records are
        re-appended in order, and the result is forced to stable storage so
        a crash immediately after bootstrap does not silently lose the
        transferred state.
        """
        if not isinstance(payload, dict) or not {"snapshot", "records"} <= set(payload):
            raise ValueError(f"malformed state-transfer payload: {payload!r}")
        self.write_snapshot(payload["snapshot"])
        for record in payload["records"]:
            self.append(record)
        self.sync()

    # -- compaction --------------------------------------------------------

    def _note_append(self) -> None:
        """Bookkeeping after a successful append."""
        self._records_since_snapshot += 1

    def maybe_compact(self) -> None:
        """Snapshot + truncate if enough records accumulated.

        Callers invoke this *after* applying a logged mutation to their
        in-memory state, when snapshot_source reflects every appended
        record; compacting from inside ``append`` would snapshot a state
        that trails the log and silently lose the in-flight record.
        """
        if (
            self.snapshot_interval is not None
            and self.snapshot_source is not None
            and self._records_since_snapshot >= self.snapshot_interval
        ):
            self.write_snapshot(self.snapshot_source())


class MemoryStore(ReplicaStore):
    """Today's behaviour: state lives in process memory, zero-copy.

    Records are retained as live Python objects — nothing is encoded, so
    the hot path costs one ``list.append``.  A simulated :meth:`crash`
    wipes the store (RAM is volatile), which is exactly how a replica
    without durable storage forgets its prepare lists; the crash-recovery
    experiments use this as the unsafe baseline.

    ``snapshot_interval`` defaults to 4096 so long simulations do not
    accumulate unbounded record lists.
    """

    def __init__(self, *, snapshot_interval: Optional[int] = 4096) -> None:
        super().__init__(snapshot_interval=snapshot_interval)
        self._snapshot: Any = None
        self._records: list[Any] = []

    def append(self, record: Any) -> None:
        self._records.append(record)
        self.stats.appends += 1
        self._note_append()

    def load(self) -> tuple[Any, list[Any]]:
        self.stats.loads += 1
        self.stats.records_replayed += len(self._records)
        return self._snapshot, list(self._records)

    def write_snapshot(self, state: Any) -> None:
        self._snapshot = state
        self._records.clear()
        self._records_since_snapshot = 0
        self.stats.snapshots += 1

    def sync(self) -> None:
        pass  # memory has no stable storage to sync to

    def crash(self) -> None:
        self._snapshot = None
        self._records.clear()
        self._records_since_snapshot = 0
        self.stats.crashes += 1
