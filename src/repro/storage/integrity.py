"""Per-record integrity tags for durable state.

Disk corruption is silent: a flipped bit in the WAL or a truncated
snapshot decodes (or fails to decode) indistinguishably from hostile
bytes, and PR 3's torn-tail handling would quietly truncate away good
records that merely *follow* the damage.  Following the proofs-of-writing
idea of making per-record integrity cheap enough to run everywhere
(arXiv 1212.3555), every value the file-backed store writes is *sealed*:

    sealed = payload || sha256(len(domain) || domain || payload)

The 32-byte tag is domain-separated (WAL records and snapshots cannot be
spliced into each other's slots) and verified with a constant-time
compare.  A sealed value that fails :func:`unseal` is *corruption* — it
can never be produced by a torn append, because an interrupted append
writes a strict prefix of a valid frame, which the frame codec reports as
:class:`~repro.errors.IncompleteFrameError` instead.

This module is deliberately tiny and dependency-free (hashlib only) so it
sits at layer 1 with the rest of :mod:`repro.storage`.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import IntegrityError

__all__ = [
    "TAG_SIZE",
    "WAL_RECORD_DOMAIN",
    "SNAPSHOT_DOMAIN",
    "integrity_tag",
    "seal",
    "unseal",
]

#: Size of the appended SHA-256 tag in bytes.
TAG_SIZE = 32

#: Domain tag for write-ahead-log records.
WAL_RECORD_DOMAIN = b"repro-wal-record/1"

#: Domain tag for snapshot files.
SNAPSHOT_DOMAIN = b"repro-snapshot/1"


def integrity_tag(payload: bytes, domain: bytes) -> bytes:
    """The domain-separated SHA-256 tag of ``payload``."""
    digest = hashlib.sha256()
    digest.update(len(domain).to_bytes(2, "big"))
    digest.update(domain)
    digest.update(payload)
    return digest.digest()


def seal(payload: bytes, domain: bytes) -> bytes:
    """``payload`` with its integrity tag appended."""
    return payload + integrity_tag(payload, domain)


def unseal(sealed: bytes, domain: bytes) -> bytes:
    """Verify and strip the tag; raises :class:`IntegrityError` on mismatch.

    The compare is constant-time (:func:`hmac.compare_digest`) so the check
    leaks nothing about *where* a tag diverges, matching how the crypto
    layer treats MACs.
    """
    if len(sealed) < TAG_SIZE:
        raise IntegrityError(
            f"sealed value of {len(sealed)} bytes is shorter than its "
            f"{TAG_SIZE}-byte tag"
        )
    payload, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
    if not hmac.compare_digest(tag, integrity_tag(payload, domain)):
        raise IntegrityError(f"integrity tag mismatch (domain {domain!r})")
    return payload
