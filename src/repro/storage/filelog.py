"""Write-ahead file log with snapshot compaction.

Layout inside the store directory::

    snapshot.bin   one framed canonical value: the last compacted state
    wal.bin        framed canonical records appended since that snapshot

Both files reuse the transport's wire machinery: payloads are
:func:`repro.encoding.canonical_encode` values wrapped in the
length-prefixed frames of :mod:`repro.encoding.codec`, so a WAL is
byte-compatible with what travels on the network and the same decoder
drives recovery.

Durability model:

* ``fsync="always"`` (default) issues one fsync per append — every
  acknowledged state change survives any crash.
* ``fsync="never"`` leaves flushing to the OS; a crash loses the unsynced
  tail, which :meth:`FileLogStore.crash` simulates by truncating to the
  last synced offset.

Recovery (:meth:`FileLogStore.load`) tolerates a *torn final record* — an
append cut short by the crash — by truncating the log back to the last
complete frame.  Anything before the tear is intact (frames are
self-delimiting), so recovery is idempotent: loading twice, or crashing
during recovery and loading again, yields the same state.

Snapshot compaction writes the new snapshot to a temp file, fsyncs, then
atomically renames over ``snapshot.bin`` before truncating the WAL; a crash
between the two leaves a valid snapshot plus a WAL whose records re-apply
idempotently.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Optional, Union

from repro.encoding import canonical_decode, canonical_encode, decode_frame, encode_frame
from repro.errors import EncodingError, StorageError
from repro.storage.base import ReplicaStore

__all__ = ["FileLogStore"]

_SNAPSHOT = "snapshot.bin"
_WAL = "wal.bin"


class FileLogStore(ReplicaStore):
    """Durable :class:`~repro.storage.base.ReplicaStore` backed by files."""

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        fsync: str = "always",
        snapshot_interval: Optional[int] = 1024,
    ) -> None:
        if fsync not in ("always", "never"):
            raise StorageError(f"unknown fsync policy {fsync!r}")
        super().__init__(snapshot_interval=snapshot_interval)
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._wal_path = self.directory / _WAL
        self._snapshot_path = self.directory / _SNAPSHOT
        self._wal = open(self._wal_path, "ab")
        #: Bytes of the WAL known to be on stable storage; a simulated
        #: crash truncates back to here.
        self._synced_size = self._wal_path.stat().st_size

    # -- appending ---------------------------------------------------------

    def append(self, record: Any) -> None:
        frame = encode_frame(canonical_encode(record))
        self._wal.write(frame)
        self._wal.flush()
        if self.fsync == "always":
            os.fsync(self._wal.fileno())
            self.stats.fsyncs += 1
            self._synced_size = self._wal.tell()
        self.stats.appends += 1
        self.stats.appended_bytes += len(frame)
        self._note_append()

    def sync(self) -> None:
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self.stats.fsyncs += 1
        self._synced_size = self._wal.tell()

    # -- snapshots ---------------------------------------------------------

    def write_snapshot(self, state: Any) -> None:
        frame = encode_frame(canonical_encode(state))
        tmp_path = self.directory / (_SNAPSHOT + ".tmp")
        with open(tmp_path, "wb") as tmp:
            tmp.write(frame)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, self._snapshot_path)
        self._fsync_directory()
        # The snapshot now subsumes every logged record: truncate the WAL.
        self._wal.close()
        self._wal = open(self._wal_path, "wb")
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self._synced_size = 0
        self._records_since_snapshot = 0
        self.stats.snapshots += 1
        self.stats.snapshot_bytes += len(frame)
        self.stats.fsyncs += 2  # snapshot file + emptied WAL

    def _fsync_directory(self) -> None:
        try:
            dir_fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
            self.stats.fsyncs += 1
        finally:
            os.close(dir_fd)

    # -- recovery ----------------------------------------------------------

    def load(self) -> tuple[Any, list[Any]]:
        """Read snapshot + log, truncating a torn final record if present."""
        self.stats.loads += 1
        snapshot = self._load_snapshot()
        records, good_size, torn = self._scan_wal()
        if torn:
            # Cut the log back to its last complete record so the torn
            # tail can never resurface; recovery is idempotent after this.
            self.stats.torn_records_dropped += 1
            self._wal.close()
            with open(self._wal_path, "r+b") as wal:
                wal.truncate(good_size)
                wal.flush()
                os.fsync(wal.fileno())
            self._wal = open(self._wal_path, "ab")
            self._synced_size = min(self._synced_size, good_size)
        self.stats.records_replayed += len(records)
        return snapshot, records

    def _load_snapshot(self) -> Any:
        try:
            raw = self._snapshot_path.read_bytes()
        except FileNotFoundError:
            return None
        if not raw:
            return None
        try:
            payload, rest = decode_frame(raw)
            if rest:
                raise EncodingError("trailing bytes after snapshot frame")
            return canonical_decode(payload)
        except EncodingError as exc:
            # Snapshots are written atomically, so a bad one means real
            # on-disk corruption — refuse to guess.
            raise StorageError(f"corrupt snapshot at {self._snapshot_path}") from exc

    def _scan_wal(self) -> tuple[list[Any], int, bool]:
        """Decode records; return (records, bytes_of_complete_frames, torn?)."""
        self._wal.flush()
        raw = self._wal_path.read_bytes()
        records: list[Any] = []
        offset = 0
        while offset < len(raw):
            try:
                payload, rest = decode_frame(raw[offset:])
            except EncodingError:
                return records, offset, True
            try:
                records.append(canonical_decode(payload))
            except EncodingError:
                # A complete frame with an undecodable payload: the tail of
                # the payload was lost to the same tear.
                return records, offset, True
            offset = len(raw) - len(rest)
        return records, offset, False

    # -- crash simulation --------------------------------------------------

    def crash(self) -> None:
        """Lose everything not yet fsynced, as a power cut would."""
        self._wal.close()
        with open(self._wal_path, "r+b") as wal:
            wal.truncate(self._synced_size)
        self._wal = open(self._wal_path, "ab")
        self.stats.crashes += 1

    def close(self) -> None:
        self._wal.close()
