"""Write-ahead file log with snapshot compaction and integrity tags.

Layout inside the store directory::

    snapshot.bin        one framed, sealed canonical value: the last
                        compacted state
    snapshot.prev.bin   the previous snapshot generation (fallback when
                        the current one fails its integrity check)
    wal.bin             framed, sealed canonical records appended since
                        the current snapshot
    wal.quarantine.*    corrupt WAL tails preserved for post-mortem

Payloads are :func:`repro.encoding.canonical_encode` values *sealed* with a
domain-separated SHA-256 tag (:mod:`repro.storage.integrity`) and wrapped in
the length-prefixed frames of :mod:`repro.encoding.codec`, so the same
decoder that drives the transport drives recovery — plus a constant-time
integrity check per record.

Durability model:

* ``fsync="always"`` (default) issues one fsync per append — every
  acknowledged state change survives any crash.
* ``fsync="never"`` leaves flushing to the OS; a crash loses the unsynced
  tail, which :meth:`FileLogStore.crash` simulates by truncating to the
  last synced offset.

Recovery (:meth:`FileLogStore.load`) distinguishes two failure shapes:

* **Torn tail** — an append cut short by a crash leaves a strict prefix of
  a valid frame at EOF (:class:`~repro.errors.IncompleteFrameError`).
  Expected; the log is truncated back to the last complete record, exactly
  as before.
* **Corruption** — bad frame magic mid-file, an impossible length, or a
  complete frame whose integrity tag or canonical encoding fails.  A crash
  cannot produce these (appends are sequential), so the store quarantines
  the bad record *and everything after it* (order matters: a record after
  the damage may depend on state the damaged record carried), moves the
  bad tail to a ``wal.quarantine.<offset>.bin`` file, bumps
  ``stats.corrupt_records`` and raises the :attr:`~ReplicaStore.suspect`
  flag.  The replica layer sees ``suspect`` and repairs from peers instead
  of serving the (verified but possibly trailing) prefix.

Snapshots carry the same seal.  ``write_snapshot`` keeps the previous
generation as ``snapshot.prev.bin``; if the current snapshot fails its
check on load, recovery quarantines it and falls back to the previous
generation, and failing that to WAL-only replay — always raising
``suspect`` so the state is repaired, never trusted silently.

:meth:`FileLogStore.scrub` re-verifies every stored byte read-only, for
periodic self-audit and the ``python -m repro storage scrub`` CLI.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Optional, Union

from repro.encoding import canonical_decode, canonical_encode, decode_frame, encode_frame
from repro.errors import EncodingError, IncompleteFrameError, IntegrityError, StorageError
from repro.storage.base import ReplicaStore
from repro.storage.integrity import SNAPSHOT_DOMAIN, WAL_RECORD_DOMAIN, seal, unseal

__all__ = ["FileLogStore"]

_SNAPSHOT = "snapshot.bin"
_SNAPSHOT_PREV = "snapshot.prev.bin"
_WAL = "wal.bin"


class FileLogStore(ReplicaStore):
    """Durable :class:`~repro.storage.base.ReplicaStore` backed by files."""

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        fsync: str = "always",
        snapshot_interval: Optional[int] = 1024,
    ) -> None:
        if fsync not in ("always", "never"):
            raise StorageError(f"unknown fsync policy {fsync!r}")
        super().__init__(snapshot_interval=snapshot_interval)
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._wal_path = self.directory / _WAL
        self._snapshot_path = self.directory / _SNAPSHOT
        self._snapshot_prev_path = self.directory / _SNAPSHOT_PREV
        self._wal = open(self._wal_path, "ab")
        #: Bytes of the WAL known to be on stable storage; a simulated
        #: crash truncates back to here.
        self._synced_size = self._wal_path.stat().st_size

    @property
    def wal_path(self) -> pathlib.Path:
        """Location of the write-ahead log (chaos injection targets this)."""
        return self._wal_path

    @property
    def snapshot_path(self) -> pathlib.Path:
        """Location of the current snapshot generation."""
        return self._snapshot_path

    # -- appending ---------------------------------------------------------

    def append(self, record: Any) -> None:
        frame = encode_frame(seal(canonical_encode(record), WAL_RECORD_DOMAIN))
        self._wal.write(frame)
        self._wal.flush()
        if self.fsync == "always":
            os.fsync(self._wal.fileno())
            self.stats.fsyncs += 1
            self._synced_size = self._wal.tell()
        self.stats.appends += 1
        self.stats.appended_bytes += len(frame)
        self._note_append()

    def sync(self) -> None:
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self.stats.fsyncs += 1
        self._synced_size = self._wal.tell()

    # -- snapshots ---------------------------------------------------------

    def write_snapshot(self, state: Any) -> None:
        frame = encode_frame(seal(canonical_encode(state), SNAPSHOT_DOMAIN))
        tmp_path = self.directory / (_SNAPSHOT + ".tmp")
        with open(tmp_path, "wb") as tmp:
            tmp.write(frame)
            tmp.flush()
            os.fsync(tmp.fileno())
        # Keep the outgoing snapshot as the previous generation; if the new
        # one rots on disk, recovery falls back to prev + (truncated) WAL.
        if self._snapshot_path.exists():
            os.replace(self._snapshot_path, self._snapshot_prev_path)
        os.replace(tmp_path, self._snapshot_path)
        self._fsync_directory()
        # The snapshot now subsumes every logged record: truncate the WAL.
        self._wal.close()
        self._wal = open(self._wal_path, "wb")
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self._synced_size = 0
        self._records_since_snapshot = 0
        self.stats.snapshots += 1
        self.stats.snapshot_bytes += len(frame)
        self.stats.fsyncs += 2  # snapshot file + emptied WAL

    def _fsync_directory(self) -> None:
        try:
            dir_fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
            self.stats.fsyncs += 1
        finally:
            os.close(dir_fd)

    # -- recovery ----------------------------------------------------------

    def load(self) -> tuple[Any, list[Any]]:
        """Read snapshot + log, sorting torn tails from real corruption.

        Always returns the best fully *verified* state.  If any byte failed
        its integrity check on the way, :attr:`suspect` is True and the
        caller must repair from peers before serving — the verified prefix
        may trail writes this replica already acknowledged.
        """
        self.stats.loads += 1
        self.suspect = False
        snapshot = self._load_snapshot()
        records, good_size, verdict = self._scan_wal()
        if verdict is not None:
            if verdict == "corrupt":
                self.stats.corrupt_records += 1
                self.suspect = True
                self._quarantine_wal_tail(good_size)
            else:
                self.stats.torn_records_dropped += 1
            # Cut the log back to its last good record so the bad tail can
            # never resurface; recovery is idempotent after this.
            self._truncate_wal(good_size)
        self.stats.records_replayed += len(records)
        return snapshot, records

    def _truncate_wal(self, good_size: int) -> None:
        self._wal.close()
        with open(self._wal_path, "r+b") as wal:
            wal.truncate(good_size)
            wal.flush()
            os.fsync(wal.fileno())
        self._wal = open(self._wal_path, "ab")
        self._synced_size = min(self._synced_size, good_size)

    def _quarantine_wal_tail(self, good_size: int) -> None:
        """Preserve the corrupt tail for post-mortem before truncating."""
        raw = self._wal_path.read_bytes()
        quarantine = self.directory / f"wal.quarantine.{good_size}.bin"
        quarantine.write_bytes(raw[good_size:])

    def _load_snapshot(self) -> Any:
        """Best verified snapshot: current, else previous generation, else None.

        A missing current snapshot with an existing previous one is the
        crash window inside ``write_snapshot`` (after the outgoing snapshot
        moved to prev, before the new one landed): the prev generation plus
        the still-untruncated WAL is exactly the pre-snapshot state, so
        falling back is silent.  A current snapshot that *fails its seal* is
        corruption: quarantine it, count it, raise ``suspect``, then try the
        previous generation before giving up and replaying the WAL alone.
        """
        current = self._read_snapshot_file(self._snapshot_path)
        if current is not None:
            return current
        return self._read_snapshot_file(self._snapshot_prev_path)

    def _read_snapshot_file(self, path: pathlib.Path) -> Any:
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        if not raw:
            return None
        try:
            payload, rest = decode_frame(raw)
            if rest:
                raise EncodingError("trailing bytes after snapshot frame")
            return canonical_decode(unseal(payload, SNAPSHOT_DOMAIN))
        except (EncodingError, IntegrityError):
            # Snapshots are written atomically (tmp + fsync + rename), so a
            # bad one means real on-disk corruption, never a torn write.
            self.stats.corrupt_snapshots += 1
            self.suspect = True
            os.replace(path, path.with_suffix(".quarantine"))
            return None

    def _scan_wal(self) -> tuple[list[Any], int, Optional[str]]:
        """Decode records; return (records, bytes_of_good_frames, verdict).

        ``verdict`` is ``None`` (clean), ``"torn"`` (incomplete final frame
        — a crash mid-append) or ``"corrupt"`` (a complete frame that fails
        its seal, undecodable sealed bytes, or a mangled header).
        """
        self._wal.flush()
        raw = self._wal_path.read_bytes()
        records: list[Any] = []
        offset = 0
        while offset < len(raw):
            try:
                sealed, rest = decode_frame(raw[offset:])
            except IncompleteFrameError:
                return records, offset, "torn"
            except EncodingError:
                return records, offset, "corrupt"
            try:
                records.append(canonical_decode(unseal(sealed, WAL_RECORD_DOMAIN)))
            except (EncodingError, IntegrityError):
                # A complete frame whose contents fail verification: the
                # seal rules out a torn write, so these bytes were changed
                # after they were written.
                return records, offset, "corrupt"
            offset = len(raw) - len(rest)
        return records, offset, None

    # -- integrity audit ---------------------------------------------------

    def scrub(self) -> dict[str, Any]:
        """Re-verify snapshot generations and every WAL record, read-only.

        Unlike :meth:`load`, nothing is truncated or quarantined — this is
        the observation half of the self-stabilization loop, safe to run on
        a live store or offline via ``python -m repro storage scrub``.
        """
        self.stats.scrub_passes += 1
        report: dict[str, Any] = {
            "clean": True,
            "snapshot_ok": True,
            "records_verified": 0,
            "torn_records": 0,
            "corrupt_records": 0,
            "corrupt_snapshots": 0,
        }
        for path in (self._snapshot_path, self._snapshot_prev_path):
            try:
                raw = path.read_bytes()
            except FileNotFoundError:
                continue
            if not raw:
                continue
            try:
                payload, rest = decode_frame(raw)
                if rest:
                    raise EncodingError("trailing bytes after snapshot frame")
                canonical_decode(unseal(payload, SNAPSHOT_DOMAIN))
            except (EncodingError, IntegrityError):
                report["corrupt_snapshots"] += 1
                report["clean"] = False
                if path == self._snapshot_path:
                    report["snapshot_ok"] = False
        self._wal.flush()
        raw = self._wal_path.read_bytes()
        offset = 0
        while offset < len(raw):
            try:
                sealed, rest = decode_frame(raw[offset:])
            except IncompleteFrameError:
                report["torn_records"] += 1
                report["clean"] = False
                break
            except EncodingError:
                report["corrupt_records"] += 1
                report["clean"] = False
                break
            try:
                canonical_decode(unseal(sealed, WAL_RECORD_DOMAIN))
            except (EncodingError, IntegrityError):
                report["corrupt_records"] += 1
                report["clean"] = False
                break
            report["records_verified"] += 1
            offset = len(raw) - len(rest)
        return report

    # -- crash simulation --------------------------------------------------

    def crash(self) -> None:
        """Lose everything not yet fsynced, as a power cut would."""
        self._wal.close()
        with open(self._wal_path, "r+b") as wal:
            wal.truncate(self._synced_size)
        self._wal = open(self._wal_path, "ab")
        self.stats.crashes += 1

    def close(self) -> None:
        self._wal.close()
