"""Pluggable durable storage for replica state.

BFT-BC's safety argument (Lemma 1, Theorems 1-2) hinges on replicas never
forgetting ``plist``/``optlist`` entries, prepare certificates, or
``write_ts``.  This package provides the persistence layer those guarantees
stand on: a :class:`ReplicaStore` interface over an append-only log of
state-change records plus a snapshot, with two backends:

* :class:`MemoryStore` — records kept as live Python objects, zero-copy;
  the default for the simulator.  Models volatile RAM: a simulated crash
  wipes it.
* :class:`FileLogStore` — a length-prefixed canonical-codec write-ahead
  log with periodic snapshot compaction and configurable fsync policy.
  Every record and snapshot carries a domain-separated SHA-256 seal
  (:mod:`repro.storage.integrity`), so recovery distinguishes a *torn*
  final record (crash mid-append: truncate) from mid-file *corruption*
  (bit rot or hostile bytes: quarantine, count, and flag the store
  ``suspect`` so the replica repairs from peers).

The layer sits *below* ``repro.core`` (enforced by
``tools/check_layering.py``): stores traffic only in canonically encodable
wire values and never import protocol types.  The mapping between replica
state and wire records lives in :mod:`repro.core.persistence`.
"""

from repro.storage.base import MemoryStore, ReplicaStore, StorageStats
from repro.storage.filelog import FileLogStore
from repro.storage.integrity import (
    SNAPSHOT_DOMAIN,
    TAG_SIZE,
    WAL_RECORD_DOMAIN,
    integrity_tag,
    seal,
    unseal,
)

__all__ = [
    "ReplicaStore",
    "StorageStats",
    "MemoryStore",
    "FileLogStore",
    "TAG_SIZE",
    "WAL_RECORD_DOMAIN",
    "SNAPSHOT_DOMAIN",
    "integrity_tag",
    "seal",
    "unseal",
]
