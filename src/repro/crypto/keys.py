"""Key management for the simulated public-key infrastructure.

The paper assumes every node holds a private key and that any node can verify
any other node's signatures (§2).  :class:`KeyRegistry` models the PKI: it
derives per-node key material deterministically from a master seed, tracks
revocations, and hands out :class:`PrivateCredential` objects that are the
*only* way to produce signatures.

Secrets are pure functions of ``(master_seed, node_id)``, so the registry
never has to *store* them: derivation is lazy and results sit in a bounded
LRU (the same eviction discipline as ``encoding/interning.intern_encode``).
An evicted secret is simply re-derived on next use.  Membership likewise
does not require a million-entry set — identities can be admitted wholesale
by :meth:`open_namespace` prefix, keeping resident state O(active clients)
instead of O(ever-seen clients).

Revocation models the paper's ``stop`` event (§4.1.1): once an administrator
revokes a client's key, no *new* signatures can be produced on its behalf,
but messages signed before the revocation still verify — which is exactly
what lets a colluder replay a stopped client's lurking writes.  Revocations
are the one thing kept *exact* (a compact set — stopped clients are rare),
with a monotone :attr:`KeyRegistry.revocation_epoch` watermark so caches
layered above the registry can cheaply detect that the revocation set moved.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import KeyRevokedError, UnknownSignerError

__all__ = ["PrivateCredential", "KeyRegistryStats", "KeyRegistry"]

#: Default capacity of the derived-secret LRU; mirrors the interning memo.
SECRET_CACHE_CAPACITY = 8192


@dataclass(frozen=True)
class PrivateCredential:
    """A node's private key material.

    Holding one of these is what it means to "know the private key" in the
    paper's model.  Simulated adversaries receive only their own credential.
    """

    node_id: str
    secret: bytes


@dataclass
class KeyRegistryStats:
    """Derivation/eviction counters for the lazy secret cache (E21)."""

    derivations: int = 0
    cache_hits: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.derivations
        return self.cache_hits / total if total else 0.0

    def reset(self) -> None:
        self.derivations = 0
        self.cache_hits = 0
        self.evictions = 0


class KeyRegistry:
    """Deterministic key derivation plus revocation tracking.

    Args:
        master_seed: root entropy; the same seed always produces the same
            per-node keys, keeping simulations reproducible.
        secret_cache: LRU capacity for derived secrets; ``None`` keeps every
            derived secret resident (the pre-budget behaviour, used by the
            differential memory experiments as the unbounded baseline).
    """

    def __init__(
        self,
        master_seed: bytes = b"repro-default-seed",
        *,
        secret_cache: Optional[int] = SECRET_CACHE_CAPACITY,
    ) -> None:
        self.master_seed = master_seed
        self._explicit: set[str] = set()
        self._namespaces: tuple[str, ...] = ()
        self._cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._capacity = secret_cache
        self._revoked: set[str] = set()
        #: Monotone watermark bumped on every revocation; caches above the
        #: registry compare it to detect that the revocation set moved.
        self.revocation_epoch = 0
        self.stats = KeyRegistryStats()
        self._registered_view: Optional[frozenset[str]] = None
        self._revoked_view: frozenset[str] = frozenset()

    # -- membership ----------------------------------------------------------

    def open_namespace(self, prefix: str) -> None:
        """Admit every identity whose id starts with ``prefix``.

        This is the O(1)-memory path for large client populations: a load
        harness spinning up 10⁶ writers opens one namespace instead of
        registering a million explicit entries.
        """
        if prefix not in self._namespaces:
            self._namespaces = self._namespaces + (prefix,)
            self._registered_view = None

    def register(self, node_id: str) -> PrivateCredential:
        """Admit ``node_id`` (idempotent) and hand back its credential."""
        if not self._in_namespace(node_id) and node_id not in self._explicit:
            self._explicit.add(node_id)
            self._registered_view = None
        return PrivateCredential(node_id=node_id, secret=self._derive(node_id))

    def is_registered(self, node_id: str) -> bool:
        return node_id in self._explicit or self._in_namespace(node_id)

    def _in_namespace(self, node_id: str) -> bool:
        return bool(self._namespaces) and node_id.startswith(self._namespaces)

    # -- secrets -------------------------------------------------------------

    def secret_for(self, node_id: str) -> bytes:
        """Return the secret for ``node_id`` (registry-internal use).

        Raises:
            UnknownSignerError: if the node was never registered.
        """
        if node_id not in self._explicit and not self._in_namespace(node_id):
            raise UnknownSignerError(f"no key registered for {node_id!r}")
        return self._derive(node_id)

    def _derive(self, node_id: str) -> bytes:
        secret = self._cache.get(node_id)
        if secret is not None:
            self._cache.move_to_end(node_id)
            self.stats.cache_hits += 1
            return secret
        secret = hashlib.sha256(
            b"node-key|" + self.master_seed + b"|" + node_id.encode("utf-8")
        ).digest()
        self.stats.derivations += 1
        self._cache[node_id] = secret
        if self._capacity is not None:
            while len(self._cache) > self._capacity:
                self._cache.popitem(last=False)
                self.stats.evictions += 1
        return secret

    @property
    def resident_secrets(self) -> int:
        """How many derived secrets are currently cached."""
        return len(self._cache)

    # -- revocation ----------------------------------------------------------

    def revoke(self, node_id: str) -> None:
        """Revoke ``node_id``'s key: no further signing allowed.

        Previously produced signatures continue to verify; see module docs.
        """
        if not self.is_registered(node_id):
            raise UnknownSignerError(f"cannot revoke unknown node {node_id!r}")
        if node_id not in self._revoked:
            self._revoked.add(node_id)
            self.revocation_epoch += 1
            self._revoked_view = frozenset(self._revoked)

    def is_revoked(self, node_id: str) -> bool:
        return node_id in self._revoked

    def check_may_sign(self, node_id: str) -> None:
        """Raise unless ``node_id`` is registered and not revoked."""
        if node_id not in self._explicit and not self._in_namespace(node_id):
            raise UnknownSignerError(f"no key registered for {node_id!r}")
        if node_id in self._revoked:
            raise KeyRevokedError(f"key for {node_id!r} has been revoked")

    # -- views ---------------------------------------------------------------

    @property
    def registered_nodes(self) -> frozenset[str]:
        """The *explicitly* registered identities, as a cached view.

        Namespace-admitted identities are deliberately not enumerated: the
        whole point of :meth:`open_namespace` is that the admitted population
        never materialises.  The view is rebuilt only after a mutation, so
        repeated reads on the verify path are free (they previously built a
        fresh frozenset per call).
        """
        view = self._registered_view
        if view is None:
            view = self._registered_view = frozenset(self._explicit)
        return view

    @property
    def revoked_nodes(self) -> frozenset[str]:
        """Cached view of the (exact, compact) revocation set."""
        return self._revoked_view

    @property
    def namespaces(self) -> tuple[str, ...]:
        """Prefixes admitted wholesale via :meth:`open_namespace`."""
        return self._namespaces
