"""Key management for the simulated public-key infrastructure.

The paper assumes every node holds a private key and that any node can verify
any other node's signatures (§2).  :class:`KeyRegistry` models the PKI: it
derives per-node key material deterministically from a master seed, tracks
revocations, and hands out :class:`PrivateCredential` objects that are the
*only* way to produce signatures.

Revocation models the paper's ``stop`` event (§4.1.1): once an administrator
revokes a client's key, no *new* signatures can be produced on its behalf,
but messages signed before the revocation still verify — which is exactly
what lets a colluder replay a stopped client's lurking writes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import KeyRevokedError, UnknownSignerError

__all__ = ["PrivateCredential", "KeyRegistry"]


@dataclass(frozen=True)
class PrivateCredential:
    """A node's private key material.

    Holding one of these is what it means to "know the private key" in the
    paper's model.  Simulated adversaries receive only their own credential.
    """

    node_id: str
    secret: bytes


@dataclass
class KeyRegistry:
    """Deterministic key derivation plus revocation tracking.

    Args:
        master_seed: root entropy; the same seed always produces the same
            per-node keys, keeping simulations reproducible.
    """

    master_seed: bytes = b"repro-default-seed"
    _secrets: dict[str, bytes] = field(default_factory=dict, repr=False)
    _revoked: set[str] = field(default_factory=set, repr=False)

    def register(self, node_id: str) -> PrivateCredential:
        """Create (or re-derive) key material for ``node_id``."""
        if node_id not in self._secrets:
            self._secrets[node_id] = hashlib.sha256(
                b"node-key|" + self.master_seed + b"|" + node_id.encode("utf-8")
            ).digest()
        return PrivateCredential(node_id=node_id, secret=self._secrets[node_id])

    def secret_for(self, node_id: str) -> bytes:
        """Return the secret for ``node_id`` (registry-internal use).

        Raises:
            UnknownSignerError: if the node was never registered.
        """
        try:
            return self._secrets[node_id]
        except KeyError:
            raise UnknownSignerError(f"no key registered for {node_id!r}") from None

    def is_registered(self, node_id: str) -> bool:
        return node_id in self._secrets

    def revoke(self, node_id: str) -> None:
        """Revoke ``node_id``'s key: no further signing allowed.

        Previously produced signatures continue to verify; see module docs.
        """
        if node_id not in self._secrets:
            raise UnknownSignerError(f"cannot revoke unknown node {node_id!r}")
        self._revoked.add(node_id)

    def is_revoked(self, node_id: str) -> bool:
        return node_id in self._revoked

    def check_may_sign(self, node_id: str) -> None:
        """Raise unless ``node_id`` is registered and not revoked."""
        if node_id not in self._secrets:
            raise UnknownSignerError(f"no key registered for {node_id!r}")
        if node_id in self._revoked:
            raise KeyRevokedError(f"key for {node_id!r} has been revoked")

    @property
    def registered_nodes(self) -> frozenset[str]:
        return frozenset(self._secrets)

    @property
    def revoked_nodes(self) -> frozenset[str]:
        return frozenset(self._revoked)
