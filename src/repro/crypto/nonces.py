"""Nonce generation and replay tracking.

§2: "To avoid replay attacks we tag certain messages with nonces that are
signed in the replies.  We assume that when clients pick nonces they will
not choose a repeated nonce."

:class:`NonceSource` produces nonces that are unique per (node, counter) and
unpredictable to other nodes (derived from the node's secret), satisfying
that assumption deterministically.  :class:`NonceTracker` is the matching
receiver-side replay filter.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

__all__ = ["NonceSource", "NonceTracker"]


class NonceSource:
    """Deterministic, never-repeating nonce generator for one node."""

    def __init__(self, node_id: str, secret: bytes = b"") -> None:
        self._node_id = node_id
        self._secret = secret
        self._counter = 0

    def next(self) -> bytes:
        """Return a fresh 16-byte nonce."""
        self._counter += 1
        return hashlib.sha256(
            b"nonce|"
            + self._secret
            + b"|"
            + self._node_id.encode("utf-8")
            + b"|"
            + self._counter.to_bytes(8, "big")
        ).digest()[:16]

    @property
    def issued(self) -> int:
        """Number of nonces issued so far."""
        return self._counter


class NonceTracker:
    """Bounded-memory set of recently seen nonces for replay detection."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._seen: OrderedDict[bytes, None] = OrderedDict()

    def check_and_record(self, nonce: bytes) -> bool:
        """Record ``nonce``; return True if fresh, False if a replay."""
        if nonce in self._seen:
            self._seen.move_to_end(nonce)
            return False
        self._seen[nonce] = None
        if len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        return True

    def __contains__(self, nonce: bytes) -> bool:
        return nonce in self._seen

    def __len__(self) -> int:
        return len(self._seen)
