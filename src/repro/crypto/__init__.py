"""Cryptographic substrate: hashing, keys, signatures, MACs, nonces.

The paper (§2) assumes unforgeable digital signatures, a collision-resistant
hash function, and non-repeating nonces.  This package supplies all three,
with two signature backends (a fast HMAC-based PKI simulation and a
self-contained textbook RSA-FDH) behind one interface.
"""

from repro.crypto.authenticators import MacAuthenticator
from repro.crypto.commitments import (
    ProofOfWriting,
    make_commitment,
    make_mac_row,
    make_opening,
    row_mac_for,
    verify_opening,
)
from repro.crypto.hashing import DIGEST_SIZE, digest, digest_bytes, hash_value
from repro.crypto.keys import KeyRegistry, PrivateCredential
from repro.crypto.nonces import NonceSource, NonceTracker
from repro.crypto.signatures import (
    HmacSignatureScheme,
    RsaSignatureScheme,
    SchemeStats,
    Signature,
    SignatureScheme,
)

__all__ = [
    "DIGEST_SIZE",
    "digest",
    "digest_bytes",
    "hash_value",
    "KeyRegistry",
    "PrivateCredential",
    "NonceSource",
    "NonceTracker",
    "Signature",
    "SignatureScheme",
    "SchemeStats",
    "HmacSignatureScheme",
    "RsaSignatureScheme",
    "MacAuthenticator",
    "ProofOfWriting",
    "make_opening",
    "make_commitment",
    "verify_opening",
    "make_mac_row",
    "row_mac_for",
]
