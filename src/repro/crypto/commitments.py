"""Hash-commitment proofs of writing (the fast path's crypto primitive).

PoWerStore ("Proofs of Writing for Efficient and Robust Storage",
arXiv 1212.3555) replaces common-case signatures with a two-round
commit/reveal exchange: the writer commits to a secret *opening* in the
prepare round and reveals it in the write round, proving to every replica
that the write round was preceded by a completed prepare round — without
any digital signature.  This module supplies that primitive, adapted to
BFT-BC's multi-writer setting:

* the **opening** is bound to the writer, the value hash, and a fresh
  per-operation nonce, so openings never collide across clients or rounds;
* the **commitment** is a plain hash of the opening — binding by collision
  resistance of SHA-256, hiding enough for this use (the opening itself
  contains a high-entropy nonce);
* replica acknowledgements are **MAC rows**: one MAC per potential
  *receiver* replica over the acknowledged statement, so any replica can
  later check, with its own session key, that the acker really produced the
  acknowledgement.  A quorum of rows over the same statement is a
  :class:`ProofOfWriting` — the fast path's signature-free evidence.

MAC rows are deliberately *not* transferable between verifiers: a Byzantine
acker can make its row valid for one receiver and garbage for another, so a
third party that did not check its own column learns nothing.  Fast-path
evidence therefore never travels beyond the replica that verified it; every
transfer point in the protocol upgrades to signed vouches
(see ``repro.core.fast_replica``).
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import Any, Iterable

from repro.crypto.authenticators import MacAuthenticator
from repro.crypto.hashing import DIGEST_SIZE, digest
from repro.errors import CertificateError

__all__ = [
    "make_opening",
    "make_commitment",
    "verify_opening",
    "make_mac_row",
    "row_mac_for",
    "ProofOfWriting",
]

_OPEN_TAG = b"pow-open"
_COMMIT_TAG = b"pow-commit"


def make_opening(client: str, value_hash: bytes, nonce: bytes) -> bytes:
    """The writer's secret: bound to who writes what, freshly per round.

    Binding the client identity and value hash means an opening revealed for
    one write can never be replayed to open a commitment made by another
    client or for another value; the nonce makes openings of two writes of
    the same value by the same client distinct.
    """
    return digest(_OPEN_TAG, client.encode("utf-8"), value_hash, nonce)


def make_commitment(opening: bytes) -> bytes:
    """The public commitment sent in the fast prepare round."""
    return digest(_COMMIT_TAG, opening)


def verify_opening(commitment: bytes, opening: bytes) -> bool:
    """Does ``opening`` open ``commitment``?  Constant-time compare."""
    if not isinstance(commitment, bytes) or not isinstance(opening, bytes):
        return False
    if len(opening) != DIGEST_SIZE:
        return False
    return hmac.compare_digest(make_commitment(opening), commitment)


def make_mac_row(
    auth: MacAuthenticator,
    sender: str,
    receivers: Iterable[str],
    message: bytes,
) -> tuple[tuple[str, bytes], ...]:
    """One MAC per receiver over ``message``, as a sorted (receiver, mac) row."""
    return tuple(
        (receiver, auth.mac(sender, receiver, message))
        for receiver in sorted(receivers)
    )


def row_mac_for(
    row: tuple[tuple[str, bytes], ...], receiver: str
) -> bytes | None:
    """The MAC addressed to ``receiver`` in a row, or None."""
    for entry_receiver, mac in row:
        if entry_receiver == receiver:
            return mac
    return None


@dataclass(frozen=True)
class ProofOfWriting:
    """Commitment, its opening, and the ackers' MAC rows over one statement.

    ``rows`` maps each acknowledging replica to its MAC row, as a sorted
    tuple of ``(acker, row)`` pairs so the wire form is canonical.  The
    proof is only meaningful to a replica that checks *its own column*
    (:meth:`count_valid_for`); it carries the commitment so the verifying
    replica can rebuild the acknowledged statement without extra context.
    """

    commitment: bytes
    opening: bytes
    rows: tuple[tuple[str, tuple[tuple[str, bytes], ...]], ...]

    def ackers(self) -> frozenset[str]:
        """The distinct replicas contributing rows (validity not implied)."""
        return frozenset(acker for acker, _row in self.rows)

    def opens(self) -> bool:
        """Does the revealed opening match the commitment?"""
        return verify_opening(self.commitment, self.opening)

    def count_valid_for(
        self, auth: MacAuthenticator, receiver: str, message: bytes
    ) -> int:
        """Distinct ackers whose row carries a valid MAC *to this receiver*.

        This is the only sound way to consume a proof: each replica counts
        the MACs addressed to itself.  Rows without an entry for the
        receiver, or with an invalid one, contribute nothing.
        """
        valid = 0
        seen: set[str] = set()
        for acker, row in self.rows:
            if acker in seen:
                continue
            seen.add(acker)
            mac = row_mac_for(row, receiver)
            if mac is not None and auth.check(acker, receiver, message, mac):
                valid += 1
        return valid

    def to_wire(self) -> tuple[Any, ...]:
        return (self.commitment, self.opening, self.rows)

    @classmethod
    def from_wire(cls, wire: Any) -> "ProofOfWriting":
        if not isinstance(wire, tuple) or len(wire) != 3:
            raise CertificateError(f"malformed proof of writing: {wire!r}")
        commitment, opening, rows_wire = wire
        if not isinstance(commitment, bytes) or not isinstance(opening, bytes):
            raise CertificateError("proof of writing commitment/opening not bytes")
        if not isinstance(rows_wire, tuple):
            raise CertificateError("proof of writing rows not a tuple")
        rows = []
        for item in rows_wire:
            if not isinstance(item, tuple) or len(item) != 2:
                raise CertificateError(f"malformed proof row: {item!r}")
            acker, row = item
            if not isinstance(acker, str) or not isinstance(row, tuple):
                raise CertificateError(f"malformed proof row: {item!r}")
            for entry in row:
                if (
                    not isinstance(entry, tuple)
                    or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], bytes)
                ):
                    raise CertificateError(f"malformed proof row entry: {entry!r}")
            rows.append((acker, row))
        return cls(commitment=commitment, opening=opening, rows=tuple(rows))
