"""Point-to-point MAC authenticators.

§3.3.2 observes that only phase-2 and phase-3 replies need public-key
signatures (they become certificate entries shown to third parties); all
other messages can be authenticated with cheaper symmetric MACs over pairwise
session keys.  This module provides that cheaper primitive.

Session keys are derived deterministically from the two endpoints' registry
secrets so that either endpoint can compute the same key without a key
exchange round (a stand-in for an authenticated Diffie-Hellman handshake).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.keys import KeyRegistry

__all__ = ["MacAuthenticator"]


class MacAuthenticator:
    """Compute and check pairwise MACs between registered nodes."""

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry
        self._session_keys: dict[tuple[str, str], bytes] = {}
        self.macs_computed = 0
        self.macs_checked = 0

    def session_key(self, a: str, b: str) -> bytes:
        """Deterministic symmetric key shared by nodes ``a`` and ``b``."""
        pair = (a, b) if a <= b else (b, a)
        key = self._session_keys.get(pair)
        if key is None:
            material = (
                b"session|"
                + self._registry.secret_for(pair[0])
                + b"|"
                + self._registry.secret_for(pair[1])
            )
            key = hashlib.sha256(material).digest()
            self._session_keys[pair] = key
        return key

    def mac(self, sender: str, receiver: str, message: bytes) -> bytes:
        """MAC ``message`` under the (sender, receiver) session key."""
        self.macs_computed += 1
        return hmac.new(self.session_key(sender, receiver), message, hashlib.sha256).digest()

    def check(self, sender: str, receiver: str, message: bytes, tag: bytes) -> bool:
        """Verify a MAC produced by :meth:`mac`."""
        self.macs_checked += 1
        expected = hmac.new(
            self.session_key(sender, receiver), message, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, tag)
