"""Point-to-point MAC authenticators.

§3.3.2 observes that only phase-2 and phase-3 replies need public-key
signatures (they become certificate entries shown to third parties); all
other messages can be authenticated with cheaper symmetric MACs over pairwise
session keys.  This module provides that cheaper primitive.

Session keys are derived deterministically from the two endpoints' registry
secrets so that either endpoint can compute the same key without a key
exchange round (a stand-in for an authenticated Diffie-Hellman handshake).
Because derivation is a pure function of the pair, the per-pair row cache is
a bounded LRU: with a million clients the authenticator no longer pins one
row per client ever seen — cold rows are re-derived on demand.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import KeyRegistry

__all__ = ["MacAuthenticatorStats", "MacAuthenticator"]

#: Default capacity of the pairwise session-key LRU.
SESSION_CACHE_CAPACITY = 4096


@dataclass
class MacAuthenticatorStats:
    """Session-key cache counters (E21 identity-layer memory accounting)."""

    session_keys_derived: int = 0
    session_key_hits: int = 0
    session_key_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.session_key_hits + self.session_keys_derived
        return self.session_key_hits / total if total else 0.0

    def reset(self) -> None:
        self.session_keys_derived = 0
        self.session_key_hits = 0
        self.session_key_evictions = 0


class MacAuthenticator:
    """Compute and check pairwise MACs between registered nodes.

    Args:
        registry: source of per-node secrets.
        max_sessions: LRU capacity for cached pairwise session keys;
            ``None`` keeps every pair resident (the unbounded baseline).
    """

    def __init__(
        self,
        registry: KeyRegistry,
        *,
        max_sessions: Optional[int] = SESSION_CACHE_CAPACITY,
    ) -> None:
        self._registry = registry
        self._session_keys: "OrderedDict[tuple[str, str], bytes]" = OrderedDict()
        self._max_sessions = max_sessions
        self.macs_computed = 0
        self.macs_checked = 0
        self.stats = MacAuthenticatorStats()

    def session_key(self, a: str, b: str) -> bytes:
        """Deterministic symmetric key shared by nodes ``a`` and ``b``."""
        pair = (a, b) if a <= b else (b, a)
        key = self._session_keys.get(pair)
        if key is not None:
            self._session_keys.move_to_end(pair)
            self.stats.session_key_hits += 1
            return key
        material = (
            b"session|"
            + self._registry.secret_for(pair[0])
            + b"|"
            + self._registry.secret_for(pair[1])
        )
        key = hashlib.sha256(material).digest()
        self.stats.session_keys_derived += 1
        self._session_keys[pair] = key
        if self._max_sessions is not None:
            while len(self._session_keys) > self._max_sessions:
                self._session_keys.popitem(last=False)
                self.stats.session_key_evictions += 1
        return key

    @property
    def resident_sessions(self) -> int:
        """How many pairwise session keys are currently cached."""
        return len(self._session_keys)

    def mac(self, sender: str, receiver: str, message: bytes) -> bytes:
        """MAC ``message`` under the (sender, receiver) session key."""
        self.macs_computed += 1
        return hmac.new(self.session_key(sender, receiver), message, hashlib.sha256).digest()

    def check(self, sender: str, receiver: str, message: bytes, tag: bytes) -> bool:
        """Verify a MAC produced by :meth:`mac`."""
        self.macs_checked += 1
        expected = hmac.new(
            self.session_key(sender, receiver), message, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, tag)
