"""Signature schemes: the paper's ``<m>_sigma_n`` authentication.

Two interchangeable backends implement :class:`SignatureScheme`:

* :class:`HmacSignatureScheme` — the default.  Signing and verification are
  HMAC-SHA256 keyed by the signer's registry secret.  Verification consults
  the :class:`~repro.crypto.keys.KeyRegistry`, which models the PKI: within
  the simulation, unforgeability holds because adversarial code can only
  obtain signatures through :meth:`SignatureScheme.sign` with credentials it
  actually holds.
* :class:`RsaSignatureScheme` — textbook RSA-FDH.  Verification uses public
  key material only, exercising a genuine public-key verify path at higher
  cost.  Useful for the signature-cost experiments (E4).

Both schemes count sign/verify operations (:class:`SchemeStats`) so
benchmarks can report authentication costs per protocol operation, matching
§3.3.2's accounting of which phases need public-key signatures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
import hmac
import hashlib
from typing import Any, Optional

from repro.crypto.keys import KeyRegistry
from repro.crypto.rsa import (
    RsaPrivateKey,
    generate_rsa_keypair,
    rsa_sign,
    rsa_verify,
)
from repro.encoding import intern_encode
from repro.errors import CryptoError

__all__ = [
    "Signature",
    "SchemeStats",
    "SignatureScheme",
    "HmacSignatureScheme",
    "RsaSignatureScheme",
]


@dataclass(frozen=True)
class Signature:
    """A signature ``value`` attributed to ``signer``.

    Signatures appear inside certificates and are themselves encoded into
    messages, so they provide a wire representation.
    """

    signer: str
    value: bytes

    def to_wire(self) -> tuple[str, bytes]:
        return (self.signer, self.value)

    @classmethod
    def from_wire(cls, wire: Any) -> "Signature":
        if (
            not isinstance(wire, tuple)
            or len(wire) != 2
            or not isinstance(wire[0], str)
            or not isinstance(wire[1], bytes)
        ):
            raise CryptoError(f"malformed wire signature: {wire!r}")
        return cls(signer=wire[0], value=wire[1])


@dataclass
class SchemeStats:
    """Counters for authentication operations, reset-able per experiment."""

    signs: int = 0
    verifies: int = 0
    sign_failures: int = 0
    verify_failures: int = 0

    def reset(self) -> None:
        self.signs = 0
        self.verifies = 0
        self.sign_failures = 0
        self.verify_failures = 0


class SignatureScheme(ABC):
    """Common interface for signing canonical-encodable statements."""

    def __init__(self, registry: KeyRegistry) -> None:
        self.registry = registry
        self.stats = SchemeStats()

    def sign_statement(self, node_id: str, statement: Any) -> Signature:
        """Sign a protocol statement (any canonically encodable value).

        Statement bytes come from the interning cache, so the signer, every
        verifier, and every certificate validator share one encoding of each
        distinct statement.
        """
        return self.sign(node_id, intern_encode(statement))

    def verify_statement(self, signature: Signature, statement: Any) -> bool:
        """Verify a signature over a protocol statement (interned encoding)."""
        return self.verify(signature, intern_encode(statement))

    def sign(self, node_id: str, message: bytes) -> Signature:
        """Sign raw bytes as ``node_id``.

        Raises:
            KeyRevokedError: if ``node_id``'s key has been revoked — a
                stopped client can no longer produce new signatures.
            UnknownSignerError: if ``node_id`` has no registered key.
        """
        try:
            self.registry.check_may_sign(node_id)
        except CryptoError:
            self.stats.sign_failures += 1
            raise
        self.stats.signs += 1
        return Signature(signer=node_id, value=self._sign(node_id, message))

    def verify(self, signature: Signature, message: bytes) -> bool:
        """Check ``signature`` over ``message``.

        Verification deliberately ignores revocation: a revoked (stopped)
        client's old signatures still verify, which is what allows replayed
        lurking writes (§4.1.1).
        """
        self.stats.verifies += 1
        if not self.registry.is_registered(signature.signer):
            self.stats.verify_failures += 1
            return False
        ok = self._verify(signature, message)
        if not ok:
            self.stats.verify_failures += 1
        return ok

    @abstractmethod
    def _sign(self, node_id: str, message: bytes) -> bytes:
        """Backend-specific signing primitive."""

    @abstractmethod
    def _verify(self, signature: Signature, message: bytes) -> bool:
        """Backend-specific verification primitive."""


class HmacSignatureScheme(SignatureScheme):
    """Fast PKI simulation via HMAC-SHA256 keyed by registry secrets."""

    def _sign(self, node_id: str, message: bytes) -> bytes:
        secret = self.registry.secret_for(node_id)
        return hmac.new(secret, message, hashlib.sha256).digest()

    def _verify(self, signature: Signature, message: bytes) -> bool:
        secret = self.registry.secret_for(signature.signer)
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.value)


class RsaSignatureScheme(SignatureScheme):
    """Textbook RSA-FDH signatures; verification is public-key only.

    Keypairs are derived deterministically from the registry secret, so the
    per-node cache is a bounded LRU: an evicted keypair regenerates to the
    identical key material on next use (eviction is invisible except in
    time), keeping resident key state O(active signers).
    """

    def __init__(
        self,
        registry: KeyRegistry,
        bits: int = 512,
        *,
        max_cached_keys: Optional[int] = 1024,
    ) -> None:
        super().__init__(registry)
        self._bits = bits
        self._private: "OrderedDict[str, RsaPrivateKey]" = OrderedDict()
        self._max_cached_keys = max_cached_keys
        self.keypair_evictions = 0

    def _keypair(self, node_id: str) -> RsaPrivateKey:
        key = self._private.get(node_id)
        if key is None:
            seed = self.registry.secret_for(node_id)
            key = generate_rsa_keypair(seed, bits=self._bits)
            self._private[node_id] = key
            if self._max_cached_keys is not None:
                while len(self._private) > self._max_cached_keys:
                    self._private.popitem(last=False)
                    self.keypair_evictions += 1
        else:
            self._private.move_to_end(node_id)
        return key

    def _sign(self, node_id: str, message: bytes) -> bytes:
        return rsa_sign(self._keypair(node_id), message)

    def _verify(self, signature: Signature, message: bytes) -> bool:
        public = self._keypair(signature.signer).public
        return rsa_verify(public, message, signature.value)
