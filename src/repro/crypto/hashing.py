"""Collision-resistant hashing over canonical encodings.

The paper assumes a collision-resistant hash function ``h`` (§2).  We use
SHA-256.  Protocol code always hashes *values* (arbitrary encodable Python
objects) through their canonical encoding, so two logically equal values hash
identically on every node.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.encoding import intern_encode

__all__ = ["DIGEST_SIZE", "digest", "digest_bytes", "hash_value"]

#: Size in bytes of every digest produced by this module.
DIGEST_SIZE = 32


def digest_bytes(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def digest(*parts: bytes) -> bytes:
    """SHA-256 digest of the concatenation of length-delimited parts.

    Length delimiting prevents ambiguity between e.g. ``(b"ab", b"c")`` and
    ``(b"a", b"bc")``.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


def hash_value(value: Any) -> bytes:
    """The paper's ``h(val)``: digest of the canonical encoding of ``value``.

    Encodes through the interning cache so a value hashed at the client and
    re-hashed at every replica is serialised once per process.
    """
    return digest_bytes(intern_encode(value))
