"""Self-contained textbook RSA with full-domain-hash signatures.

This backend exists so the library exercises a *real* public-key verify path
(verification uses only public material), unlike the fast HMAC-registry
simulation.  It is textbook RSA-FDH: fine for a protocol study, not for
production cryptography (no constant-time arithmetic, small default modulus
for speed).

Key generation is deterministic given a seed, which keeps simulations
reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import CryptoError

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_rsa_keypair", "rsa_sign", "rsa_verify"]

# Default modulus size.  512 bits keeps deterministic key generation fast in
# tests while still exercising multi-precision arithmetic.
DEFAULT_BITS = 512

_E = 65537

# Small primes for quick trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key; carries the matching public key for convenience."""

    n: int
    d: int
    public: RsaPublicKey


class _DeterministicStream:
    """Deterministic byte stream derived from a seed via SHA-256 in counter mode."""

    def __init__(self, seed: bytes) -> None:
        self._seed = seed
        self._counter = 0

    def take(self, nbytes: int) -> bytes:
        out = bytearray()
        while len(out) < nbytes:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            out.extend(block)
        return bytes(out[:nbytes])

    def take_int(self, bits: int) -> int:
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.take(nbytes), "big")
        excess = nbytes * 8 - bits
        return value >> excess


def _is_probable_prime(n: int, stream: _DeterministicStream, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + stream.take_int(n.bit_length()) % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, stream: _DeterministicStream) -> int:
    while True:
        candidate = stream.take_int(bits)
        candidate |= (1 << (bits - 1)) | 1  # full bit-length, odd
        if candidate % _E == 1:
            continue
        if _is_probable_prime(candidate, stream):
            return candidate


def generate_rsa_keypair(seed: bytes, bits: int = DEFAULT_BITS) -> RsaPrivateKey:
    """Deterministically generate an RSA key pair from ``seed``.

    The same seed always yields the same key pair, keeping simulated
    deployments reproducible.
    """
    if bits < 128:
        raise CryptoError(f"modulus of {bits} bits is too small")
    stream = _DeterministicStream(b"rsa-keygen|" + seed)
    half = bits // 2
    p = _generate_prime(half, stream)
    q = _generate_prime(bits - half, stream)
    while q == p:
        q = _generate_prime(bits - half, stream)
    n = p * q
    phi = (p - 1) * (q - 1)
    d = pow(_E, -1, phi)
    public = RsaPublicKey(n=n, e=_E)
    return RsaPrivateKey(n=n, d=d, public=public)


def _full_domain_hash(message: bytes, n: int) -> int:
    """Hash ``message`` into Z_n* using SHA-256 in counter mode (FDH)."""
    nbytes = (n.bit_length() + 7) // 8
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(hashlib.sha256(counter.to_bytes(4, "big") + message).digest())
        counter += 1
    value = int.from_bytes(bytes(out[:nbytes]), "big")
    return value % n


def rsa_sign(key: RsaPrivateKey, message: bytes) -> bytes:
    """Produce an RSA-FDH signature over ``message``."""
    m = _full_domain_hash(message, key.n)
    signature = pow(m, key.d, key.n)
    return signature.to_bytes(key.public.byte_length, "big")


def rsa_verify(key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Check an RSA-FDH signature using public material only."""
    if len(signature) != key.byte_length:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    return pow(s, key.e, key.n) == _full_domain_hash(message, key.n)
